//! # paccport-kernels — the four Rodinia benchmarks of the study
//!
//! Each module contains a reference Rust implementation, the OpenACC
//! program builders for every optimization-step variant of the
//! systematic method, the hand-written OpenCL comparison version, and
//! validation helpers. Table IV's benchmark inventory lives in
//! [`common::table4`].
//!
//! | module      | benchmark            | dwarf                | paper input |
//! |-------------|----------------------|----------------------|-------------|
//! | [`lud`]     | LU Decomposition     | Dense Linear Algebra | 4K matrix   |
//! | [`gaussian`]| Gaussian Elimination | Dense Linear Algebra | 8K matrix   |
//! | [`bfs`]     | Breadth First Search | Graph Traversal      | 32M nodes   |
//! | [`backprop`]| Back Propagation     | Unstructured Grid    | 20M layers  |
//!
//! [`stream`] additionally carries the STREAM bandwidth kernels from
//! the authors' previous study (the paper's reference [11]), used to
//! pin the device model's memory system.

pub mod backprop;
pub mod bfs;
pub mod common;
pub mod gaussian;
pub mod lud;
pub mod stream;

pub use common::{
    compare_f32, compare_i32, diag_dominant_matrix, random_vec, table4, Validation, VariantCfg,
};
