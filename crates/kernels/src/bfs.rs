//! Breadth First Search (Rodinia BFS) — Section V-C.
//!
//! Data-intensive graph traversal over a CSR-like representation
//! (`nodes[2i] = edge start`, `nodes[2i+1] = degree`). The frontier
//! loop runs on the host, controlled by a device-written stop flag:
//!
//! ```text
//! do {
//!   stop = 0;  update device(stop)
//!   k1: for tid (par): if mask[tid] { mask[tid]=0;
//!         for e in start..start+deg:
//!           if !visited[edges[e]] { cost[edges[e]] = cost[tid]+1; updating[edges[e]]=1 } }
//!   k2: for tid (par): if updating[tid] { mask[tid]=1; visited[tid]=1; stop[0]=1; updating[tid]=0 }
//!   update host(stop)
//! } while (stop);
//! ```
//!
//! Paper findings reproduced here:
//! * CAPS's sequential baseline runs *faster on MIC than GPU* (higher
//!   single-thread performance — Fig. 10);
//! * PGI never offloads the kernels (indirect accesses in `k1`, the
//!   loop-invariant `stop` store in `k2`) — discovered via
//!   `PGI_ACC_TIME`/nvprof, visible here as `ran_on_device == false`
//!   and a stub PTX (Fig. 11);
//! * `independent` lets CAPS gridify: ~400× on GPU, ~30× on MIC;
//! * Table VII: CAPS transfers 3×/iteration (two explicit `stop`
//!   updates + a conservative `mask` refresh), PGI 4 in total (three
//!   region copy-ins + one copy-out).
//!
//! Costs are reported as 1-based levels (`cost[source] = 1`), so the
//! zero-initialized device scratch needs no host-side seeding.

use crate::common::VariantCfg;
use paccport_devsim::CostHints;
use paccport_ir::{
    for_, if_, ld, let_, st, Block, Dir, Expr, HostStmt, Intent, Kernel, LaunchHint, ParallelLoop,
    ProgramBuilder, Scalar, E,
};
use rand::Rng;

/// A CSR-ish random graph in the Rodinia layout.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `nodes[2i]` = first edge index, `nodes[2i+1]` = out-degree.
    pub nodes: Vec<i32>,
    pub edges: Vec<i32>,
    pub n: usize,
}

impl Graph {
    /// Random connected-ish graph with degrees in `1..=max_degree`
    /// (Rodinia's generator draws uniform degrees and endpoints).
    pub fn random(n: usize, max_degree: usize, seed: u64) -> Graph {
        let mut r = crate::common::rng(seed);
        let mut nodes = Vec::with_capacity(2 * n);
        let mut edges = Vec::new();
        for i in 0..n {
            let deg = r.gen_range(1..=max_degree);
            nodes.push(edges.len() as i32);
            nodes.push(deg as i32);
            for _ in 0..deg {
                edges.push(r.gen_range(0..n) as i32);
            }
            // Chain edge to keep the graph connected from node 0.
            if i + 1 < n {
                edges.push((i + 1) as i32);
                nodes[2 * i + 1] += 1;
            }
        }
        Graph { nodes, edges, n }
    }

    pub fn avg_degree(&self) -> f64 {
        self.edges.len() as f64 / self.n as f64
    }
}

/// Reference BFS: 1-based levels from `source`; unreached nodes stay 0.
pub fn reference(g: &Graph, source: usize) -> Vec<i32> {
    let mut cost = vec![0i32; g.n];
    let mut queue = std::collections::VecDeque::new();
    cost[source] = 1;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let start = g.nodes[2 * u] as usize;
        let deg = g.nodes[2 * u + 1] as usize;
        for e in start..start + deg {
            let v = g.edges[e] as usize;
            if cost[v] == 0 && v != source {
                cost[v] = cost[u] + 1;
                queue.push_back(v);
            }
        }
    }
    cost
}

/// Build the OpenACC BFS program.
pub fn program(cfg: &VariantCfg) -> paccport_ir::Program {
    build(cfg, None)
}

/// Build the hand-written OpenCL BFS (same algorithm, explicit
/// 256-wide 1-D NDRanges, as in Rodinia's OpenCL port).
pub fn opencl_program() -> paccport_ir::Program {
    build(
        &VariantCfg::independent(),
        Some(LaunchHint {
            local: (256, 1),
            two_d: false,
            group_per_iter: false,
        }),
    )
}

fn build(cfg: &VariantCfg, hint: Option<LaunchHint>) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new("bfs");
    let n = b.iparam("n");
    let nedges = b.iparam("nedges");
    let source = b.iparam("source");
    let nodes = b.array("nodes", Scalar::I32, E::from(n) * 2i64, Intent::In);
    let edges = b.array("edges", Scalar::I32, nedges, Intent::In);
    let mask = b.array("mask", Scalar::I32, n, Intent::In);
    let cost = b.array("cost", Scalar::I32, n, Intent::Out);
    let visited = b.array("visited", Scalar::I32, n, Intent::Scratch);
    let updating = b.array("updating", Scalar::I32, n, Intent::Scratch);
    let stop = b.array("stop", Scalar::I32, 1i64, Intent::Scratch);

    let tid = b.var("tid");
    let tid2 = b.var("tid2");
    let iv = b.var("iv");
    let e = b.var("e");
    let id = b.var("id");

    let clause = |lp: &mut ParallelLoop| {
        lp.clauses.independent = cfg.independent;
        if let Some((g, w)) = cfg.gang_worker {
            lp.clauses.gang = Some(g);
            lp.clauses.worker = Some(w);
        }
    };

    // Init kernel: seed the search at `source` on the device.
    let mut init_loop = ParallelLoop::new(iv, Expr::iconst(0), Expr::iconst(1));
    clause(&mut init_loop);
    let mut init = Kernel::simple(
        "bfs_init",
        vec![init_loop],
        Block::new(vec![
            st(visited, E::from(source), 1i64),
            st(cost, E::from(source), 1i64),
        ]),
    );
    init.launch_hint = hint;

    // Kernel 1: expand the frontier.
    let mut k1_loop = ParallelLoop::new(tid, Expr::iconst(0), Expr::param(n));
    clause(&mut k1_loop);
    let start = ld(nodes, E::from(tid) * 2i64);
    let deg = ld(nodes, E::from(tid) * 2i64 + 1i64);
    let mut k1 = Kernel::simple(
        "bfs_kernel1",
        vec![k1_loop],
        Block::new(vec![if_(
            ld(mask, tid).ne_(0i64),
            vec![
                st(mask, tid, 0i64),
                for_(
                    e,
                    start.clone(),
                    start + deg,
                    vec![
                        let_(id, Scalar::I32, ld(edges, e)),
                        if_(
                            ld(visited, id).eq_(0i64),
                            vec![
                                st(cost, E::from(id), ld(cost, tid) + 1i64),
                                st(updating, E::from(id), 1i64),
                            ],
                        ),
                    ],
                ),
            ],
        )]),
    );
    k1.launch_hint = hint;

    // Kernel 2: commit the new frontier and raise the stop flag.
    let mut k2_loop = ParallelLoop::new(tid2, Expr::iconst(0), Expr::param(n));
    clause(&mut k2_loop);
    let mut k2 = Kernel::simple(
        "bfs_kernel2",
        vec![k2_loop],
        Block::new(vec![if_(
            ld(updating, tid2).ne_(0i64),
            vec![
                st(mask, tid2, 1i64),
                st(visited, tid2, 1i64),
                st(stop, 0i64, 1i64),
                st(updating, tid2, 0i64),
            ],
        )]),
    );
    k2.launch_hint = hint;

    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![nodes, edges, mask, cost, visited, updating, stop],
        body: vec![
            HostStmt::Launch(init),
            HostStmt::WhileFlag {
                flag: stop,
                max_iters: 100_000,
                body: vec![
                    HostStmt::HostStore {
                        array: stop,
                        index: Expr::iconst(0),
                        value: Expr::iconst(0),
                    },
                    HostStmt::Update {
                        array: stop,
                        dir: Dir::ToDevice,
                    },
                    HostStmt::Launch(k1),
                    HostStmt::Launch(k2),
                    HostStmt::Update {
                        array: stop,
                        dir: Dir::ToHost,
                    },
                ],
            },
        ],
    }])
}

/// Estimation hints for the timing model: the frontier guard is
/// usually false, and edge-loop trip counts are data dependent.
pub fn hints(g_avg_degree: f64, frontier_fraction: f64) -> CostHints {
    CostHints::default()
        .with_branch("bfs_kernel1", 0, frontier_fraction)
        .with_branch("bfs_kernel2", 0, frontier_fraction)
        .with_trips("bfs_kernel1", g_avg_degree)
}

/// The paper's input size (Table IV).
pub const PAPER_N: usize = 32_000_000;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::compare_i32;
    use paccport_compilers::{compile, CompileOptions, CompilerId, TransferPolicy};
    use paccport_devsim::{run, Buffer, RunConfig, RunResult};
    use paccport_ir::validate;

    fn run_bfs(
        compiler: CompilerId,
        options: &CompileOptions,
        p: &paccport_ir::Program,
        g: &Graph,
        source: usize,
    ) -> (RunResult, paccport_compilers::CompiledProgram) {
        let c = compile(compiler, p, options).unwrap();
        let mut mask = vec![0i32; g.n];
        mask[source] = 1;
        let rc = RunConfig::functional(vec![
            ("n".into(), g.n as f64),
            ("nedges".into(), g.edges.len() as f64),
            ("source".into(), source as f64),
        ])
        .with_input("nodes", Buffer::I32(g.nodes.clone()))
        .with_input("edges", Buffer::I32(g.edges.clone()))
        .with_input("mask", Buffer::I32(mask));
        let r = run(&c, &rc).unwrap();
        (r, c)
    }

    #[test]
    fn reference_levels_are_sane() {
        let g = Graph::random(64, 3, 5);
        let cost = reference(&g, 0);
        assert_eq!(cost[0], 1);
        // The chain edges guarantee everything is reachable.
        assert!(cost.iter().all(|c| *c >= 1));
        // Levels grow by at most 1 along the chain.
        for i in 1..g.n {
            assert!(cost[i] <= cost[i - 1] + 1);
        }
    }

    #[test]
    fn variants_are_well_formed() {
        validate(&program(&VariantCfg::baseline())).expect("baseline");
        validate(&program(&VariantCfg::independent())).expect("independent");
        validate(&opencl_program()).expect("opencl");
    }

    #[test]
    fn caps_independent_computes_correct_levels() {
        let g = Graph::random(200, 4, 9);
        let (r, c) = run_bfs(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            &g,
            0,
        );
        let v = compare_i32(r.buffer(&c, "cost").unwrap().as_i32(), &reference(&g, 0));
        assert!(v.passed, "{}", v.detail);
        assert!(r.while_iterations >= 2);
    }

    #[test]
    fn caps_baseline_is_sequential_but_correct() {
        let g = Graph::random(60, 3, 2);
        let (r, c) = run_bfs(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &program(&VariantCfg::baseline()),
            &g,
            0,
        );
        let v = compare_i32(r.buffer(&c, "cost").unwrap().as_i32(), &reference(&g, 0));
        assert!(v.passed, "{}", v.detail);
        assert!(r
            .kernel_stats
            .iter()
            .all(|s| s.config_label == "1x1" && s.ran_on_device));
    }

    #[test]
    fn pgi_never_runs_on_the_gpu_yet_computes_correctly() {
        // The paper's nvprof discovery, even with independent given.
        let g = Graph::random(80, 3, 4);
        let (r, c) = run_bfs(
            CompilerId::Pgi,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            &g,
            0,
        );
        assert!(
            r.kernel_stats
                .iter()
                .filter(|s| s.name.contains("kernel"))
                .all(|s| !s.ran_on_device),
            "PGI must keep BFS on the host"
        );
        let v = compare_i32(r.buffer(&c, "cost").unwrap().as_i32(), &reference(&g, 0));
        assert!(v.passed, "{}", v.detail);
        // The PTX stubs are tiny (Fig. 11: "few PTX instructions").
        assert!(c.module.kernel("bfs_kernel1_kernel").unwrap().len() <= 6);
    }

    #[test]
    fn table7_transfer_schedules() {
        let g = Graph::random(100, 3, 13);
        // CAPS: 3 transfers per frontier iteration.
        let (rc_caps, cc) = run_bfs(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            &g,
            0,
        );
        assert_eq!(cc.transfers, TransferPolicy::PerIteration);
        assert!(
            (rc_caps.transfers_per_while_iter - 3.0).abs() < 0.5,
            "CAPS: expected ~3 transfers/iteration, got {}",
            rc_caps.transfers_per_while_iter
        );
        // PGI: 4 transfers in total (3 copy-ins + 1 copy-out).
        let (rp, _cp) = run_bfs(
            CompilerId::Pgi,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            &g,
            0,
        );
        assert_eq!(
            rp.transfers.total_count(),
            4,
            "PGI: h2d={} d2h={}",
            rp.transfers.h2d_count,
            rp.transfers.d2h_count
        );
    }

    #[test]
    fn opencl_version_computes_correct_levels() {
        let g = Graph::random(150, 4, 21);
        let (r, c) = run_bfs(
            CompilerId::OpenClHand,
            &CompileOptions::gpu(),
            &opencl_program(),
            &g,
            0,
        );
        let v = compare_i32(r.buffer(&c, "cost").unwrap().as_i32(), &reference(&g, 0));
        assert!(v.passed, "{}", v.detail);
    }

    #[test]
    fn mic_baseline_beats_gpu_baseline() {
        // Fig. 10: the sequential baseline is faster on MIC.
        let p = program(&VariantCfg::baseline());
        let o = CompileOptions::gpu();
        let cg = compile(CompilerId::Caps, &p, &o).unwrap();
        let cm = compile(CompilerId::Caps, &p, &CompileOptions::mic()).unwrap();
        let rc = RunConfig::timing(
            vec![
                ("n".into(), 1_000_000.0),
                ("nedges".into(), 4_000_000.0),
                ("source".into(), 0.0),
            ],
            10,
        )
        .with_hints(hints(4.0, 0.2));
        let tg = run(&cg, &rc).unwrap().elapsed;
        let tm = run(&cm, &rc).unwrap().elapsed;
        assert!(tm < tg, "MIC {tm} should beat GPU {tg} for sequential BFS");
    }

    #[test]
    fn independent_gives_large_speedups_on_both_devices() {
        // Fig. 10: ~400× on GPU, ~30× on MIC (order of magnitude).
        let base = program(&VariantCfg::baseline());
        let indep = program(&VariantCfg::independent());
        let rc = RunConfig::timing(
            vec![
                ("n".into(), 4_000_000.0),
                ("nedges".into(), 16_000_000.0),
                ("source".into(), 0.0),
            ],
            12,
        )
        .with_hints(hints(4.0, 0.15));
        for (opts, lo, hi) in [
            (CompileOptions::gpu(), 50.0, 5000.0),
            (CompileOptions::mic(), 5.0, 500.0),
        ] {
            let cb = compile(CompilerId::Caps, &base, &opts).unwrap();
            let ci = compile(CompilerId::Caps, &indep, &opts).unwrap();
            let tb = run(&cb, &rc).unwrap().kernel_time;
            let ti = run(&ci, &rc).unwrap().kernel_time;
            let sp = tb / ti;
            assert!(
                (lo..hi).contains(&sp),
                "{:?}: speedup {sp:.0} outside [{lo}, {hi}]",
                opts.target
            );
        }
    }
}
