//! Back Propagation (Rodinia `backprop`) — Section V-D.
//!
//! One training step of a two-layer perceptron: `bpnn_layer_forward`
//! (input → hidden, a dot product per hidden unit squashed by a
//! sigmoid) and `bpnn_adjust_weights` (momentum update of the
//! input→hidden weights). The paper ported exactly these two
//! functions from the OpenMP version.
//!
//! Paper findings reproduced here:
//! * the CAPS baseline runs sequentially (gang(1) bug) and is faster
//!   on MIC than GPU; `independent` brings ~9× on GPU and ~2× on MIC
//!   (the forward kernel's outer loop has only `hidden` iterations, so
//!   gridify alone cannot fill the device — Fig. 12);
//! * the `reduction` directive makes both compilers emit
//!   `st.shared`/`ld.shared` (Fig. 13/14); PGI's version is much
//!   faster, CAPS's fails to speed up on the GPU and produces wrong
//!   results on MIC (Section V-D2);
//! * unrolling after the reduction changes nothing for either compiler
//!   (the accumulation loop is gone — Fig. 14);
//! * the hand-written OpenCL is faster than OpenACC because its
//!   forward kernel stages partial products in local memory.

use crate::common::VariantCfg;
use paccport_ir::{
    assign, for_, ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, LaunchHint, ParallelLoop,
    ProgramBuilder, ReduceOp, Reduction, Scalar, E,
};

/// Sigmoid, as in Rodinia's `squash()`.
pub fn squash(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Reference forward pass: `hidden[j] = squash(Σ_k input[k]·w[k][j])`
/// for `j in 1..=hid`; index 0 is the bias unit (weights row 0).
pub fn reference_forward(input: &[f32], w: &[f32], n_in: usize, n_hid: usize) -> Vec<f32> {
    let stride = n_hid + 1;
    let mut hidden = vec![0.0f32; n_hid + 1];
    hidden[0] = 1.0;
    for j in 1..=n_hid {
        let mut sum = 0.0f32;
        for k in 0..=n_in {
            sum += w[k * stride + j] * input[k];
        }
        hidden[j] = squash(sum);
    }
    hidden
}

/// Reference weight adjustment (Rodinia's momentum update):
/// `dw = η·δ[j]·x[k] + α·oldw[k][j]; w += dw; oldw = dw`.
pub fn reference_adjust(
    w: &mut [f32],
    oldw: &mut [f32],
    delta: &[f32],
    input: &[f32],
    n_in: usize,
    n_hid: usize,
) {
    const ETA: f32 = 0.3;
    const MOMENTUM: f32 = 0.3;
    let stride = n_hid + 1;
    for j in 1..=n_hid {
        for k in 0..=n_in {
            let dw = ETA * delta[j] * input[k] + MOMENTUM * oldw[k * stride + j];
            w[k * stride + j] += dw;
            oldw[k * stride + j] = dw;
        }
    }
}

/// Build the OpenACC Back-Propagation program (one forward + one
/// adjust step, as timed in the paper).
pub fn program(cfg: &VariantCfg) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new("backprop");
    let n_in = b.iparam("n_in"); // input units (excluding bias)
    let n_hid = b.iparam("n_hid"); // hidden units (excluding bias)
    let input = b.array("input", Scalar::F32, E::from(n_in) + 1i64, Intent::In);
    let w = b.array(
        "w",
        Scalar::F32,
        (E::from(n_in) + 1i64) * (E::from(n_hid) + 1i64),
        Intent::InOut,
    );
    let hidden = b.array("hidden", Scalar::F32, E::from(n_hid) + 1i64, Intent::Out);
    let delta = b.array("delta", Scalar::F32, E::from(n_hid) + 1i64, Intent::In);
    let oldw = b.array(
        "oldw",
        Scalar::F32,
        (E::from(n_in) + 1i64) * (E::from(n_hid) + 1i64),
        Intent::InOut,
    );

    let j = b.var("j");
    let kv = b.var("k");
    let sum = b.var("sum");
    let j2 = b.var("j2");
    let k2 = b.var("k2");
    let dw = b.var("dw");

    let clause = |lp: &mut ParallelLoop| {
        lp.clauses.independent = cfg.independent;
        if let Some((g, w)) = cfg.gang_worker {
            lp.clauses.gang = Some(g);
            lp.clauses.worker = Some(w);
        }
        lp.clauses.unroll_jam = cfg.unroll;
    };

    let stride = E::from(n_hid) + 1i64;

    // bpnn_layer_forward.
    let mut fwd_loop = ParallelLoop::new(j, Expr::iconst(1), (E::from(n_hid) + 1i64).expr());
    clause(&mut fwd_loop);
    let mut forward = Kernel::simple(
        "layer_forward",
        vec![fwd_loop],
        Block::new(vec![
            let_(sum, Scalar::F32, 0.0),
            for_(
                kv,
                0i64,
                E::from(n_in) + 1i64,
                vec![assign(
                    sum,
                    E::from(sum) + ld(w, E::from(kv) * stride.clone() + j) * ld(input, kv),
                )],
            ),
            st(
                hidden,
                E::from(j),
                E::from(1.0) / (E::from(1.0) + (-E::from(sum)).exp()),
            ),
        ]),
    );
    if cfg.reduction {
        forward.reduction = Some(Reduction {
            op: ReduceOp::Add,
            acc: sum,
        });
    }

    // bpnn_adjust_weights.
    let mut adj_outer = ParallelLoop::new(j2, Expr::iconst(1), (E::from(n_hid) + 1i64).expr());
    let mut adj_inner = ParallelLoop::new(k2, Expr::iconst(0), (E::from(n_in) + 1i64).expr());
    clause(&mut adj_outer);
    adj_inner.clauses.independent = cfg.independent;
    let widx = E::from(k2) * stride.clone() + j2;
    let adjust = Kernel::simple(
        "adjust_weights",
        vec![adj_outer, adj_inner],
        Block::new(vec![
            let_(
                dw,
                Scalar::F32,
                E::from(0.3) * ld(delta, j2) * ld(input, k2)
                    + E::from(0.3) * ld(oldw, widx.clone()),
            ),
            st(w, widx.clone(), ld(w, widx.clone()) + E::from(dw)),
            st(oldw, widx, E::from(dw)),
        ]),
    );

    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![input, w, hidden, delta, oldw],
        body: vec![HostStmt::Launch(forward), HostStmt::Launch(adjust)],
    }])
}

/// Build the hand-written OpenCL version: the forward kernel stages
/// the reduction through `__local` memory (one work-group per hidden
/// unit, Fig. 13's tree), which is exactly why the paper found it
/// faster than the OpenACC version.
pub fn opencl_program(group_size: u32) -> paccport_ir::Program {
    assert!(group_size.is_power_of_two());
    // Build the plain program, then apply the same tree construction
    // the reduction directive would — this *is* the hand-written
    // kernel shape, so reusing the transform keeps one source of
    // truth for the Fig. 13 pattern.
    let mut p = program(&VariantCfg::independent());
    p.name = "backprop_ocl".into();
    let mut names = std::mem::take(&mut p.var_names);
    {
        let mut va = paccport_compilers::transforms::VarAlloc::new(&mut names);
        p.map_kernel("layer_forward", |k| {
            let ok = paccport_compilers::transforms::reduction_to_grouped(k, group_size, &mut va);
            assert!(ok, "forward kernel must match the reduction pattern");
            k.launch_hint = Some(LaunchHint {
                local: (group_size, 1),
                two_d: false,
                group_per_iter: true,
            });
        });
    }
    p.var_names = names;
    p.map_kernel("adjust_weights", |k| {
        k.launch_hint = Some(LaunchHint {
            local: (16, 16),
            two_d: true,
            group_per_iter: false,
        });
    });
    p
}

/// The paper's input scale (Table IV: "20M layers" — a 2²⁰-unit-class
/// input layer in our reconstruction; Rodinia's default hidden size).
pub const PAPER_N_IN: usize = 1 << 20;
pub const PAPER_N_HID: usize = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{compare_f32, random_vec};
    use paccport_compilers::{compile, CompileOptions, CompilerId, Correctness};
    use paccport_devsim::{run, Buffer, RunConfig, RunResult};
    use paccport_ir::validate;
    use paccport_ptx::Category;

    const N_IN: usize = 255;
    const N_HID: usize = 16;

    struct Setup {
        input: Vec<f32>,
        w: Vec<f32>,
        delta: Vec<f32>,
        oldw: Vec<f32>,
    }

    fn setup() -> Setup {
        Setup {
            input: random_vec(N_IN + 1, 31),
            w: random_vec((N_IN + 1) * (N_HID + 1), 32),
            delta: random_vec(N_HID + 1, 33),
            oldw: random_vec((N_IN + 1) * (N_HID + 1), 34),
        }
    }

    fn run_bp(
        compiler: CompilerId,
        options: &CompileOptions,
        p: &paccport_ir::Program,
        s: &Setup,
    ) -> (RunResult, paccport_compilers::CompiledProgram) {
        let c = compile(compiler, p, options).unwrap();
        let rc = RunConfig::functional(vec![
            ("n_in".into(), N_IN as f64),
            ("n_hid".into(), N_HID as f64),
        ])
        .with_input("input", Buffer::F32(s.input.clone()))
        .with_input("w", Buffer::F32(s.w.clone()))
        .with_input("delta", Buffer::F32(s.delta.clone()))
        .with_input("oldw", Buffer::F32(s.oldw.clone()));
        let r = run(&c, &rc).unwrap();
        (r, c)
    }

    fn check(r: &RunResult, c: &paccport_compilers::CompiledProgram, s: &Setup) {
        let want_h = reference_forward(&s.input, &s.w, N_IN, N_HID);
        let got_h = r.buffer(c, "hidden").unwrap().as_f32();
        // hidden[0] (bias) is not written by the kernels.
        let v = compare_f32(&got_h[1..], &want_h[1..], 1e-4);
        assert!(v.passed, "forward: {}", v.detail);

        let mut want_w = s.w.clone();
        let mut want_oldw = s.oldw.clone();
        reference_adjust(&mut want_w, &mut want_oldw, &s.delta, &s.input, N_IN, N_HID);
        // Compare only the updated region (j >= 1).
        let got_w = r.buffer(c, "w").unwrap().as_f32();
        let v = compare_f32(got_w, &want_w_masked(&want_w, &s.w), 1e-4);
        assert!(v.passed, "adjust: {}", v.detail);
    }

    /// Reference `w` with column 0 (bias unit 0) taken from the
    /// original — the kernels never touch `j == 0`.
    fn want_w_masked(want: &[f32], orig: &[f32]) -> Vec<f32> {
        let stride = N_HID + 1;
        let mut out = want.to_vec();
        for k in 0..=N_IN {
            out[k * stride] = orig[k * stride];
        }
        out
    }

    #[test]
    fn reference_sigmoid_bounds() {
        assert!(squash(0.0) == 0.5);
        assert!(squash(10.0) > 0.99);
        assert!(squash(-10.0) < 0.01);
    }

    #[test]
    fn variants_are_well_formed() {
        for cfg in [VariantCfg::baseline(), VariantCfg::independent(), {
            let mut c = VariantCfg::independent();
            c.reduction = true;
            c
        }] {
            validate(&program(&cfg)).expect("valid IR");
        }
        validate(&opencl_program(128)).expect("valid OCL IR");
    }

    #[test]
    fn caps_baseline_and_independent_compute_correctly() {
        let s = setup();
        for cfg in [VariantCfg::baseline(), VariantCfg::independent()] {
            let (r, c) = run_bp(CompilerId::Caps, &CompileOptions::gpu(), &program(&cfg), &s);
            check(&r, &c, &s);
        }
    }

    #[test]
    fn pgi_reduction_is_correct_and_emits_shared_memory() {
        let s = setup();
        let mut cfg = VariantCfg::independent();
        cfg.reduction = true;
        let (r, c) = run_bp(CompilerId::Pgi, &CompileOptions::gpu(), &program(&cfg), &s);
        check(&r, &c, &s);
        let counts = c.module.kernel("layer_forward_kernel").unwrap().counts();
        assert!(counts.get(Category::SharedMemory) > 0, "Fig. 14 shared ops");
    }

    #[test]
    fn caps_reduction_is_wrong_on_mic() {
        // Section V-D2: "cannot get the correct results on MIC".
        let s = setup();
        let mut cfg = VariantCfg::independent();
        cfg.reduction = true;
        let (r, c) = run_bp(CompilerId::Caps, &CompileOptions::mic(), &program(&cfg), &s);
        assert!(r.any_known_wrong);
        let want_h = reference_forward(&s.input, &s.w, N_IN, N_HID);
        let got_h = r.buffer(&c, "hidden").unwrap().as_f32();
        let v = compare_f32(&got_h[1..], &want_h[1..], 1e-4);
        assert!(!v.passed, "MIC reduction must produce wrong results");
        // The known-wrong plan is reported by the compiler too.
        assert!(matches!(
            c.plan("layer_forward").unwrap().correctness,
            Correctness::Wrong { .. }
        ));
    }

    #[test]
    fn caps_reduction_on_gpu_is_correct_but_not_faster() {
        let s = setup();
        let indep = program(&VariantCfg::independent());
        let mut cfg = VariantCfg::independent();
        cfg.reduction = true;
        let red = program(&cfg);
        let o = CompileOptions::gpu();

        let (r, c) = run_bp(CompilerId::Caps, &o, &red, &s);
        check(&r, &c, &s); // correct on GPU…

        // …but no speedup (perf bug), while PGI gains a lot.
        let rc = RunConfig::timing(
            vec![
                ("n_in".into(), PAPER_N_IN as f64),
                ("n_hid".into(), PAPER_N_HID as f64),
            ],
            1,
        );
        let t = |id, p: &paccport_ir::Program| {
            run(&compile(id, p, &o).unwrap(), &rc).unwrap().kernel_time
        };
        let forward_t = |id, p: &paccport_ir::Program| {
            run(&compile(id, p, &o).unwrap(), &rc)
                .unwrap()
                .kernel_stats
                .iter()
                .find(|s| s.name == "layer_forward")
                .unwrap()
                .device_time
        };
        let caps_i = t(CompilerId::Caps, &indep);
        let caps_r = t(CompilerId::Caps, &red);
        assert!(
            caps_r > caps_i * 0.8,
            "CAPS reduction must not help: {caps_r} vs {caps_i}"
        );
        // PGI's reduction helps it…
        let pgi_i = t(CompilerId::Pgi, &indep);
        let pgi_r = t(CompilerId::Pgi, &red);
        assert!(
            pgi_r < pgi_i,
            "PGI reduction should improve PGI: {pgi_r} vs {pgi_i}"
        );
        // …and Section V-D2's headline: "The PGI version runs much
        // faster than the CAPS version" (forward kernel, where the
        // reduction lives).
        let caps_fwd = forward_t(CompilerId::Caps, &red);
        let pgi_fwd = forward_t(CompilerId::Pgi, &red);
        assert!(
            pgi_fwd < caps_fwd / 5.0,
            "PGI reduction forward {pgi_fwd} must be much faster than CAPS {caps_fwd}"
        );
    }

    #[test]
    fn opencl_forward_with_local_memory_is_correct_and_fast() {
        let s = setup();
        let (r, c) = run_bp(
            CompilerId::OpenClHand,
            &CompileOptions::gpu(),
            &opencl_program(128),
            &s,
        );
        check(&r, &c, &s);
        // Fig. 12/14: the OpenCL version beats the plain OpenACC one.
        let o = CompileOptions::gpu();
        let rc = RunConfig::timing(
            vec![
                ("n_in".into(), PAPER_N_IN as f64),
                ("n_hid".into(), PAPER_N_HID as f64),
            ],
            1,
        );
        let t_acc = run(
            &compile(CompilerId::Caps, &program(&VariantCfg::independent()), &o).unwrap(),
            &rc,
        )
        .unwrap()
        .kernel_time;
        let t_ocl = run(
            &compile(CompilerId::OpenClHand, &opencl_program(128), &o).unwrap(),
            &rc,
        )
        .unwrap()
        .kernel_time;
        assert!(t_ocl < t_acc, "OpenCL {t_ocl} must beat OpenACC {t_acc}");
    }

    #[test]
    fn unroll_after_reduction_changes_nothing() {
        // Fig. 14: "the generated PTX instructions remain the same".
        let o = CompileOptions::gpu();
        let mut red = VariantCfg::independent();
        red.reduction = true;
        let mut red_unroll = red;
        red_unroll.unroll = Some(8);
        let a = compile(CompilerId::Caps, &program(&red), &o).unwrap();
        let b = compile(CompilerId::Caps, &program(&red_unroll), &o).unwrap();
        assert!(a.module.counts().unchanged_from(&b.module.counts()));
    }

    #[test]
    fn baseline_faster_on_mic_and_independent_helps_more_on_gpu() {
        // Fig. 12 shape at paper scale.
        let base = program(&VariantCfg::baseline());
        let indep = program(&VariantCfg::independent());
        let rc = RunConfig::timing(
            vec![
                ("n_in".into(), PAPER_N_IN as f64),
                ("n_hid".into(), PAPER_N_HID as f64),
            ],
            1,
        );
        let t = |p: &paccport_ir::Program, o: &CompileOptions| {
            run(&compile(CompilerId::Caps, p, o).unwrap(), &rc)
                .unwrap()
                .kernel_time
        };
        let g = CompileOptions::gpu();
        let m = CompileOptions::mic();
        let (bg, bm) = (t(&base, &g), t(&base, &m));
        assert!(
            bm < bg,
            "sequential BP must be faster on MIC ({bm} vs {bg})"
        );
        let (ig, im) = (t(&indep, &g), t(&indep, &m));
        let (sp_g, sp_m) = (bg / ig, bm / im);
        assert!(sp_g > 2.0, "GPU speedup {sp_g}");
        assert!(sp_m > 1.2, "MIC speedup {sp_m}");
        assert!(
            sp_g > sp_m,
            "GPU gains more from parallelism ({sp_g} vs {sp_m})"
        );
    }
}
