//! Gaussian Elimination (Rodinia `gaussian`) — Section V-B.
//!
//! Solves `A·x = b` by forward elimination on the device (the timed
//! part) and back substitution on the host (as in Rodinia). The
//! baseline OpenACC version launches **three** kernels per outer step
//! (`Fan1` multipliers, `Fan2a` matrix update, `Fan2b` RHS update);
//! the *reorganized* version merges the updates into two kernels,
//! matching the hand-written OpenCL structure (Fig. 9's `3N` vs `2N`
//! kernel-launch counts).
//!
//! Paper findings reproduced here:
//! * PGI keeps the triangular 2-D update sequential until
//!   `independent` is added, then locks `[128,1]` (Fig. 9's `1x1` →
//!   `128x1` thread rows);
//! * CAPS gridifies 2-D with 32×4 blocks once `independent` is given;
//! * CAPS unroll-and-jam is a fake success (flat bodies, PTX
//!   unchanged), while PGI's `-Munroll` nearly doubles arithmetic and
//!   data movement without helping (Section V-B3);
//! * the "advanced thread distribution" discovered in CAPS's HMPP
//!   codelets (Fig. 8) — exact 2-D global sizes per launch — beats the
//!   baseline OpenCL version's fixed full-matrix ranges.

use crate::common::VariantCfg;
use paccport_ir::{
    if_, ld, st, Block, Expr, HostStmt, Intent, Kernel, LaunchHint, ParallelLoop, ProgramBuilder,
    Scalar, E,
};

/// Reference forward elimination (in place): produces the eliminated
/// `a` and `b` exactly as the device kernels should.
pub fn reference_eliminate(a: &mut [f32], b: &mut [f32], n: usize) {
    let mut m = vec![0.0f32; n * n];
    for t in 0..n - 1 {
        for i in t + 1..n {
            m[i * n + t] = a[i * n + t] / a[t * n + t];
        }
        for i in t + 1..n {
            for j in t..n {
                a[i * n + j] -= m[i * n + t] * a[t * n + j];
            }
            b[i] -= m[i * n + t] * b[t];
        }
    }
}

/// Back substitution on the eliminated system (host side, as in
/// Rodinia).
pub fn back_substitute(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut x = vec![0.0f32; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for j in i + 1..n {
            sum -= a[i * n + j] * x[j];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

/// Residual ‖A₀·x − b₀‖∞ of a solution against the original system.
pub fn residual(a0: &[f32], b0: &[f32], x: &[f32], n: usize) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..n {
        let mut ax = 0.0f64;
        for j in 0..n {
            ax += a0[i * n + j] as f64 * x[j] as f64;
        }
        worst = worst.max((ax - b0[i] as f64).abs());
    }
    worst
}

/// Build the OpenACC Gaussian-elimination program.
pub fn program(cfg: &VariantCfg) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new("gaussian");
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
    let rhs = b.array("b", Scalar::F32, n, Intent::InOut);
    let m = b.array("m", Scalar::F32, E::from(n) * n, Intent::Scratch);
    let t = b.var("t");
    let i = b.var("i");
    let j = b.var("j");
    let i2 = b.var("i2");
    let i3 = b.var("i3");

    let clause = |lp: &mut ParallelLoop| {
        lp.clauses.independent = cfg.independent;
        if let Some((g, w)) = cfg.gang_worker {
            lp.clauses.gang = Some(g);
            lp.clauses.worker = Some(w);
        }
        lp.clauses.unroll_jam = cfg.unroll;
    };

    // Fan1: multipliers for column t.
    let mut fan1_loop = ParallelLoop::new(i, (E::from(t) + 1i64).expr(), Expr::param(n));
    clause(&mut fan1_loop);
    fan1_loop.clauses.tile = cfg.tile; // Step 4 applies to the flat rank-1 kernel.
    let fan1 = Kernel::simple(
        "fan1",
        vec![fan1_loop],
        Block::new(vec![st(
            m,
            E::from(i) * n + t,
            ld(a, E::from(i) * n + t) / ld(a, E::from(t) * n + t),
        )]),
    );

    // Matrix update.
    let mut fan2a_outer = ParallelLoop::new(i2, (E::from(t) + 1i64).expr(), Expr::param(n));
    let mut fan2a_inner = ParallelLoop::new(j, Expr::var(t), Expr::param(n));
    clause(&mut fan2a_outer);
    fan2a_inner.clauses.independent = cfg.independent;

    let update_a = st(
        a,
        E::from(i2) * n + j,
        ld(a, E::from(i2) * n + j) - ld(m, E::from(i2) * n + t) * ld(a, E::from(t) * n + j),
    );
    let update_b = st(
        rhs,
        E::from(i2),
        ld(rhs, E::from(i2)) - ld(m, E::from(i2) * n + t) * ld(rhs, E::from(t)),
    );

    let kernels: Vec<Kernel> = if cfg.reorganized {
        // Two kernels: Fan1 + a merged Fan2 whose j == t lane also
        // updates the RHS (the OpenCL structure).
        let fan2 = Kernel::simple(
            "fan2",
            vec![fan2a_outer, fan2a_inner],
            Block::new(vec![
                update_a.clone(),
                if_(E::from(j).eq_(E::from(t)), vec![update_b.clone()]),
            ]),
        );
        vec![fan1, fan2]
    } else {
        // Three kernels (the baseline's "three kernel loops").
        let fan2a = Kernel::simple(
            "fan2a",
            vec![fan2a_outer, fan2a_inner],
            Block::new(vec![update_a.clone()]),
        );
        let mut fan2b_loop = ParallelLoop::new(i3, (E::from(t) + 1i64).expr(), Expr::param(n));
        clause(&mut fan2b_loop);
        let fan2b = Kernel::simple(
            "fan2b",
            vec![fan2b_loop],
            Block::new(vec![st(
                rhs,
                E::from(i3),
                ld(rhs, E::from(i3)) - ld(m, E::from(i3) * n + t) * ld(rhs, E::from(t)),
            )]),
        );
        vec![fan1, fan2a, fan2b]
    };

    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![a, rhs, m],
        body: vec![HostStmt::HostLoop {
            var: t,
            lo: Expr::iconst(0),
            hi: (E::from(n) - 1i64).expr(),
            body: kernels.into_iter().map(HostStmt::Launch).collect(),
        }],
    }])
}

/// Build the hand-written OpenCL version.
///
/// * `advanced = false`: the Rodinia original — fixed full-range 2-D
///   NDRanges with in-kernel guards (`i > t`), wasting threads on
///   already-eliminated rows;
/// * `advanced = true`: the Fig.-8 configuration lifted from CAPS's
///   generated codelets — global sizes match the live sub-matrix.
pub fn opencl_program(advanced: bool) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new(if advanced {
        "gaussian_ocl_advanced"
    } else {
        "gaussian_ocl"
    });
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
    let rhs = b.array("b", Scalar::F32, n, Intent::InOut);
    let m = b.array("m", Scalar::F32, E::from(n) * n, Intent::Scratch);
    let t = b.var("t");
    let i = b.var("i");
    let i2 = b.var("i2");
    let j = b.var("j");

    let hint1d = LaunchHint {
        local: (256, 1),
        two_d: false,
        group_per_iter: false,
    };
    let hint2d = LaunchHint {
        local: (32, 4),
        two_d: true,
        group_per_iter: false,
    };

    let (fan1_lo, fan2_lo): (Expr, Expr) = if advanced {
        ((E::from(t) + 1i64).expr(), (E::from(t) + 1i64).expr())
    } else {
        (Expr::iconst(0), Expr::iconst(0))
    };

    let mut fan1 = Kernel::simple(
        "fan1",
        vec![ParallelLoop::new(i, fan1_lo, Expr::param(n))],
        Block::new(vec![if_(
            E::from(i).gt(E::from(t)),
            vec![st(
                m,
                E::from(i) * n + t,
                ld(a, E::from(i) * n + t) / ld(a, E::from(t) * n + t),
            )],
        )]),
    );
    fan1.launch_hint = Some(hint1d);

    let mut fan2 = Kernel::simple(
        "fan2",
        vec![
            ParallelLoop::new(i2, fan2_lo.clone(), Expr::param(n)),
            ParallelLoop::new(
                j,
                if advanced {
                    Expr::var(t)
                } else {
                    Expr::iconst(0)
                },
                Expr::param(n),
            ),
        ],
        Block::new(vec![if_(
            E::from(i2).gt(E::from(t)).and(E::from(j).ge(E::from(t))),
            vec![
                st(
                    a,
                    E::from(i2) * n + j,
                    ld(a, E::from(i2) * n + j)
                        - ld(m, E::from(i2) * n + t) * ld(a, E::from(t) * n + j),
                ),
                if_(
                    E::from(j).eq_(E::from(t)),
                    vec![st(
                        rhs,
                        E::from(i2),
                        ld(rhs, E::from(i2)) - ld(m, E::from(i2) * n + t) * ld(rhs, E::from(t)),
                    )],
                ),
            ],
        )]),
    );
    fan2.launch_hint = Some(hint2d);

    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![a, rhs, m],
        body: vec![HostStmt::HostLoop {
            var: t,
            lo: Expr::iconst(0),
            hi: (E::from(n) - 1i64).expr(),
            body: vec![HostStmt::Launch(fan1), HostStmt::Launch(fan2)],
        }],
    }])
}

/// The paper's input size (Table IV): an 8K × 8K system.
pub const PAPER_N: usize = 8192;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{diag_dominant_matrix, random_vec};
    use paccport_compilers::{compile, CompileOptions, CompilerId, Flag};
    use paccport_devsim::{run, Buffer, RunConfig, RunResult};
    use paccport_ir::validate;
    use paccport_ptx::Category;

    fn solve_with(
        compiler: CompilerId,
        options: &CompileOptions,
        p: &paccport_ir::Program,
        n: usize,
    ) -> (
        RunResult,
        paccport_compilers::CompiledProgram,
        Vec<f32>,
        Vec<f32>,
    ) {
        let c = compile(compiler, p, options).unwrap();
        let a0 = diag_dominant_matrix(n, 11);
        let b0 = random_vec(n, 12);
        let rc = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(a0.clone()))
            .with_input("b", Buffer::F32(b0.clone()));
        let r = run(&c, &rc).unwrap();
        (r, c, a0, b0)
    }

    fn check_solution(
        r: &RunResult,
        c: &paccport_compilers::CompiledProgram,
        a0: &[f32],
        b0: &[f32],
        n: usize,
    ) {
        let a = r.buffer(c, "a").unwrap().as_f32();
        let b = r.buffer(c, "b").unwrap().as_f32();
        let x = back_substitute(a, b, n);
        let res = residual(a0, b0, &x, n);
        assert!(res < 1e-2, "residual {res}");
    }

    #[test]
    fn reference_solves_the_system() {
        let n = 24;
        let a0 = diag_dominant_matrix(n, 3);
        let b0 = random_vec(n, 4);
        let mut a = a0.clone();
        let mut b = b0.clone();
        reference_eliminate(&mut a, &mut b, n);
        let x = back_substitute(&a, &b, n);
        assert!(residual(&a0, &b0, &x, n) < 1e-3);
    }

    #[test]
    fn variants_are_well_formed() {
        for cfg in [VariantCfg::baseline(), VariantCfg::independent(), {
            let mut c = VariantCfg::independent();
            c.reorganized = true;
            c
        }] {
            validate(&program(&cfg)).expect("valid IR");
        }
        validate(&opencl_program(false)).expect("valid OCL IR");
        validate(&opencl_program(true)).expect("valid advanced OCL IR");
    }

    #[test]
    fn baseline_has_3n_launches_and_reorganized_2n() {
        let n = 16;
        let (r3, c3, a0, b0) = solve_with(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            n,
        );
        check_solution(&r3, &c3, &a0, &b0, n);
        let total3: u64 = r3.kernel_stats.iter().map(|s| s.launches).sum();
        assert_eq!(total3, 3 * (n as u64 - 1));

        let mut cfg = VariantCfg::independent();
        cfg.reorganized = true;
        let (r2, c2, a0, b0) =
            solve_with(CompilerId::Caps, &CompileOptions::gpu(), &program(&cfg), n);
        check_solution(&r2, &c2, &a0, &b0, n);
        let total2: u64 = r2.kernel_stats.iter().map(|s| s.launches).sum();
        assert_eq!(total2, 2 * (n as u64 - 1));
    }

    #[test]
    fn pgi_baseline_serializes_fan2_until_independent() {
        let n = 16;
        let (r, c, a0, b0) = solve_with(
            CompilerId::Pgi,
            &CompileOptions::gpu(),
            &program(&VariantCfg::baseline()),
            n,
        );
        check_solution(&r, &c, &a0, &b0, n);
        let fan2 = r.kernel_stats.iter().find(|s| s.name == "fan2a").unwrap();
        assert_eq!(fan2.config_label, "1x1");

        let (ri, ci, a0, b0) = solve_with(
            CompilerId::Pgi,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            n,
        );
        check_solution(&ri, &ci, &a0, &b0, n);
        let fan2 = ri.kernel_stats.iter().find(|s| s.name == "fan2a").unwrap();
        assert_eq!(fan2.config_label, "128x1");
        assert!(ri.elapsed < r.elapsed, "independent must speed PGI up");
    }

    #[test]
    fn caps_gridify_2d_on_fan2() {
        let (r, c, a0, b0) = solve_with(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &program(&VariantCfg::independent()),
            16,
        );
        check_solution(&r, &c, &a0, &b0, 16);
        let fan2 = r.kernel_stats.iter().find(|s| s.name == "fan2a").unwrap();
        assert_eq!(fan2.config_label, "32x4");
    }

    #[test]
    fn opencl_versions_solve_correctly() {
        for adv in [false, true] {
            let n = 16;
            let (r, c, a0, b0) = solve_with(
                CompilerId::OpenClHand,
                &CompileOptions::gpu(),
                &opencl_program(adv),
                n,
            );
            check_solution(&r, &c, &a0, &b0, n);
        }
    }

    #[test]
    fn advanced_ndrange_beats_fixed_ranges() {
        // Fig. 7/8: the advanced thread distribution (exact global
        // sizes) outperforms the constant-size original.
        let o = CompileOptions::gpu();
        let rc = RunConfig::timing(vec![("n".into(), 2048.0)], 1);
        let base = compile(CompilerId::OpenClHand, &opencl_program(false), &o).unwrap();
        let adv = compile(CompilerId::OpenClHand, &opencl_program(true), &o).unwrap();
        let tb = run(&base, &rc).unwrap().elapsed;
        let ta = run(&adv, &rc).unwrap().elapsed;
        assert!(ta < tb, "advanced {ta} must beat baseline {tb}");
    }

    #[test]
    fn caps_fake_unroll_vs_pgi_real_unroll() {
        // Section V-B3: CAPS's unroll leaves the PTX unchanged (fake
        // success); PGI's -Munroll nearly doubles arithmetic and data
        // movement.
        let o = CompileOptions::gpu();
        let mut cfg = VariantCfg::independent();
        cfg.reorganized = true;
        let base_p = program(&cfg);
        cfg.unroll = Some(8);
        let unroll_p = program(&cfg);

        let cb = compile(CompilerId::Caps, &base_p, &o).unwrap();
        let cu = compile(CompilerId::Caps, &unroll_p, &o).unwrap();
        assert!(
            cu.module.counts().unchanged_from(&cb.module.counts()),
            "CAPS: PTX must be unchanged (fake success)"
        );

        let pb = compile(CompilerId::Pgi, &base_p, &o).unwrap();
        let pu = compile(
            CompilerId::Pgi,
            &base_p,
            &o.clone().with_flag(Flag::Munroll),
        )
        .unwrap();
        let arith = |c: &paccport_compilers::CompiledProgram| {
            c.module
                .kernel("fan2_kernel")
                .unwrap()
                .counts()
                .get(Category::Arithmetic)
        };
        let ratio = arith(&pu) as f64 / arith(&pb) as f64;
        assert!(
            ratio > 1.5,
            "PGI -Munroll should nearly double arithmetic, got {ratio:.2}x"
        );
    }
}
