//! LU Decomposition (Rodinia LUD) — Section V-A of the paper.
//!
//! Compute-intensive dense linear algebra: decompose `A = L·U` in
//! place (Doolittle, no pivoting — inputs are made diagonally
//! dominant). The OpenACC structure mirrors the Rodinia source: a
//! sequential outer `i` loop on the host launching two rank-1 kernels
//! per step, each with an inner accumulation loop over `k`:
//!
//! ```text
//! for i in 0..n:                      // host
//!   lud_row:  for j in i..n   (par):  a[i][j] -= Σ_{k<i} a[i][k]·a[k][j]
//!   lud_col:  for j in i+1..n (par):  a[j][i]  = (a[j][i] - Σ_{k<i} a[j][k]·a[k][i]) / a[i][i]
//! ```
//!
//! Paper findings reproduced here:
//! * `independent` cannot be added — the analysis reports (conservative)
//!   dependences (Section V-A1);
//! * CAPS's default distribution bug makes the baseline ~1000× slower
//!   than PGI's; explicit gang/worker closes the gap (Fig. 3);
//! * the best portable distribution is `(gang ≥ 256, worker 16)` on
//!   the GPU and `(240, 1)` on the MIC (Fig. 4);
//! * unroll-and-jam grows CAPS's PTX but not performance; CAPS tiling
//!   and PGI `-Munroll` silently change nothing (Fig. 6).

use crate::common::VariantCfg;
use paccport_ir::{
    assign, for_, ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop,
    ProgramBuilder, Scalar, E,
};

/// Reference in-place Doolittle decomposition (row-major, no pivot).
pub fn reference(a: &mut [f32], n: usize) {
    for i in 0..n {
        // Row i of U.
        for j in i..n {
            let mut sum = a[i * n + j];
            for k in 0..i {
                sum -= a[i * n + k] * a[k * n + j];
            }
            a[i * n + j] = sum;
        }
        // Column i of L.
        for j in i + 1..n {
            let mut sum = a[j * n + i];
            for k in 0..i {
                sum -= a[j * n + k] * a[k * n + i];
            }
            a[j * n + i] = sum / a[i * n + i];
        }
    }
}

/// Multiply the packed L·U factors back into a dense matrix.
pub fn lu_multiply(lu: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut sum = 0.0f32;
            let kmax = i.min(j);
            for k in 0..kmax {
                sum += lu[i * n + k] * lu[k * n + j];
            }
            // L has an implicit unit diagonal.
            sum += if i <= j {
                lu[i * n + j]
            } else {
                lu[i * n + j] * lu[j * n + j]
            };
            out[i * n + j] = sum;
        }
    }
    out
}

/// Build the OpenACC LUD program for a variant configuration.
pub fn program(cfg: &VariantCfg) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new("lud");
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
    let i = b.var("i");
    let j = b.var("j");
    let j2 = b.var("j2");
    let kv = b.var("k");
    let kv2 = b.var("k2");
    let sum = b.var("sum");
    let sum2 = b.var("sum2");

    let apply_clauses = |lp: &mut ParallelLoop| {
        lp.clauses.independent = cfg.independent;
        if let Some((g, w)) = cfg.gang_worker {
            lp.clauses.gang = Some(g);
            lp.clauses.worker = Some(w);
        }
        lp.clauses.unroll_jam = cfg.unroll;
        lp.clauses.tile = cfg.tile;
    };

    // lud_row: j in i..n.
    let mut row_loop = ParallelLoop::new(j, Expr::var(i), Expr::param(n));
    apply_clauses(&mut row_loop);
    let row = Kernel::simple(
        "lud_row",
        vec![row_loop],
        Block::new(vec![
            let_(sum, Scalar::F32, ld(a, E::from(i) * n + j)),
            for_(
                kv,
                0i64,
                E::from(i),
                vec![assign(
                    sum,
                    E::from(sum) - ld(a, E::from(i) * n + kv) * ld(a, E::from(kv) * n + j),
                )],
            ),
            st(a, E::from(i) * n + j, E::from(sum)),
        ]),
    );

    // lud_col: j2 in i+1..n.
    let mut col_loop = ParallelLoop::new(j2, (E::from(i) + 1i64).expr(), Expr::param(n));
    apply_clauses(&mut col_loop);
    let col = Kernel::simple(
        "lud_col",
        vec![col_loop],
        Block::new(vec![
            let_(sum2, Scalar::F32, ld(a, E::from(j2) * n + i)),
            for_(
                kv2,
                0i64,
                E::from(i),
                vec![assign(
                    sum2,
                    E::from(sum2) - ld(a, E::from(j2) * n + kv2) * ld(a, E::from(kv2) * n + i),
                )],
            ),
            st(
                a,
                E::from(j2) * n + i,
                E::from(sum2) / ld(a, E::from(i) * n + i),
            ),
        ]),
    );

    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![a],
        body: vec![HostStmt::HostLoop {
            var: i,
            lo: Expr::iconst(0),
            hi: Expr::param(n),
            body: vec![HostStmt::Launch(row), HostStmt::Launch(col)],
        }],
    }])
}

/// The paper's default input size (Table IV): a 4K × 4K matrix.
pub const PAPER_N: usize = 4096;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{compare_f32, diag_dominant_matrix};
    use paccport_compilers::{compile, CompileOptions, CompilerId, DistSpec, ExecStrategy};
    use paccport_devsim::{run, Buffer, RunConfig};
    use paccport_ir::validate;

    #[test]
    fn reference_reconstructs_the_matrix() {
        let n = 24;
        let a0 = diag_dominant_matrix(n, 1);
        let mut lu = a0.clone();
        reference(&mut lu, n);
        let back = lu_multiply(&lu, n);
        let v = compare_f32(&back, &a0, 1e-3);
        assert!(v.passed, "{}", v.detail);
    }

    #[test]
    fn all_variants_are_well_formed() {
        for cfg in [
            VariantCfg::baseline(),
            VariantCfg::thread_dist(256, 16),
            {
                let mut c = VariantCfg::thread_dist(256, 16);
                c.unroll = Some(8);
                c
            },
            {
                let mut c = VariantCfg::thread_dist(256, 16);
                c.tile = Some(32);
                c
            },
        ] {
            let p = program(&cfg);
            validate(&p).expect("valid IR");
        }
    }

    fn run_and_check(
        compiler: CompilerId,
        options: &CompileOptions,
        cfg: &VariantCfg,
        n: usize,
    ) -> paccport_devsim::RunResult {
        let p = program(cfg);
        let c = compile(compiler, &p, options).unwrap();
        let a0 = diag_dominant_matrix(n, 7);
        let rc = RunConfig::functional(vec![("n".into(), n as f64)])
            .with_input("a", Buffer::F32(a0.clone()));
        let r = run(&c, &rc).unwrap();
        let mut want = a0;
        reference(&mut want, n);
        let v = compare_f32(r.buffer(&c, "a").unwrap().as_f32(), &want, 1e-3);
        assert!(v.passed, "{} {:?}: {}", compiler.label(), cfg, v.detail);
        r
    }

    #[test]
    fn caps_baseline_computes_correctly_but_sequentially() {
        let r = run_and_check(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &VariantCfg::baseline(),
            32,
        );
        assert_eq!(r.kernel_stats[0].config_label, "1x1");
    }

    #[test]
    fn caps_gang_mode_computes_correctly_in_parallel() {
        let r = run_and_check(
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &VariantCfg::thread_dist(256, 16),
            32,
        );
        assert_eq!(r.kernel_stats[0].config_label, "256x16");
    }

    #[test]
    fn unrolled_variant_still_computes_correctly() {
        let mut cfg = VariantCfg::thread_dist(256, 16);
        cfg.unroll = Some(8);
        run_and_check(CompilerId::Caps, &CompileOptions::gpu(), &cfg, 33);
    }

    #[test]
    fn pgi_baseline_is_parallel_and_correct() {
        let r = run_and_check(
            CompilerId::Pgi,
            &CompileOptions::gpu(),
            &VariantCfg::baseline(),
            32,
        );
        // PGI auto-parallelizes the rank-1 affine loops (128x1).
        assert_eq!(r.kernel_stats[0].config_label, "128x1");
        assert!(r.kernel_stats[0].ran_on_device);
    }

    #[test]
    fn mic_variants_compute_correctly() {
        run_and_check(
            CompilerId::Caps,
            &CompileOptions::mic(),
            &VariantCfg::thread_dist(240, 1),
            32,
        );
    }

    #[test]
    fn independent_is_refused_by_the_dependence_analysis() {
        // Step 1 of the method must decline (Section V-A1).
        let p = program(&VariantCfg::baseline());
        for k in p.kernels() {
            let rep = paccport_ir::analyze_loop(k, 0);
            assert!(
                !rep.is_independent(),
                "kernel `{}` should look dependent to a conservative tool",
                k.name
            );
        }
    }

    #[test]
    fn caps_tile_is_silent_on_lud() {
        // Fig. 6: tiling leaves the PTX unchanged (nested body).
        let base = program(&VariantCfg::thread_dist(256, 16));
        let mut tiled_cfg = VariantCfg::thread_dist(256, 16);
        tiled_cfg.tile = Some(32);
        let tiled = program(&tiled_cfg);
        let o = CompileOptions::gpu();
        let cb = compile(CompilerId::Caps, &base, &o).unwrap();
        let ct = compile(CompilerId::Caps, &tiled, &o).unwrap();
        assert!(ct.module.counts().unchanged_from(&cb.module.counts()));
        // …whereas unroll really does grow the PTX.
        let mut u = VariantCfg::thread_dist(256, 16);
        u.unroll = Some(8);
        let cu = compile(CompilerId::Caps, &program(&u), &o).unwrap();
        assert!(cu.module.len() > cb.module.len());
    }

    #[test]
    fn caps_sequential_baseline_is_about_1000x_slower_than_pgi() {
        // The headline Fig. 3 observation, at paper scale (timing-only).
        let o = CompileOptions::gpu();
        let caps = compile(CompilerId::Caps, &program(&VariantCfg::baseline()), &o).unwrap();
        let pgi = compile(CompilerId::Pgi, &program(&VariantCfg::baseline()), &o).unwrap();
        let rc = RunConfig::timing(vec![("n".into(), PAPER_N as f64)], 1);
        let t_caps = run(&caps, &rc).unwrap().elapsed;
        let t_pgi = run(&pgi, &rc).unwrap().elapsed;
        let ratio = t_caps / t_pgi;
        assert!(
            (200.0..20000.0).contains(&ratio),
            "expected a ~1000x gap, got {ratio:.0}x ({t_caps:.1}s vs {t_pgi:.3}s)"
        );
        // Thread distribution closes the gap to within ~3x.
        let dist = compile(
            CompilerId::Caps,
            &program(&VariantCfg::thread_dist(256, 16)),
            &o,
        )
        .unwrap();
        let t_dist = run(&dist, &rc).unwrap().elapsed;
        assert!(
            t_dist / t_pgi < 3.0,
            "gang mode should close the gap: {t_dist:.2}s vs {t_pgi:.2}s"
        );
    }

    #[test]
    fn caps_sequential_matches_on_gpu_and_mic() {
        // Fig. 3: the broken baseline performs *similarly* on GPU and
        // MIC (both serialized; MIC's faster single thread).
        let base = program(&VariantCfg::baseline());
        let g = compile(CompilerId::Caps, &base, &CompileOptions::gpu()).unwrap();
        let m = compile(CompilerId::Caps, &base, &CompileOptions::mic()).unwrap();
        let rc = RunConfig::timing(vec![("n".into(), 1024.0)], 1);
        let tg = run(&g, &rc).unwrap().elapsed;
        let tm = run(&m, &rc).unwrap().elapsed;
        let ratio = tg / tm;
        assert!(
            (0.5..12.0).contains(&ratio),
            "same order of magnitude expected, got {ratio}"
        );
    }

    #[test]
    fn dist_spec_for_explicit_clauses() {
        let p = program(&VariantCfg::thread_dist(256, 16));
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        assert_eq!(
            c.plan("lud_row").unwrap().dist,
            DistSpec::GangWorker {
                gang: 256,
                worker: 16
            }
        );
        assert_eq!(
            c.plan("lud_row").unwrap().exec,
            ExecStrategy::DeviceParallel
        );
    }
}
