//! STREAM-style bandwidth micro-benchmarks (Copy / Scale / Add /
//! Triad).
//!
//! The authors' previous work (the paper's reference [11]) evaluated
//! OpenACC with SHOC, STREAM and EPCC before moving to Rodinia; we
//! include STREAM both for continuity and because it pins the device
//! model: a pure-bandwidth kernel must run at a sane fraction of the
//! modeled peak, scale with concurrency, and sit far above what the
//! same code achieves when the CAPS gang(1) bug serializes it.

use crate::common::VariantCfg;
use paccport_ir::{
    ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
};

/// Which STREAM kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamOp {
    pub fn label(self) -> &'static str {
        match self {
            StreamOp::Copy => "Copy",
            StreamOp::Scale => "Scale",
            StreamOp::Add => "Add",
            StreamOp::Triad => "Triad",
        }
    }

    /// Bytes moved per element (reads + writes, 4-byte floats).
    pub fn bytes_per_elem(self) -> u64 {
        match self {
            StreamOp::Copy | StreamOp::Scale => 8,
            StreamOp::Add | StreamOp::Triad => 12,
        }
    }
}

/// Build one STREAM kernel as an OpenACC program.
pub fn program(op: StreamOp, cfg: &VariantCfg) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new(format!("stream_{}", op.label().to_lowercase()));
    let n = b.iparam("n");
    let a = b.array("a", Scalar::F32, n, Intent::InOut);
    let bb = b.array("b", Scalar::F32, n, Intent::InOut);
    let c = b.array("c", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    const S: f64 = 3.0;

    let body = match op {
        StreamOp::Copy => st(c, i, ld(a, i)),
        StreamOp::Scale => st(bb, i, E::from(S) * ld(c, i)),
        StreamOp::Add => st(c, i, ld(a, i) + ld(bb, i)),
        StreamOp::Triad => st(a, i, ld(bb, i) + E::from(S) * ld(c, i)),
    };
    let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
    lp.clauses.independent = cfg.independent;
    if let Some((g, w)) = cfg.gang_worker {
        lp.clauses.gang = Some(g);
        lp.clauses.worker = Some(w);
    }
    let k = Kernel::simple(op.label().to_lowercase(), vec![lp], Block::new(vec![body]));
    b.finish(vec![HostStmt::DataRegion {
        arrays: vec![a, bb, c],
        body: vec![HostStmt::Launch(k)],
    }])
}

/// Reference result for validation.
pub fn reference(op: StreamOp, a: &mut [f32], b: &mut [f32], c: &mut [f32]) {
    const S: f32 = 3.0;
    for i in 0..a.len() {
        match op {
            StreamOp::Copy => c[i] = a[i],
            StreamOp::Scale => b[i] = S * c[i],
            StreamOp::Add => c[i] = a[i] + b[i],
            StreamOp::Triad => a[i] = b[i] + S * c[i],
        }
    }
}

/// Achieved device bandwidth (bytes/s) of a timing-only run.
pub fn measured_bandwidth(op: StreamOp, n: u64, kernel_seconds: f64) -> f64 {
    (n * op.bytes_per_elem()) as f64 / kernel_seconds
}

pub const ALL: [StreamOp; 4] = [
    StreamOp::Copy,
    StreamOp::Scale,
    StreamOp::Add,
    StreamOp::Triad,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{compare_f32, random_vec};
    use paccport_compilers::{compile, CompileOptions, CompilerId};
    use paccport_devsim::{k40, phi5110p, run, Buffer, RunConfig};

    #[test]
    fn all_ops_compute_correctly_everywhere() {
        let n = 128usize;
        for op in ALL {
            let p = program(op, &VariantCfg::independent());
            paccport_ir::validate(&p).expect("valid IR");
            for (compiler, opts) in [
                (CompilerId::Caps, CompileOptions::gpu()),
                (CompilerId::Caps, CompileOptions::mic()),
                (CompilerId::OpenClHand, CompileOptions::gpu()),
            ] {
                let c = compile(compiler, &p, &opts).unwrap();
                let (a0, b0, c0) = (random_vec(n, 1), random_vec(n, 2), random_vec(n, 3));
                let rc = RunConfig::functional(vec![("n".into(), n as f64)])
                    .with_input("a", Buffer::F32(a0.clone()))
                    .with_input("b", Buffer::F32(b0.clone()))
                    .with_input("c", Buffer::F32(c0.clone()));
                let r = run(&c, &rc).unwrap();
                let (mut wa, mut wb, mut wc) = (a0, b0, c0);
                reference(op, &mut wa, &mut wb, &mut wc);
                for (name, want) in [("a", &wa), ("b", &wb), ("c", &wc)] {
                    let v = compare_f32(r.buffer(&c, name).unwrap().as_f32(), want, 1e-6);
                    assert!(v.passed, "{op:?} {compiler:?} {name}: {}", v.detail);
                }
            }
        }
    }

    /// Triad at full occupancy must achieve 50–100% of modeled peak
    /// bandwidth on both devices — the device-model pin.
    #[test]
    fn triad_achieves_a_sane_bandwidth_fraction() {
        let n: u64 = 1 << 26;
        let p = program(StreamOp::Triad, &VariantCfg::independent());
        let rc = RunConfig::timing(vec![("n".into(), n as f64)], 1);
        for (opts, peak) in [
            (CompileOptions::gpu(), k40().mem_bw),
            (CompileOptions::mic(), phi5110p().mem_bw),
        ] {
            let c = compile(CompilerId::Caps, &p, &opts).unwrap();
            let r = run(&c, &rc).unwrap();
            let bw = measured_bandwidth(StreamOp::Triad, n, r.kernel_time);
            let frac = bw / peak;
            assert!(
                (0.4..=1.0).contains(&frac),
                "{:?}: {:.0} GB/s of {:.0} GB/s peak ({frac:.2})",
                opts.target,
                bw / 1e9,
                peak / 1e9
            );
        }
    }

    /// The gang(1) bug murders STREAM like everything else; copy and
    /// triad differ by their byte-per-element ratio when bandwidth
    /// bound.
    #[test]
    fn bandwidth_shape_sanity() {
        let n: u64 = 1 << 26;
        let rc = RunConfig::timing(vec![("n".into(), n as f64)], 1);
        let o = CompileOptions::gpu();
        let t = |op, cfg: &VariantCfg| {
            let c = compile(CompilerId::Caps, &program(op, cfg), &o).unwrap();
            run(&c, &rc).unwrap().kernel_time
        };
        let seq = t(StreamOp::Triad, &VariantCfg::baseline());
        let par = t(StreamOp::Triad, &VariantCfg::independent());
        assert!(seq / par > 100.0, "serialized STREAM: {seq} vs {par}");
        let copy = t(StreamOp::Copy, &VariantCfg::independent());
        let triad = t(StreamOp::Triad, &VariantCfg::independent());
        let ratio = triad / copy;
        assert!(
            (1.2..1.8).contains(&ratio),
            "triad/copy should track 12/8 bytes, got {ratio:.2}"
        );
    }
}
