//! Shared benchmark infrastructure: variant configuration, validation
//! reporting and seeded input generation.

use paccport_devsim::Buffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which optimization steps of the systematic method a program variant
/// carries. Each benchmark interprets the fields it supports; e.g.
/// LUD never gets `independent` (the dependence analysis refuses it —
/// Section V-A1), and only BP uses `reduction`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VariantCfg {
    /// Step 1: `#pragma acc loop independent`.
    pub independent: bool,
    /// Step 2: explicit gang/worker clauses (CAPS gang mode; PGI
    /// honours them while no `independent` is present).
    pub gang_worker: Option<(u32, u32)>,
    /// Step 3: HMPP `unroll(n), jam`.
    pub unroll: Option<u32>,
    /// Step 4: `tile(n)`.
    pub tile: Option<u32>,
    /// The `reduction` directive (Back Propagation, Section V-D2).
    pub reduction: bool,
    /// Loop reorganization (GE: 3 kernel loops → 2; BFS: match the
    /// OpenCL structure).
    pub reorganized: bool,
}

impl VariantCfg {
    pub fn baseline() -> Self {
        VariantCfg::default()
    }

    pub fn independent() -> Self {
        VariantCfg {
            independent: true,
            ..Default::default()
        }
    }

    pub fn thread_dist(gang: u32, worker: u32) -> Self {
        VariantCfg {
            gang_worker: Some((gang, worker)),
            ..Default::default()
        }
    }

    /// Human-readable step name for figures ("Base", "Indep",
    /// "ThreadDist", …).
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.independent {
            parts.push("Indep".to_string());
        }
        if let Some((g, w)) = self.gang_worker {
            parts.push(format!("Dist({g},{w})"));
        }
        if self.reorganized {
            parts.push("Reorg".into());
        }
        if self.reduction {
            parts.push("Reduction".into());
        }
        if let Some(u) = self.unroll {
            parts.push(format!("Unroll({u})"));
        }
        if let Some(t) = self.tile {
            parts.push(format!("Tile({t})"));
        }
        if parts.is_empty() {
            "Base".into()
        } else {
            parts.join("+")
        }
    }
}

/// Outcome of comparing a run against the reference implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct Validation {
    pub passed: bool,
    pub max_abs_err: f64,
    pub checked_values: usize,
    pub detail: String,
}

impl Validation {
    pub fn pass(max_abs_err: f64, checked: usize) -> Self {
        Validation {
            passed: true,
            max_abs_err,
            checked_values: checked,
            detail: String::new(),
        }
    }

    pub fn fail(max_abs_err: f64, checked: usize, detail: impl Into<String>) -> Self {
        Validation {
            passed: false,
            max_abs_err,
            checked_values: checked,
            detail: detail.into(),
        }
    }
}

/// Element-wise comparison of two f32 slices with an absolute+relative
/// tolerance.
pub fn compare_f32(got: &[f32], want: &[f32], tol: f64) -> Validation {
    assert_eq!(got.len(), want.len(), "length mismatch");
    let mut max_err = 0.0f64;
    let mut worst = 0usize;
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        let denom = 1.0f64.max(w.abs() as f64);
        let err = ((*g as f64) - (*w as f64)).abs() / denom;
        if err > max_err {
            max_err = err;
            worst = i;
        }
    }
    if max_err <= tol {
        Validation::pass(max_err, got.len())
    } else {
        Validation::fail(
            max_err,
            got.len(),
            format!(
                "worst at [{worst}]: got {} want {}",
                got[worst], want[worst]
            ),
        )
    }
}

/// Exact comparison of two i32 slices.
pub fn compare_i32(got: &[i32], want: &[i32]) -> Validation {
    assert_eq!(got.len(), want.len(), "length mismatch");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if g != w {
            return Validation::fail(
                (*g as f64 - *w as f64).abs(),
                got.len(),
                format!("mismatch at [{i}]: got {g} want {w}"),
            );
        }
    }
    Validation::pass(0.0, got.len())
}

/// Seeded RNG so every run of the suite sees identical inputs.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random matrix made strongly diagonally dominant, so LU without
/// pivoting and Gaussian elimination are well conditioned.
pub fn diag_dominant_matrix(n: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    let mut a = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = r.gen_range(0.0..1.0);
        }
        a[i * n + i] += n as f32;
    }
    a
}

/// Random vector in [0, 1).
pub fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(0.0..1.0)).collect()
}

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkRow {
    pub kernel: &'static str,
    pub dwarf: &'static str,
    pub domain: &'static str,
    pub input_size: &'static str,
}

/// Table IV: "The four kernel benchmarks".
pub fn table4() -> Vec<BenchmarkRow> {
    vec![
        BenchmarkRow {
            kernel: "LU Decomposition",
            dwarf: "Dense Linear Algebra",
            domain: "Linear Algebra",
            input_size: "4K matrix",
        },
        BenchmarkRow {
            kernel: "Gaussian Elimination",
            dwarf: "Dense Linear Algebra",
            domain: "Linear Algebra",
            input_size: "8K matrix",
        },
        BenchmarkRow {
            kernel: "Breadth First Search",
            dwarf: "Graph Traversal",
            domain: "Graph Algorithms",
            input_size: "32M nodes",
        },
        BenchmarkRow {
            kernel: "Back Propagation",
            dwarf: "Unstructured Grid",
            domain: "Pattern Recognition",
            input_size: "20M layers",
        },
    ]
}

/// Convenience: turn a `Vec<f32>` into a device buffer.
pub fn f32_buf(v: Vec<f32>) -> Buffer {
    Buffer::F32(v)
}

/// Convenience: turn a `Vec<i32>` into a device buffer.
pub fn i32_buf(v: Vec<i32>) -> Buffer {
    Buffer::I32(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_labels() {
        assert_eq!(VariantCfg::baseline().label(), "Base");
        assert_eq!(VariantCfg::independent().label(), "Indep");
        assert_eq!(VariantCfg::thread_dist(256, 16).label(), "Dist(256,16)");
        let mut v = VariantCfg::independent();
        v.unroll = Some(8);
        assert_eq!(v.label(), "Indep+Unroll(8)");
    }

    #[test]
    fn comparison_tolerances() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.00001, 3.0];
        assert!(compare_f32(&a, &b, 1e-4).passed);
        assert!(!compare_f32(&a, &[1.0, 2.5, 3.0], 1e-4).passed);
        assert!(compare_i32(&[1, 2], &[1, 2]).passed);
        assert!(!compare_i32(&[1, 2], &[1, 3]).passed);
    }

    #[test]
    fn matrix_is_diagonally_dominant() {
        let n = 16;
        let a = diag_dominant_matrix(n, 42);
        for i in 0..n {
            let off: f32 = (0..n).filter(|j| *j != i).map(|j| a[i * n + j]).sum();
            assert!(a[i * n + i] > off, "row {i}");
        }
    }

    #[test]
    fn rng_is_deterministic() {
        assert_eq!(random_vec(8, 7), random_vec(8, 7));
        assert_ne!(random_vec(8, 7), random_vec(8, 8));
    }

    #[test]
    fn table4_matches_paper() {
        let t = table4();
        assert_eq!(t.len(), 4);
        assert_eq!(t[2].dwarf, "Graph Traversal");
        assert_eq!(t[3].input_size, "20M layers");
    }
}
