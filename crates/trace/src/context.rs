//! Deterministic request trace identity.
//!
//! The experiment server needs every request to carry a trace id that
//! is a *pure function* of the request — the same `(fingerprint,
//! seed)` must yield the same id across `--jobs` levels, repeats, and
//! server restarts, so a flight-recorder lookup by id is stable and
//! two loadgen runs against fresh servers sample identical traces.
//! Random ids (the usual W3C practice) would break all of that, so
//! ids here are derived: two FNV-1a-64 passes over the fingerprint
//! with the seed folded in, rendered as the 32-hex-digit trace-id a
//! `traceparent` header expects.
//!
//! The wire format is W3C Trace Context
//! (`00-<32 hex trace-id>-<16 hex parent-id>-01`): a client that
//! already carries a trace can pass its own `traceparent` and the
//! server adopts that id instead of deriving one.

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derive the 32-hex-digit trace id for `(fingerprint, seed)`. The
/// two halves come from independent FNV passes (the second one is
/// salted), so distinct fingerprints that collide in one half still
/// separate in the other.
pub fn derive_trace_id(fingerprint: &str, seed: u64) -> String {
    let mut salted = Vec::with_capacity(fingerprint.len() + 8);
    salted.extend_from_slice(fingerprint.as_bytes());
    salted.extend_from_slice(&seed.to_le_bytes());
    let hi = fnv1a64(&salted);
    salted.extend_from_slice(&hi.to_le_bytes());
    let lo = fnv1a64(&salted);
    format!("{hi:016x}{lo:016x}")
}

/// Derive the 16-hex-digit span (parent) id the server answers with
/// — a pure function of the trace id, for the same reason.
pub fn derive_span_id(trace_id: &str) -> String {
    format!("{:016x}", fnv1a64(trace_id.as_bytes()))
}

/// Render a W3C `traceparent` header value for `trace_id`.
pub fn render_traceparent(trace_id: &str) -> String {
    format!("00-{trace_id}-{}-01", derive_span_id(trace_id))
}

fn is_lower_hex(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// Whether `id` is a well-formed trace id (32 lowercase hex digits,
/// not all zero) — the shape [`derive_trace_id`] produces and the
/// only shape the recorder indexes.
pub fn valid_trace_id(id: &str) -> bool {
    id.len() == 32 && is_lower_hex(id) && id.bytes().any(|b| b != b'0')
}

/// Extract the trace id from a `traceparent` header value, if it is
/// well-formed (`00-<32 hex>-<16 hex>-<2 hex>`); malformed values are
/// ignored rather than refused, per the W3C spec.
pub fn parse_traceparent(value: &str) -> Option<String> {
    let mut parts = value.trim().split('-');
    let (version, trace_id, parent_id, flags) =
        (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() && version == "00" {
        return None; // version 00 takes exactly four fields
    }
    if version.len() != 2 || !is_lower_hex(version) || version == "ff" {
        return None;
    }
    if !valid_trace_id(trace_id) {
        return None;
    }
    if parent_id.len() != 16 || !is_lower_hex(parent_id) || flags.len() != 2 || !is_lower_hex(flags)
    {
        return None;
    }
    Some(trace_id.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_pure_functions_of_fingerprint_and_seed() {
        let a = derive_trace_id("run|t0|lud|base|caps-cuda-k40|smoke|7", 7);
        let b = derive_trace_id("run|t0|lud|base|caps-cuda-k40|smoke|7", 7);
        assert_eq!(a, b);
        assert!(valid_trace_id(&a), "{a}");
        let c = derive_trace_id("run|t0|lud|base|caps-cuda-k40|smoke|8", 8);
        assert_ne!(a, c, "different seeds derive different ids");
        let d = derive_trace_id("stream|t0|lud|base|caps-cuda-k40|smoke|7", 7);
        assert_ne!(a, d, "different fingerprints derive different ids");
    }

    #[test]
    fn traceparent_round_trips() {
        let id = derive_trace_id("x", 1);
        let tp = render_traceparent(&id);
        assert_eq!(parse_traceparent(&tp).as_deref(), Some(id.as_str()));
    }

    #[test]
    fn malformed_traceparents_are_ignored() {
        for bad in [
            "",
            "00-short-0000000000000001-01",
            "00-00000000000000000000000000000000-0000000000000001-01", // all-zero id
            "00-ABCDEF00000000000000000000000000-0000000000000001-01", // uppercase
            "ff-abcdef00000000000000000000000000-0000000000000001-01", // forbidden version
            "00-abcdef00000000000000000000000000-0000000000000001-01-extra",
            "00-abcdef00000000000000000000000000-01",
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?}");
        }
        // A future version may carry extra fields.
        assert!(parse_traceparent(
            "cc-abcdef00000000000000000000000000-0000000000000001-01-future"
        )
        .is_some());
    }
}
