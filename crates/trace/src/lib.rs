//! # paccport-trace — lightweight structured tracing
//!
//! A zero-dependency span/counter layer threaded through the compile
//! and simulation pipeline (`compilers::lower`, `compilers::transforms`,
//! `devsim::runner`, the experiment engine). Collection is off by
//! default and costs one relaxed atomic load per site; when enabled
//! (`reproduce --trace`, or [`set_enabled`] in tests) every span
//! records call count and total wall time, and every counter
//! accumulates, into a process-global registry keyed by name.
//!
//! Spans aggregate by name rather than forming a tree: the consumers
//! here want "how much time went into lowering vs. running, and how
//! many cache hits did the sweep get", not a flamegraph.
//!
//! ```
//! paccport_trace::reset();
//! paccport_trace::set_enabled(true);
//! {
//!     let _g = paccport_trace::span("demo.work");
//!     paccport_trace::add("demo.items", 3);
//! }
//! let s = paccport_trace::summary();
//! assert_eq!(s.counter("demo.items"), 3);
//! assert_eq!(s.span_count("demo.work"), 1);
//! paccport_trace::set_enabled(false);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

#[derive(Default)]
struct Registry {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Turn collection on or off (global; off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear all recorded spans and counters.
pub fn reset() {
    let mut r = registry().lock().unwrap();
    r.spans.clear();
    r.counters.clear();
}

/// Enter a span. The returned guard records count + elapsed time under
/// `name` when dropped. When tracing is disabled this is two atomic
/// loads and no allocation.
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        armed: enabled().then(|| (name, Instant::now())),
    }
}

pub struct SpanGuard {
    armed: Option<(&'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.armed.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let mut r = registry().lock().unwrap();
            let s = r.spans.entry(name.to_string()).or_default();
            s.count += 1;
            s.total_ns += ns;
        }
    }
}

/// Bump a named counter by `n` (no-op while tracing is disabled).
pub fn add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    let mut r = registry().lock().unwrap();
    *r.counters.entry(name.to_string()).or_default() += n;
}

/// An immutable snapshot of everything recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub spans: Vec<(String, SpanStat)>,
    pub counters: Vec<(String, u64)>,
}

impl Summary {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.count)
            .unwrap_or(0)
    }

    /// Human-readable report, names sorted, durations in ms.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== trace summary ==");
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<40}{:>10}{:>14}{:>14}",
                "span", "count", "total ms", "mean us"
            );
            for (name, s) in &self.spans {
                let total = Duration::from_nanos(s.total_ns);
                let mean_us = if s.count > 0 {
                    s.total_ns as f64 / s.count as f64 / 1e3
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:<40}{:>10}{:>14.3}{:>14.2}",
                    name,
                    s.count,
                    total.as_secs_f64() * 1e3,
                    mean_us
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<40}{:>10}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40}{v:>10}");
            }
        }
        out
    }
}

/// Snapshot the registry (sorted by name; `BTreeMap` order).
pub fn summary() -> Summary {
    let r = registry().lock().unwrap();
    Summary {
        spans: r.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        counters: r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run in parallel, so
    // each test uses its own names and never asserts global absence.

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        {
            let _g = span("test.disabled");
            add("test.disabled.counter", 5);
        }
        let s = summary();
        assert_eq!(s.span_count("test.disabled"), 0);
        assert_eq!(s.counter("test.disabled.counter"), 0);
    }

    #[test]
    fn spans_and_counters_aggregate() {
        set_enabled(true);
        for _ in 0..3 {
            let _g = span("test.aggregate");
            add("test.aggregate.counter", 2);
        }
        let s = summary();
        assert_eq!(s.span_count("test.aggregate"), 3);
        assert_eq!(s.counter("test.aggregate.counter"), 6);
        assert!(s.render().contains("test.aggregate"));
    }
}
