//! # paccport-trace — structured telemetry for the pipeline
//!
//! A zero-dependency telemetry layer threaded through the compile and
//! simulation pipeline (`compilers::lower`, `compilers::transforms`,
//! `devsim::runner`, the experiment engine). It has three concentric
//! collection modes, each gated by its own flag and off by default
//! (one relaxed atomic load per site when everything is off):
//!
//! * **aggregates** ([`set_enabled`], `reproduce --trace`) — every
//!   span records call count and total wall time, every counter
//!   accumulates; [`summary`] snapshots them as the classic
//!   [`Summary`] table. This is the original `paccport-trace`
//!   surface and stays byte-compatible.
//! * **events** ([`set_events_enabled`], `reproduce --trace-out`) —
//!   every span additionally records a timestamped [`SpanEvent`]
//!   (open/close time, lane/task/seq identity, nesting stack,
//!   `key=value` attributes) into a per-thread buffer. [`events`]
//!   merges the buffers into one deterministically ordered stream for
//!   the exporters in [`export`] (Chrome trace JSON, JSONL, folded
//!   flamegraph stacks).
//! * **metrics** ([`metrics::set_metrics_enabled`],
//!   `reproduce --metrics-out`) — counters mirror into the typed
//!   [`metrics`] registry and span closes observe duration
//!   histograms; instrumented crates add labeled hardware-counter
//!   metrics on top (per-kernel launches, device seconds, occupancy).
//!
//! ## Determinism
//!
//! Recording is per-thread (no global lock on the hot path, the fix
//! for the old single mutex'd map), but the *merged* stream must not
//! depend on which OS thread ran which job. Two mechanisms make the
//! exports structurally reproducible:
//!
//! * **Canonical lanes** — the experiment engine wraps each job in a
//!   [`task_scope`] carrying the job's *home lane* (submission index
//!   mod worker count) and a process-unique task ordinal allocated at
//!   submission time ([`alloc_tasks`]). Events are attributed to that
//!   scope even when a work-stealing thread actually ran the job, so
//!   the lane layout and event ordering are pure functions of the
//!   submission order. The physical thread is still recorded
//!   ([`SpanEvent::thread`]) but deliberately excluded from exports.
//! * **Pluggable clock** — timestamps come from a wall-clock epoch by
//!   default; when fault injection is configured,
//!   `paccport_faults::configure` installs the virtual clock via
//!   [`set_clock`], so an injected run's timestamps are themselves
//!   schedule-independent on the serial path.
//!
//! [`events`] returns the merged stream sorted by
//! `(lane, task, seq)` — submission order, not wall-clock order — so
//! two runs with the same flags produce identically ordered exports
//! and differ only in the timestamp fields.
//!
//! ```
//! paccport_trace::reset();
//! paccport_trace::set_enabled(true);
//! paccport_trace::set_events_enabled(true);
//! {
//!     let _g = paccport_trace::span("demo.work");
//!     paccport_trace::add("demo.items", 3);
//! }
//! let s = paccport_trace::summary();
//! assert_eq!(s.counter("demo.items"), 3);
//! assert_eq!(s.span_count("demo.work"), 1);
//! let ev = paccport_trace::events();
//! assert_eq!(ev.iter().filter(|e| e.name == "demo.work").count(), 1);
//! paccport_trace::set_enabled(false);
//! paccport_trace::set_events_enabled(false);
//! ```

pub mod context;
pub mod export;
pub mod json;
pub mod metrics;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ===================================================================
// Collection flags
// ===================================================================

/// Aggregate spans/counters (the classic `--trace` summary).
const F_AGG: u8 = 1;
/// Timestamped event stream (`--trace-out`).
const F_EVENTS: u8 = 2;
/// Typed metrics registry (`--metrics-out`); the bit lives here so
/// one atomic load gates every site, but the registry itself is in
/// [`metrics`].
pub(crate) const F_METRICS: u8 = 4;

pub(crate) static FLAGS: AtomicU8 = AtomicU8::new(0);

pub(crate) fn flags() -> u8 {
    FLAGS.load(Ordering::Relaxed)
}

fn set_flag(bit: u8, on: bool) {
    if on {
        FLAGS.fetch_or(bit, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// Turn aggregate collection on or off (global; off by default).
pub fn set_enabled(on: bool) {
    set_flag(F_AGG, on);
}

/// Whether aggregate collection is currently on.
pub fn enabled() -> bool {
    flags() & F_AGG != 0
}

/// Turn the timestamped event stream on or off.
pub fn set_events_enabled(on: bool) {
    set_flag(F_EVENTS, on);
}

/// Whether the event stream is currently on.
pub fn events_enabled() -> bool {
    flags() & F_EVENTS != 0
}

// ===================================================================
// Clock
// ===================================================================

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[allow(clippy::type_complexity)]
fn clock_slot() -> &'static Mutex<Option<fn() -> u64>> {
    static CLOCK: OnceLock<Mutex<Option<fn() -> u64>>> = OnceLock::new();
    CLOCK.get_or_init(|| Mutex::new(None))
}

/// Install (or with `None`, remove) an alternative timestamp source.
/// `paccport-faults` installs its virtual clock here while fault
/// injection is configured, so injected runs export deterministic
/// timestamps instead of wall-clock ones.
pub fn set_clock(source: Option<fn() -> u64>) {
    *clock_slot().lock().unwrap() = source;
}

/// Current trace timestamp in nanoseconds: the installed clock if
/// any, otherwise wall time since the process's first trace call.
pub fn now_ns() -> u64 {
    if let Some(f) = *clock_slot().lock().unwrap() {
        return f();
    }
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

// ===================================================================
// Per-thread buffers
// ===================================================================

/// One completed span, as the event stream records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Site name (`devsim.run`, `engine.job`, …).
    pub name: String,
    /// Canonical lane: 0 for the main thread, `1 + (job % workers)`
    /// for engine jobs (the job's *home* worker, stable across
    /// work-stealing schedules).
    pub lane: u32,
    /// Process-unique task ordinal of the enclosing [`task_scope`]
    /// (0 outside any scope), allocated in submission order.
    pub task: u64,
    /// Span-open order within the `(lane, task)` scope.
    pub seq: u64,
    /// Nesting depth at open (0 = top level of its scope).
    pub depth: u32,
    /// Names of the enclosing open spans, outermost first.
    pub stack: Vec<String>,
    /// Registration ordinal of the OS thread that recorded the span.
    /// Schedule-dependent, so exporters deliberately omit it.
    pub thread: u32,
    /// Request context of the enclosing [`request_scope`] (0 outside
    /// any request) — how the server partitions one shared event
    /// stream into per-request traces.
    pub ctx: u64,
    /// Clock at open ([`now_ns`]).
    pub start_ns: u64,
    /// Close minus open.
    pub dur_ns: u64,
    /// `key=value` attributes, in the order given at the call site.
    pub attrs: Vec<(String, String)>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
}

struct OpenSpan {
    name: &'static str,
    attrs: Vec<(String, String)>,
    start_ns: u64,
    seq: u64,
}

#[derive(Default)]
struct ThreadBuf {
    thread: u32,
    lane: u32,
    task: u64,
    ctx: u64,
    next_seq: u64,
    open: Vec<OpenSpan>,
    events: Vec<SpanEvent>,
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
}

type SharedBuf = Arc<Mutex<ThreadBuf>>;

fn all_bufs() -> &'static Mutex<Vec<SharedBuf>> {
    static ALL: OnceLock<Mutex<Vec<SharedBuf>>> = OnceLock::new();
    ALL.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static NEXT_TASK: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TL_BUF: RefCell<Option<SharedBuf>> = const { RefCell::new(None) };
}

fn with_buf<R>(f: impl FnOnce(&mut ThreadBuf) -> R) -> R {
    TL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let arc = slot.get_or_insert_with(|| {
            let buf = Arc::new(Mutex::new(ThreadBuf {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                ..ThreadBuf::default()
            }));
            all_bufs().lock().unwrap().push(buf.clone());
            buf
        });
        let mut b = arc.lock().unwrap();
        f(&mut b)
    })
}

/// Reserve `n` consecutive task ordinals, returning the first. The
/// engine calls this once per batch *at submission time* (on the
/// caller's thread), which is what makes task ids — and therefore the
/// merged event order — independent of worker scheduling.
pub fn alloc_tasks(n: u64) -> u64 {
    NEXT_TASK.fetch_add(n, Ordering::Relaxed)
}

/// Attribute everything this thread records, until the guard drops,
/// to canonical `(lane, task)` instead of the default main scope.
/// Restores the previous scope (including its sequence counter) on
/// drop, so scopes nest.
#[must_use = "the scope lasts until the guard drops"]
pub fn task_scope(lane: u32, task: u64) -> ScopeGuard {
    if flags() == 0 {
        return ScopeGuard { prev: None };
    }
    let prev = with_buf(|b| {
        let prev = (b.lane, b.task, b.next_seq);
        b.lane = lane;
        b.task = task;
        b.next_seq = 0;
        prev
    });
    ScopeGuard { prev: Some(prev) }
}

pub struct ScopeGuard {
    prev: Option<(u32, u64, u64)>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some((lane, task, seq)) = self.prev.take() {
            with_buf(|b| {
                b.lane = lane;
                b.task = task;
                b.next_seq = seq;
            });
        }
    }
}

/// Tag everything this thread records, until the guard drops, with
/// request context `ctx` ([`SpanEvent::ctx`]). The server opens one
/// scope per request handler (and the engine re-enters the
/// submitter's context on its worker threads), so the merged event
/// stream partitions cleanly by request even while requests run
/// concurrently. Scopes nest and restore on drop like [`task_scope`].
#[must_use = "the scope lasts until the guard drops"]
pub fn request_scope(ctx: u64) -> RequestScopeGuard {
    if flags() == 0 {
        return RequestScopeGuard { prev: None };
    }
    let prev = with_buf(|b| {
        let prev = b.ctx;
        b.ctx = ctx;
        prev
    });
    RequestScopeGuard { prev: Some(prev) }
}

/// The request context this thread currently records under (0 when
/// outside any [`request_scope`]) — the engine reads it at batch
/// submission to re-enter the same context on its workers.
pub fn current_ctx() -> u64 {
    if flags() == 0 {
        return 0;
    }
    with_buf(|b| b.ctx)
}

pub struct RequestScopeGuard {
    prev: Option<u64>,
}

impl Drop for RequestScopeGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            with_buf(|b| b.ctx = prev);
        }
    }
}

/// Drain every event recorded under request context `ctx` out of the
/// per-thread buffers, returning them in canonical `(lane, task,
/// seq)` order. This is how the server's flight recorder collects one
/// request's spans without disturbing concurrent requests — and how a
/// long-lived server keeps the buffers bounded: a request's events
/// leave the buffers the moment its trace is recorded, and buffers
/// belonging to exited engine workers are dropped once empty.
pub fn take_request_events(ctx: u64) -> Vec<SpanEvent> {
    let mut bufs = all_bufs().lock().unwrap();
    let mut out: Vec<SpanEvent> = Vec::new();
    for buf in bufs.iter() {
        let mut b = buf.lock().unwrap();
        let mut kept = Vec::with_capacity(b.events.len());
        for e in b.events.drain(..) {
            if e.ctx == ctx {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        b.events = kept;
    }
    // Prune buffers whose thread has exited (the registry holds the
    // only Arc) once their events are drained. Their aggregates move
    // to the retired store first so `summary` stays complete — the
    // engine spawns fresh scoped workers per batch, and without this
    // a long-lived server would grow one dead buffer per worker per
    // batch.
    bufs.retain(|buf| {
        if Arc::strong_count(buf) > 1 {
            return true;
        }
        let mut b = buf.lock().unwrap();
        if !b.events.is_empty() || !b.open.is_empty() {
            return true;
        }
        let mut retired = retired_aggregates().lock().unwrap();
        for (k, v) in std::mem::take(&mut b.spans) {
            let s = retired.spans.entry(k).or_default();
            s.count += v.count;
            s.total_ns += v.total_ns;
        }
        for (k, v) in std::mem::take(&mut b.counters) {
            *retired.counters.entry(k).or_default() += v;
        }
        false
    });
    out.sort_by_key(|e| (e.lane, e.task, e.seq, e.thread));
    out
}

/// Aggregates inherited from pruned (dead-thread) buffers.
#[derive(Default)]
struct Retired {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
}

fn retired_aggregates() -> &'static Mutex<Retired> {
    static RETIRED: OnceLock<Mutex<Retired>> = OnceLock::new();
    RETIRED.get_or_init(|| Mutex::new(Retired::default()))
}

// ===================================================================
// Spans and counters
// ===================================================================

/// Enter a span. The returned guard records count + elapsed time
/// under `name` when dropped (and, with events enabled, a full
/// [`SpanEvent`]). When all collection is off this is one atomic load
/// and no allocation.
#[must_use = "the span is recorded when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    span_attrs(name, Vec::new())
}

/// [`span`] with `key=value` attributes attached to the event (and to
/// the Chrome/JSONL exports). Attributes do not affect aggregation —
/// the summary still groups by name alone.
#[must_use = "the span is recorded when the guard drops"]
pub fn span_attrs(name: &'static str, attrs: Vec<(String, String)>) -> SpanGuard {
    if flags() == 0 {
        return SpanGuard { armed: false };
    }
    let start_ns = now_ns();
    with_buf(|b| {
        let seq = b.next_seq;
        b.next_seq += 1;
        b.open.push(OpenSpan {
            name,
            attrs,
            start_ns,
            seq,
        });
    });
    SpanGuard { armed: true }
}

pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end_ns = now_ns();
        let f = flags();
        let observed = with_buf(|b| {
            let frame = b.open.pop()?;
            let dur_ns = end_ns.saturating_sub(frame.start_ns);
            if f & (F_AGG | F_EVENTS) != 0 {
                let s = b.spans.entry(frame.name.to_string()).or_default();
                s.count += 1;
                s.total_ns += dur_ns;
            }
            if f & F_EVENTS != 0 {
                let event = SpanEvent {
                    name: frame.name.to_string(),
                    lane: b.lane,
                    task: b.task,
                    seq: frame.seq,
                    depth: b.open.len() as u32,
                    stack: b.open.iter().map(|o| o.name.to_string()).collect(),
                    thread: b.thread,
                    ctx: b.ctx,
                    start_ns: frame.start_ns,
                    dur_ns,
                    attrs: frame.attrs,
                };
                b.events.push(event);
            }
            Some((frame.name, dur_ns))
        });
        if f & F_METRICS != 0 {
            if let Some((name, dur_ns)) = observed {
                metrics::observe("trace_span_seconds", &[("span", name)], dur_ns as f64 / 1e9);
            }
        }
    }
}

/// Bump a named counter by `n` (no-op while all collection is off).
/// With metrics enabled the increment also mirrors into the typed
/// registry under the Prometheus-sanitized name (`cache.hit` →
/// `cache_hit`).
pub fn add(name: &'static str, n: u64) {
    let f = flags();
    if f == 0 {
        return;
    }
    if f & (F_AGG | F_EVENTS) != 0 {
        with_buf(|b| *b.counters.entry(name.to_string()).or_default() += n);
    }
    if f & F_METRICS != 0 {
        metrics::counter_add(&metrics::sanitize(name), &[], n);
    }
}

// ===================================================================
// Flush / snapshot
// ===================================================================

/// Clear all recorded spans, counters and events across every thread
/// buffer, and restart the task-ordinal allocator. (The metrics
/// registry has its own [`metrics::reset_metrics`].)
pub fn reset() {
    let bufs = all_bufs().lock().unwrap();
    for buf in bufs.iter() {
        let mut b = buf.lock().unwrap();
        b.events.clear();
        b.spans.clear();
        b.counters.clear();
        // Open frames are left alone: a guard on some thread's stack
        // will still pop its own frame.
    }
    let mut retired = retired_aggregates().lock().unwrap();
    retired.spans.clear();
    retired.counters.clear();
    NEXT_TASK.store(1, Ordering::Relaxed);
}

/// The merged event stream, sorted by `(lane, task, seq)` — i.e.
/// canonical submission order, not wall-clock arrival — with the
/// recording thread's registration ordinal as a final tie-break.
pub fn events() -> Vec<SpanEvent> {
    let bufs = all_bufs().lock().unwrap();
    let mut out: Vec<SpanEvent> = Vec::new();
    for buf in bufs.iter() {
        out.extend(buf.lock().unwrap().events.iter().cloned());
    }
    out.sort_by_key(|e| (e.lane, e.task, e.seq, e.thread));
    out
}

/// An immutable snapshot of the aggregates recorded so far.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    pub spans: Vec<(String, SpanStat)>,
    pub counters: Vec<(String, u64)>,
}

impl Summary {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    pub fn span_count(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.count)
            .unwrap_or(0)
    }

    /// Human-readable report, names sorted, durations in ms.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== trace summary ==");
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<40}{:>10}{:>14}{:>14}",
                "span", "count", "total ms", "mean us"
            );
            for (name, s) in &self.spans {
                let total = Duration::from_nanos(s.total_ns);
                let mean_us = if s.count > 0 {
                    s.total_ns as f64 / s.count as f64 / 1e3
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:<40}{:>10}{:>14.3}{:>14.2}",
                    name,
                    s.count,
                    total.as_secs_f64() * 1e3,
                    mean_us
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<40}{:>10}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<40}{v:>10}");
            }
        }
        out
    }
}

/// Snapshot the merged per-thread aggregates (sorted by name — the
/// merge goes through a `BTreeMap`, so the order is stable no matter
/// how many threads recorded).
pub fn summary() -> Summary {
    let bufs = all_bufs().lock().unwrap();
    let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    {
        let retired = retired_aggregates().lock().unwrap();
        for (k, v) in &retired.spans {
            let s = spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total_ns += v.total_ns;
        }
        for (k, v) in &retired.counters {
            *counters.entry(k.clone()).or_default() += v;
        }
    }
    for buf in bufs.iter() {
        let b = buf.lock().unwrap();
        for (k, v) in &b.spans {
            let s = spans.entry(k.clone()).or_default();
            s.count += v.count;
            s.total_ns += v.total_ns;
        }
        for (k, v) in &b.counters {
            *counters.entry(k.clone()).or_default() += v;
        }
    }
    Summary {
        spans: spans.into_iter().collect(),
        counters: counters.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and tests run in parallel, so
    // each test uses its own names and never asserts global absence.

    #[test]
    fn disabled_records_nothing() {
        set_enabled(false);
        {
            let _g = span("test.disabled");
            add("test.disabled.counter", 5);
        }
        let s = summary();
        assert_eq!(s.span_count("test.disabled"), 0);
        assert_eq!(s.counter("test.disabled.counter"), 0);
    }

    #[test]
    fn spans_and_counters_aggregate() {
        set_enabled(true);
        for _ in 0..3 {
            let _g = span("test.aggregate");
            add("test.aggregate.counter", 2);
        }
        let s = summary();
        assert_eq!(s.span_count("test.aggregate"), 3);
        assert_eq!(s.counter("test.aggregate.counter"), 6);
        assert!(s.render().contains("test.aggregate"));
    }

    #[test]
    fn events_carry_scope_stack_and_attrs() {
        set_enabled(true);
        set_events_enabled(true);
        {
            let _scope = task_scope(7, 1234);
            let _outer = span("test.ev.outer");
            let _inner = span_attrs("test.ev.inner", vec![("kernel".into(), "fan1".into())]);
        }
        let ev = events();
        let inner = ev
            .iter()
            .find(|e| e.name == "test.ev.inner")
            .expect("inner event recorded");
        assert_eq!(inner.lane, 7);
        assert_eq!(inner.task, 1234);
        assert_eq!(inner.stack, vec!["test.ev.outer".to_string()]);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.attrs, vec![("kernel".into(), "fan1".into())]);
        let outer = ev.iter().find(|e| e.name == "test.ev.outer").unwrap();
        assert_eq!(outer.depth, 0);
        assert!(outer.seq < inner.seq);
        assert!(outer.dur_ns >= inner.dur_ns);
        set_events_enabled(false);
        set_enabled(false);
    }

    #[test]
    fn request_scopes_partition_the_event_stream() {
        set_enabled(true);
        set_events_enabled(true);
        {
            let _r = request_scope(9001);
            let _s = span("test.ctx.niner");
        }
        {
            let _r = request_scope(9002);
            let _s = span("test.ctx.other");
        }
        {
            let _s = span("test.ctx.outside");
        }
        let mine = take_request_events(9001);
        assert_eq!(
            mine.iter().filter(|e| e.name == "test.ctx.niner").count(),
            1
        );
        assert!(mine.iter().all(|e| e.ctx == 9001));
        // Draining one context leaves the others alone…
        let ev = events();
        assert!(ev.iter().any(|e| e.name == "test.ctx.other"));
        assert!(!ev.iter().any(|e| e.name == "test.ctx.niner"));
        // …and a second drain of the same context comes back empty.
        assert!(take_request_events(9001).is_empty());
        // The aggregates survived the drain.
        assert!(summary().span_count("test.ctx.niner") >= 1);
        set_events_enabled(false);
        set_enabled(false);
    }

    #[test]
    fn task_scopes_restore_on_drop() {
        set_enabled(true);
        {
            let _a = task_scope(3, 30);
            {
                let _b = task_scope(4, 40);
                let _s = span("test.scope.inner");
            }
            let _s = span("test.scope.outer");
        }
        set_events_enabled(true);
        // Events were off above; just check the scope bookkeeping did
        // not corrupt subsequent recording.
        {
            let _s = span("test.scope.after");
        }
        let ev = events();
        let after = ev.iter().find(|e| e.name == "test.scope.after").unwrap();
        assert_eq!((after.lane, after.task), (0, 0));
        set_events_enabled(false);
        set_enabled(false);
    }
}
