//! Typed metrics registry with Prometheus-style text exposition.
//!
//! Three instrument kinds, all keyed by `(name, sorted labels)`:
//!
//! * **counters** — monotone `u64` totals ([`counter_add`]); every
//!   legacy `paccport_trace::add` mirrors here under the sanitized
//!   name, and instrumented crates add labeled ones on top
//!   (`devsim_kernel_launches_total{kernel="fan1"}`),
//! * **gauges** — last-write-wins `f64` ([`gauge_set`]),
//! * **histograms** — log₂-bucketed `f64` distributions
//!   ([`observe`]): bucket `i` covers `[2^(i-32), 2^(i-31))`, which
//!   spans sub-nanosecond timings to billions without configuration.
//!
//! Collection is gated by [`set_metrics_enabled`] (one relaxed atomic
//! load when off — instrumented crates check it before formatting
//! labels). [`render_prometheus`] emits the standard text format with
//! fully deterministic ordering: families sorted by name, series by
//! label set, histogram buckets cumulative in bound order.

use std::collections::BTreeMap;
use std::fmt::Write;
use std::sync::{Mutex, OnceLock};

use crate::{flags, F_METRICS};

/// Turn the metrics registry on or off (global; off by default).
pub fn set_metrics_enabled(on: bool) {
    if on {
        crate::FLAGS.fetch_or(F_METRICS, std::sync::atomic::Ordering::Relaxed);
    } else {
        crate::FLAGS.fetch_and(!F_METRICS, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Whether the metrics registry is currently collecting.
pub fn metrics_enabled() -> bool {
    flags() & F_METRICS != 0
}

/// Number of histogram buckets: indexes `0..=62` are the log₂
/// buckets, `63` is the overflow bucket (rendered as `+Inf` alone).
pub const HIST_BUCKETS: usize = 64;

/// Log₂ bucket index of a value: bucket `i` covers
/// `[2^(i-32), 2^(i-31))`; values at or below `2^-32` land in bucket
/// 0, values at or above `2^31` in the overflow bucket.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < 2.0f64.powi(-32) {
        return 0;
    }
    // Exact binary exponent from the bit pattern (v is normal here —
    // anything below 2^-32 already returned). `log2().floor()` would
    // misplace values within an ulp of a bucket bound, where the
    // correctly-rounded logarithm lands exactly on the next integer.
    let e = ((v.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    ((e + 32).clamp(0, HIST_BUCKETS as i64 - 1)) as usize
}

/// Upper (exclusive) bound of bucket `i`; the overflow bucket has no
/// finite bound.
pub fn bucket_bound(i: usize) -> Option<f64> {
    if i >= HIST_BUCKETS - 1 {
        None
    } else {
        Some(2.0f64.powi(i as i32 - 31))
    }
}

/// One log₂-bucketed histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub sum: f64,
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            sum: 0.0,
            count: 0,
        }
    }
}

impl Histogram {
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// The `q`-quantile (0 < q <= 1) as an order statistic over the
    /// bucketed observations, reported as the upper bound of the
    /// bucket the statistic lands in (`2^31` for the overflow
    /// bucket). Deterministic — no interpolation, no float summation
    /// order — so a loadgen report and a `/metrics` scrape computed
    /// from equal bucket counts agree exactly.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 * q).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bound(i).unwrap_or_else(|| 2.0f64.powi(31));
            }
        }
        2.0f64.powi(31)
    }
}

type Key = (String, Vec<(String, String)>);

/// One OpenMetrics exemplar: the label set (typically a single
/// `trace_id`) and value of a representative observation, attached to
/// the histogram bucket that observation landed in.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, Histogram>,
    /// Per-histogram, per-bucket exemplars (kept beside the
    /// histograms rather than inside [`Histogram`], so the plain
    /// bucket math stays `PartialEq`-comparable in tests).
    exemplars: BTreeMap<Key, BTreeMap<usize, Exemplar>>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    ls.sort();
    (name.to_string(), ls)
}

/// Prometheus-legal metric name: every character outside
/// `[a-zA-Z0-9_:]` becomes `_` (so `cache.hit` mirrors as
/// `cache_hit`).
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Add `n` to a counter (no-op while metrics are off).
pub fn counter_add(name: &str, labels: &[(&str, &str)], n: u64) {
    if !metrics_enabled() {
        return;
    }
    *registry()
        .lock()
        .unwrap()
        .counters
        .entry(key(name, labels))
        .or_default() += n;
}

/// Set a gauge (no-op while metrics are off).
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    if !metrics_enabled() {
        return;
    }
    registry()
        .lock()
        .unwrap()
        .gauges
        .insert(key(name, labels), v);
}

/// Record one observation into a histogram (no-op while metrics are
/// off).
pub fn observe(name: &str, labels: &[(&str, &str)], v: f64) {
    if !metrics_enabled() {
        return;
    }
    registry()
        .lock()
        .unwrap()
        .histograms
        .entry(key(name, labels))
        .or_default()
        .observe(v);
}

/// [`observe`] plus an exemplar: the observation is recorded
/// normally, and `(exemplar_labels, v)` replaces the exemplar of the
/// bucket it lands in. The server uses this to point every latency
/// bucket at a flight-recorder trace id.
pub fn observe_exemplar(
    name: &str,
    labels: &[(&str, &str)],
    v: f64,
    exemplar_labels: &[(&str, &str)],
) {
    if !metrics_enabled() {
        return;
    }
    let k = key(name, labels);
    let mut r = registry().lock().unwrap();
    r.histograms.entry(k.clone()).or_default().observe(v);
    r.exemplars.entry(k).or_default().insert(
        bucket_index(v),
        Exemplar {
            labels: exemplar_labels
                .iter()
                .map(|(ek, ev)| (ek.to_string(), ev.to_string()))
                .collect(),
            value: v,
        },
    );
}

/// Current value of a counter (0 if never bumped) — for tests and
/// cross-checks.
pub fn counter_value(name: &str, labels: &[(&str, &str)]) -> u64 {
    registry()
        .lock()
        .unwrap()
        .counters
        .get(&key(name, labels))
        .copied()
        .unwrap_or(0)
}

/// Snapshot of a histogram, if it exists.
pub fn histogram_snapshot(name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
    registry()
        .lock()
        .unwrap()
        .histograms
        .get(&key(name, labels))
        .cloned()
}

/// One `histogram_sums` row: the series' label set, observation sum,
/// and observation count.
pub type HistogramSum = (Vec<(String, String)>, f64, u64);

/// Histogram `(sum, count)` pairs for every label set of `name`,
/// sorted by label set — for the cross-check tests that sum
/// per-kernel device time.
pub fn histogram_sums(name: &str) -> Vec<HistogramSum> {
    registry()
        .lock()
        .unwrap()
        .histograms
        .iter()
        .filter(|((n, _), _)| n == name)
        .map(|((_, ls), h)| (ls.clone(), h.sum, h.count))
        .collect()
}

/// Clear every instrument.
pub fn reset_metrics() {
    let mut r = registry().lock().unwrap();
    r.counters.clear();
    r.gauges.clear();
    r.histograms.clear();
    r.exemplars.clear();
}

/// Escape a label value per the Prometheus text format: backslash,
/// double quote, and line feed (as the two-character sequence `\n`).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn labels_text(ls: &[(String, String)]) -> String {
    if ls.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = ls
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn labels_text_with(ls: &[(String, String)], extra_k: &str, extra_v: &str) -> String {
    let mut all: Vec<(String, String)> = ls.to_vec();
    all.push((extra_k.to_string(), extra_v.to_string()));
    labels_text(&all)
}

/// Exposition text of a histogram sum. Limited to 10 significant
/// digits: the observations themselves are deterministic, but the
/// order they are *added* in follows thread scheduling, so the last
/// few ulps of the sum are schedule noise. Truncating below the noise
/// floor keeps the rendered exposition byte-identical across runs.
fn fmt_sum(v: f64) -> String {
    if v == 0.0 || !v.is_finite() {
        format!("{v}")
    } else {
        format!("{v:.9e}")
    }
}

/// Render every instrument in the Prometheus text exposition format,
/// deterministically ordered.
pub fn render_prometheus() -> String {
    let r = registry().lock().unwrap();
    let mut out = String::new();
    let mut last_family = String::new();
    for ((name, ls), v) in &r.counters {
        if *name != last_family {
            let _ = writeln!(out, "# TYPE {name} counter");
            last_family = name.clone();
        }
        let _ = writeln!(out, "{name}{} {v}", labels_text(ls));
    }
    last_family.clear();
    for ((name, ls), v) in &r.gauges {
        if *name != last_family {
            let _ = writeln!(out, "# TYPE {name} gauge");
            last_family = name.clone();
        }
        let _ = writeln!(out, "{name}{} {v}", labels_text(ls));
    }
    last_family.clear();
    for ((name, ls), h) in &r.histograms {
        if *name != last_family {
            let _ = writeln!(out, "# TYPE {name} histogram");
            last_family = name.clone();
        }
        let exemplars = r.exemplars.get(&(name.clone(), ls.clone()));
        let mut cum = 0u64;
        for (i, n) in h.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            cum += n;
            let le = match bucket_bound(i) {
                Some(b) => format!("{b}"),
                None => "+Inf".to_string(),
            };
            // OpenMetrics exemplar suffix: `# {trace_id="…"} value`,
            // pointing a bucket at one representative observation.
            let exemplar = exemplars
                .and_then(|m| m.get(&i))
                .map(|e| format!(" # {} {}", labels_text(&e.labels), e.value))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}{exemplar}",
                labels_text_with(ls, "le", &le)
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {cum}",
            labels_text_with(ls, "le", "+Inf")
        );
        let _ = writeln!(out, "{name}_sum{} {}", labels_text(ls), fmt_sum(h.sum));
        let _ = writeln!(out, "{name}_count{} {}", labels_text(ls), h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global and
    /// `exposition_is_cumulative_and_labeled` resets it, so every
    /// test that writes to the registry serializes on this lock.
    fn registry_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_bounds_bracket_values() {
        for v in [1e-9, 0.5, 1.0, 1.5, 2.0, 1000.0, 3e9] {
            let i = bucket_index(v);
            if let Some(hi) = bucket_bound(i) {
                assert!(v < hi, "{v} must be under its bucket bound {hi}");
            }
            if i > 0 {
                let lo = bucket_bound(i - 1).unwrap();
                assert!(v >= lo, "{v} must be at or above the previous bound {lo}");
            }
        }
    }

    #[test]
    fn hostile_label_values_are_escaped_per_text_format() {
        let _lock = registry_test_lock();
        set_metrics_enabled(true);
        counter_add(
            "unit_hostile_total",
            &[("label", "back\\slash \"quoted\"\nnewline")],
            1,
        );
        let text = render_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("unit_hostile_total"))
            .expect("hostile series rendered");
        assert_eq!(
            line,
            "unit_hostile_total{label=\"back\\\\slash \\\"quoted\\\"\\nnewline\"} 1"
        );
        assert!(
            !line.contains('\n') && text.lines().count() > 1,
            "a raw newline in a label value must not split the series line"
        );
        set_metrics_enabled(false);
    }

    #[test]
    fn exemplars_attach_to_their_buckets() {
        let _lock = registry_test_lock();
        set_metrics_enabled(true);
        observe_exemplar(
            "unit_exemplar_seconds",
            &[("route", "run")],
            0.25,
            &[("trace_id", "deadbeefdeadbeefdeadbeefdeadbeef")],
        );
        observe("unit_exemplar_seconds", &[("route", "run")], 1000.0);
        let text = render_prometheus();
        let line = text
            .lines()
            .find(|l| l.starts_with("unit_exemplar_seconds_bucket") && l.contains("le=\"0.5\""))
            .expect("[0.25, 0.5) bucket rendered");
        assert!(
            line.ends_with("# {trace_id=\"deadbeefdeadbeefdeadbeefdeadbeef\"} 0.25"),
            "{line}"
        );
        // The plain observation's bucket carries no exemplar.
        let plain = text
            .lines()
            .find(|l| l.starts_with("unit_exemplar_seconds_bucket") && l.contains("le=\"1024\""))
            .expect("1000.0 bucket rendered");
        assert!(!plain.contains('#'), "{plain}");
        set_metrics_enabled(false);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");
        for _ in 0..9 {
            h.observe(0.3); // bucket bound 0.5
        }
        h.observe(100.0); // bucket bound 128
        assert_eq!(h.quantile(0.5), 0.5);
        assert_eq!(h.quantile(0.9), 0.5);
        assert_eq!(h.quantile(0.99), 128.0);
        assert_eq!(h.quantile(1.0), 128.0);
        let mut over = Histogram::default();
        over.observe(1e12);
        assert_eq!(over.quantile(0.5), 2.0f64.powi(31), "overflow bucket");
    }

    #[test]
    fn exposition_is_cumulative_and_labeled() {
        let _lock = registry_test_lock();
        set_metrics_enabled(true);
        reset_metrics();
        counter_add("unit_total", &[("leg", "a")], 2);
        counter_add("unit_total", &[("leg", "b")], 3);
        gauge_set("unit_gauge", &[], 1.5);
        observe("unit_seconds", &[], 0.5);
        observe("unit_seconds", &[], 1.5);
        let text = render_prometheus();
        assert!(text.contains("# TYPE unit_total counter"));
        assert!(text.contains("unit_total{leg=\"a\"} 2"));
        assert!(text.contains("unit_total{leg=\"b\"} 3"));
        assert!(text.contains("unit_gauge 1.5"));
        assert!(text.contains("unit_seconds_sum 2.000000000e0"));
        assert!(text.contains("unit_seconds_count 2"));
        assert!(text.contains("le=\"+Inf\"} 2"));
        set_metrics_enabled(false);
        reset_metrics();
    }
}
