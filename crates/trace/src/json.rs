//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace builds offline (no `serde_json`), but the telemetry
//! layer needs to *prove* its Chrome trace export is well-formed JSON
//! — the exporter golden tests and the `reproduce` CLI validate every
//! export by parsing it back through this module. It accepts exactly
//! RFC 8259 JSON (objects, arrays, strings with escapes, numbers,
//! booleans, null) and keeps object keys in document order so
//! structural comparisons are deterministic.

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Maximum container nesting [`parse`] accepts. Recursive descent
/// means nesting consumes call stack; a hostile `[[[[…` would
/// otherwise overflow it. 128 is far beyond anything the exporters
/// emit (the trace tree tops out around depth 6).
pub const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser {
        bytes,
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came in as
                    // a &str and pos only ever lands on char
                    // boundaries, so the tail re-validates cleanly).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| {
            c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|e| format!("bad number `{text}`: {e}"))?;
        // RFC 8259 has no NaN/Infinity; `f64::parse` would happily
        // accept `1e999` as `inf` (and the literal words as NaN/inf),
        // so reject anything non-finite rather than smuggle it into
        // a document that could never round-trip.
        if !n.is_finite() {
            return Err(format!("number `{text}` is not finite"));
        }
        Ok(Json::Num(n))
    }
}

/// Escape a string for inclusion in a JSON document (quotes not
/// included) — shared by the exporters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":true,"e":null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "{}extra"] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in ["1e999", "-1e999", "[1e400]", "{\"v\":2e308}"] {
            let err = parse(bad).unwrap_err();
            assert!(err.contains("not finite"), "`{bad}` => {err}");
        }
        // The largest finite double still parses.
        let v = parse("1.7976931348623157e308").unwrap();
        assert_eq!(v.as_f64(), Some(f64::MAX));
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        parse(&deep_ok).expect("exactly MAX_DEPTH parses");
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let over = format!(
                "{}1{}",
                open.repeat(MAX_DEPTH + 1),
                close.repeat(MAX_DEPTH + 1)
            );
            let err = parse(&over).unwrap_err();
            assert!(err.contains("nesting deeper than"), "{err}");
        }
        // A hostile unclosed prefix must fail fast, not overflow the
        // stack.
        assert!(parse(&"[".repeat(100_000)).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }
}
