//! Event-stream exporters: Chrome trace-event JSON, JSONL, and
//! folded flamegraph stacks.
//!
//! All three serialize the merged stream returned by
//! [`crate::events`] (already sorted by canonical `(lane, task,
//! seq)`), so the *structure* of an export — event order, names,
//! lanes, attributes — is a pure function of the run's submission
//! order. Only the timestamp fields (`ts`/`dur` in Chrome,
//! `start_ns`/`dur_ns` in JSONL, the sample values in folded output)
//! carry wall-clock readings; under fault injection they come from
//! the virtual clock instead and are deterministic too.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::json::escape;
use crate::{SpanEvent, Summary};

/// Which exporter `--trace-format` selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    Chrome,
    Jsonl,
    Folded,
}

impl TraceFormat {
    pub fn parse(name: &str) -> Result<TraceFormat, String> {
        match name {
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            "folded" => Ok(TraceFormat::Folded),
            other => Err(format!(
                "unknown trace format `{other}` (expected chrome|jsonl|folded)"
            )),
        }
    }
}

/// Render the stream in the selected format.
pub fn render(format: TraceFormat, events: &[SpanEvent], summary: &Summary) -> String {
    match format {
        TraceFormat::Chrome => chrome_trace(events, summary),
        TraceFormat::Jsonl => jsonl(events, summary),
        TraceFormat::Folded => folded(events),
    }
}

fn lane_name(lane: u32) -> String {
    if lane == 0 {
        "main".to_string()
    } else {
        format!("worker {lane}")
    }
}

/// Chrome trace-event JSON (the "JSON Array Format" with a
/// `traceEvents` wrapper), loadable in Perfetto or `chrome://tracing`.
///
/// * one metadata `thread_name` event per lane (lane 0 = "main",
///   lane *n* = "worker *n*", the canonical home lane of engine jobs),
/// * one complete (`"ph":"X"`) event per span, `tid` = lane, `args` =
///   the span's attributes plus its task ordinal,
/// * one counter (`"ph":"C"`) event per aggregate counter, carrying
///   the final total.
///
/// Timestamps are microseconds with nanosecond precision; everything
/// else is schedule-independent.
pub fn chrome_trace(events: &[SpanEvent], summary: &Summary) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for lane in &lanes {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                lane_name(*lane)
            ),
        );
    }

    let mut end_ns: u64 = 0;
    for e in events {
        end_ns = end_ns.max(e.start_ns + e.dur_ns);
        let mut args = format!("\"task\":{}", e.task);
        for (k, v) in &e.attrs {
            let _ = write!(args, ",\"{}\":\"{}\"", escape(k), escape(v));
        }
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                e.lane,
                escape(&e.name),
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
            ),
        );
    }

    for (name, value) in &summary.counters {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"{}\",\
                 \"ts\":{:.3},\"args\":{{\"value\":{value}}}}}",
                escape(name),
                end_ns as f64 / 1e3,
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

/// JSONL structured log: one self-contained JSON object per line —
/// `type:"span"` records in canonical order, then `type:"counter"`
/// totals. Grep-able and trivially machine-readable without loading
/// the whole document.
pub fn jsonl(events: &[SpanEvent], summary: &Summary) -> String {
    let mut out = String::new();
    for e in events {
        let stack: Vec<String> = e
            .stack
            .iter()
            .map(|s| format!("\"{}\"", escape(s)))
            .collect();
        let attrs: Vec<String> = e
            .attrs
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"lane\":{},\"task\":{},\"seq\":{},\
             \"depth\":{},\"stack\":[{}],\"start_ns\":{},\"dur_ns\":{},\"attrs\":{{{}}}}}",
            escape(&e.name),
            e.lane,
            e.task,
            e.seq,
            e.depth,
            stack.join(","),
            e.start_ns,
            e.dur_ns,
            attrs.join(","),
        );
    }
    for (name, value) in &summary.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        );
    }
    out
}

/// Folded-stack flamegraph text (`a;b;c 1234` — one line per distinct
/// stack, value = *self* nanoseconds, i.e. inclusive duration minus
/// the time attributed to child spans), ready for
/// `flamegraph.pl --countname=ns` or speedscope.
pub fn folded(events: &[SpanEvent]) -> String {
    let mut incl: BTreeMap<String, u64> = BTreeMap::new();
    let mut child_sum: BTreeMap<String, u64> = BTreeMap::new();
    for e in events {
        let mut path = e.stack.join(";");
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(&e.name);
        *incl.entry(path.clone()).or_default() += e.dur_ns;
        if !e.stack.is_empty() {
            *child_sum.entry(e.stack.join(";")).or_default() += e.dur_ns;
        }
    }
    let mut out = String::new();
    for (path, total) in &incl {
        let self_ns = total.saturating_sub(child_sum.get(path).copied().unwrap_or(0));
        let _ = writeln!(out, "{path} {self_ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(
        name: &str,
        stack: &[&str],
        lane: u32,
        task: u64,
        seq: u64,
        start: u64,
        dur: u64,
    ) -> SpanEvent {
        SpanEvent {
            name: name.into(),
            lane,
            task,
            seq,
            depth: stack.len() as u32,
            stack: stack.iter().map(|s| s.to_string()).collect(),
            thread: 0,
            ctx: 0,
            start_ns: start,
            dur_ns: dur,
            attrs: vec![("label".into(), "LUD Base".into())],
        }
    }

    fn sample() -> (Vec<SpanEvent>, Summary) {
        let events = vec![
            ev("engine.job", &[], 1, 1, 0, 0, 10_000),
            ev("devsim.run", &["engine.job"], 1, 1, 1, 2_000, 6_000),
            ev("engine.job", &[], 2, 2, 0, 500, 9_000),
        ];
        let summary = Summary {
            spans: Vec::new(),
            counters: vec![("cache.hit".into(), 3)],
        };
        (events, summary)
    }

    #[test]
    fn chrome_export_parses_and_names_lanes() {
        let (events, summary) = sample();
        let text = chrome_trace(&events, &summary);
        let doc = json::parse(&text).expect("chrome export must be valid JSON");
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 lane metadata + 3 spans + 1 counter.
        assert_eq!(arr.len(), 6);
        let names: Vec<&str> = arr
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(names, vec!["worker 1", "worker 2"]);
        let x: Vec<_> = arr
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(x.len(), 3);
        assert_eq!(
            x[1].get("args").unwrap().get("label").unwrap().as_str(),
            Some("LUD Base")
        );
        assert_eq!(x[0].get("dur").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let (events, summary) = sample();
        let text = jsonl(&events, &summary);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            json::parse(line).expect("every JSONL line parses");
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("span"));
        let last = json::parse(lines[3]).unwrap();
        assert_eq!(last.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(last.get("value").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn folded_subtracts_child_time() {
        let (events, _) = sample();
        let text = folded(&events);
        let mut lines: Vec<&str> = text.lines().collect();
        lines.sort();
        // engine.job inclusive 19000 across both lanes, minus the
        // 6000 in the nested devsim.run.
        assert!(lines.contains(&"engine.job 13000"), "{text}");
        assert!(lines.contains(&"engine.job;devsim.run 6000"), "{text}");
    }
}
