//! Event-stream telemetry under real threads: the merged stream must
//! be structurally identical no matter which OS thread ran which job
//! (canonical lanes + submission-time task ordinals), and the three
//! exporters must round-trip a live recording.
//!
//! Recording state is process-global, so the tests serialize on a
//! file-local mutex and reset up front.

use std::sync::Mutex;

use paccport_trace::export::{render, TraceFormat};
use paccport_trace::{
    add, alloc_tasks, events, json, reset, set_enabled, set_events_enabled, span, span_attrs,
    summary, task_scope, SpanEvent,
};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything about an event except the schedule-dependent fields
/// (timestamps and the physical recording thread).
type Shape = (
    String,
    u32,
    u64,
    u64,
    u32,
    Vec<String>,
    Vec<(String, String)>,
);

fn shape(ev: &[SpanEvent]) -> Vec<Shape> {
    ev.iter()
        .map(|e| {
            (
                e.name.clone(),
                e.lane,
                e.task,
                e.seq,
                e.depth,
                e.stack.clone(),
                e.attrs.clone(),
            )
        })
        .collect()
}

/// Simulate the engine's job wrapping: 6 jobs on 2 canonical lanes,
/// task ordinals allocated at submission, each job run on its own OS
/// thread. `spawn_reversed` scrambles the scheduling without touching
/// the submission order.
fn run_workload(spawn_reversed: bool) -> Vec<SpanEvent> {
    reset();
    const JOBS: usize = 6;
    const WORKERS: u32 = 2;
    let base = alloc_tasks(JOBS as u64);
    let mut order: Vec<usize> = (0..JOBS).collect();
    if spawn_reversed {
        order.reverse();
    }
    let handles: Vec<_> = order
        .into_iter()
        .map(|i| {
            std::thread::spawn(move || {
                let _scope = task_scope(i as u32 % WORKERS + 1, base + i as u64);
                let _job = span_attrs("tel.job", vec![("index".into(), i.to_string())]);
                let _inner = span("tel.job.step");
                add("tel.jobs_done", 1);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    events()
        .into_iter()
        .filter(|e| e.name.starts_with("tel."))
        .collect()
}

#[test]
fn merged_stream_is_schedule_independent() {
    let _l = guard();
    set_enabled(true);
    set_events_enabled(true);
    let forward = run_workload(false);
    let reversed = run_workload(true);
    assert_eq!(
        shape(&forward),
        shape(&reversed),
        "event structure must not depend on thread scheduling"
    );

    // 6 jobs × 2 spans each, sorted by (lane, task, seq).
    assert_eq!(forward.len(), 12);
    let mut lanes: Vec<u32> = forward.iter().map(|e| e.lane).collect();
    lanes.dedup();
    assert_eq!(lanes, vec![1, 2], "jobs land on their home lanes in order");
    for pair in forward.chunks(2) {
        assert_eq!(pair[0].name, "tel.job");
        assert_eq!(pair[1].name, "tel.job.step");
        assert_eq!(pair[1].stack, vec!["tel.job".to_string()]);
        assert_eq!((pair[0].seq, pair[1].seq), (0, 1));
        assert_eq!(pair[0].task, pair[1].task);
    }
    // Lane 1 holds even submission indexes in order, lane 2 odd ones.
    let idx = |e: &SpanEvent| e.attrs[0].1.parse::<usize>().unwrap();
    let lane1: Vec<usize> = forward
        .iter()
        .filter(|e| e.lane == 1 && e.name == "tel.job")
        .map(idx)
        .collect();
    assert_eq!(lane1, vec![0, 2, 4]);
    set_events_enabled(false);
    set_enabled(false);
}

#[test]
fn chrome_export_of_a_live_recording_parses_with_named_lanes() {
    let _l = guard();
    set_enabled(true);
    set_events_enabled(true);
    run_workload(false);
    let text = render(TraceFormat::Chrome, &events(), &summary());
    set_events_enabled(false);
    set_enabled(false);

    let doc = json::parse(&text).expect("chrome export must be valid JSON");
    let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let lane_names: Vec<&str> = arr
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
        .map(|e| {
            e.get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str()
                .unwrap()
        })
        .collect();
    assert!(lane_names.contains(&"worker 1"), "{lane_names:?}");
    assert!(lane_names.contains(&"worker 2"), "{lane_names:?}");
    let spans = arr
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
        .count();
    assert_eq!(spans, 12, "one complete event per recorded span");
    let counter = arr
        .iter()
        .find(|e| {
            e.get("ph").unwrap().as_str() == Some("C")
                && e.get("name").unwrap().as_str() == Some("tel.jobs_done")
        })
        .expect("aggregate counters export as counter events");
    assert_eq!(
        counter.get("args").unwrap().get("value").unwrap().as_f64(),
        Some(6.0)
    );
}

#[test]
fn jsonl_export_round_trips_line_by_line() {
    let _l = guard();
    set_enabled(true);
    set_events_enabled(true);
    run_workload(false);
    let text = render(TraceFormat::Jsonl, &events(), &summary());
    set_events_enabled(false);
    set_enabled(false);

    let mut span_lines = 0;
    let mut counter_lines = 0;
    for line in text.lines() {
        let obj = json::parse(line).expect("every JSONL line is one JSON object");
        match obj.get("type").unwrap().as_str().unwrap() {
            "span" => {
                span_lines += 1;
                assert!(obj.get("lane").unwrap().as_f64().is_some());
                assert!(obj.get("start_ns").unwrap().as_f64().is_some());
            }
            "counter" => counter_lines += 1,
            other => panic!("unexpected record type {other}"),
        }
    }
    assert_eq!(span_lines, 12);
    assert!(counter_lines >= 1);
}

#[test]
fn folded_export_has_one_stack_per_line_with_nanosecond_self_time() {
    let _l = guard();
    set_enabled(true);
    set_events_enabled(true);
    run_workload(false);
    let text = render(TraceFormat::Folded, &events(), &summary());
    set_events_enabled(false);
    set_enabled(false);

    assert!(!text.is_empty());
    for line in text.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`stack;path VALUE` format");
        assert!(!path.is_empty());
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("self-time must be integer ns: {line}"));
    }
    assert!(
        text.lines().any(|l| l.starts_with("tel.job;tel.job.step ")),
        "nested span folds under its parent:\n{text}"
    );
}
