//! Property tests for the log₂ histogram bucketing: exact index
//! placement, bound bracketing, monotonicity, and conservation of
//! observations. Pure functions only — no registry state, so no
//! serialization with the other telemetry tests is needed.

use paccport_trace::metrics::{bucket_bound, bucket_index, Histogram, HIST_BUCKETS};
use proptest::prelude::*;

#[test]
fn bounds_are_strictly_increasing_powers_of_two() {
    let mut prev = 0.0f64;
    for i in 0..HIST_BUCKETS - 1 {
        let b = bucket_bound(i).unwrap();
        assert!(b > prev, "bound {i} not increasing: {b} vs {prev}");
        assert_eq!(b.log2().fract(), 0.0, "bound {i} is not a power of two");
        prev = b;
    }
    assert_eq!(
        bucket_bound(HIST_BUCKETS - 1),
        None,
        "overflow bucket is unbounded"
    );
    assert_eq!(bucket_bound(0), Some(2.0f64.powi(-31)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Constructing v as mantissa × 2^exponent (exact in binary
    // floating point for these ranges) pins the expected bucket
    // analytically: bucket i covers [2^(i-32), 2^(i-31)).
    #[test]
    fn index_matches_the_binary_exponent(m in 1.0f64..2.0, e in -48i32..48) {
        let v = m * 2.0f64.powi(e);
        let expect = (e as i64 + 32).clamp(0, HIST_BUCKETS as i64 - 1) as usize;
        prop_assert_eq!(bucket_index(v), expect, "v = {m} * 2^{e}");
    }

    #[test]
    fn bounds_bracket_every_value(v in 1e-9f64..1e9) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        if let Some(hi) = bucket_bound(i) {
            prop_assert!(v < hi, "{v} at or above its bucket bound {hi}");
        }
        if i > 0 {
            let lo = bucket_bound(i - 1).unwrap();
            prop_assert!(v >= lo, "{v} below the previous bound {lo}");
        }
    }

    #[test]
    fn index_is_monotone(a in 1e-12f64..1e12, b in 1e-12f64..1e12) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            bucket_index(lo) <= bucket_index(hi),
            "index({lo}) > index({hi})"
        );
    }

    // Every observation lands in exactly one bucket: the bucket totals
    // and the count stay in lockstep, and the sum tracks arithmetic.
    #[test]
    fn observations_are_conserved(n in 1u64..200, v in 1e-3f64..100.0) {
        let mut h = Histogram::default();
        let mut expect_sum = 0.0;
        for j in 0..n {
            let x = v * (j + 1) as f64;
            h.observe(x);
            expect_sum += x;
        }
        prop_assert_eq!(h.count, n);
        prop_assert_eq!(h.buckets.iter().sum::<u64>(), n);
        prop_assert!(
            (h.sum - expect_sum).abs() <= 1e-9 * expect_sum,
            "sum drifted: {} vs {}", h.sum, expect_sum
        );
    }

    // Boundary values: an exact power of two opens its bucket (the
    // interval is closed below, open above).
    #[test]
    fn powers_of_two_open_their_bucket(e in -30i32..30) {
        let v = 2.0f64.powi(e);
        let i = bucket_index(v);
        prop_assert_eq!(i, (e + 32) as usize);
        prop_assert_eq!(bucket_bound(i - 1).unwrap(), v, "lower bound is inclusive");
        // The largest double below 2^e still belongs one bucket down.
        let below = f64::from_bits(v.to_bits() - 1);
        prop_assert_eq!(bucket_index(below), i - 1, "ulp below {v}");
    }
}

#[test]
fn out_of_range_values_land_in_the_edge_buckets() {
    assert_eq!(bucket_index(0.0), 0);
    assert_eq!(bucket_index(-3.5), 0);
    assert_eq!(bucket_index(f64::NAN), 0);
    assert_eq!(bucket_index(1e-300), 0, "underflow clamps to bucket 0");
    assert_eq!(
        bucket_index(1e300),
        HIST_BUCKETS - 1,
        "overflow clamps to +Inf bucket"
    );
    assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
}
