//! Black-box tests of the tracing surface: span nesting, counter
//! arithmetic, snapshot and render behavior.
//!
//! The registry and the enabled flag are process-global, so the tests
//! serialize on a file-local mutex and reset state up front rather
//! than relying on unique names alone.

use std::sync::Mutex;

use paccport_trace::{add, enabled, reset, set_enabled, span, summary};

static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn nested_spans_each_record_and_inner_time_is_contained() {
    let _l = guard();
    reset();
    set_enabled(true);
    {
        let _outer = span("api.outer");
        for _ in 0..4 {
            let _inner = span("api.inner");
            std::hint::black_box(0u64);
        }
    }
    let s = summary();
    assert_eq!(s.span_count("api.outer"), 1);
    assert_eq!(s.span_count("api.inner"), 4);
    let ns = |name: &str| {
        s.spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, st)| st.total_ns)
            .unwrap()
    };
    // Spans aggregate by name, not as a tree, but wall time is still
    // wall time: the four inner spans ran strictly inside the outer
    // one, so their total cannot exceed it.
    assert!(
        ns("api.inner") <= ns("api.outer"),
        "inner total {} ns exceeds enclosing outer span {} ns",
        ns("api.inner"),
        ns("api.outer")
    );
    set_enabled(false);
}

#[test]
fn counters_accumulate_and_missing_names_read_zero() {
    let _l = guard();
    reset();
    set_enabled(true);
    add("api.counter", 3);
    add("api.counter", 0);
    add("api.counter", 39);
    let s = summary();
    assert_eq!(s.counter("api.counter"), 42);
    assert_eq!(s.counter("api.never-bumped"), 0);
    assert_eq!(s.span_count("api.never-entered"), 0);
    set_enabled(false);
}

#[test]
fn disabled_sites_record_nothing_and_reset_clears() {
    let _l = guard();
    reset();
    set_enabled(false);
    assert!(!enabled());
    {
        let _g = span("api.dark");
        add("api.dark.counter", 7);
    }
    let s = summary();
    assert_eq!(s.span_count("api.dark"), 0);
    assert_eq!(s.counter("api.dark.counter"), 0);

    set_enabled(true);
    add("api.cleared", 1);
    assert_eq!(summary().counter("api.cleared"), 1);
    reset();
    assert_eq!(summary().counter("api.cleared"), 0);
    set_enabled(false);
}

#[test]
fn render_lists_spans_and_counters_in_name_order() {
    let _l = guard();
    reset();
    set_enabled(true);
    {
        let _b = span("api.render.b");
        let _a = span("api.render.a");
    }
    add("api.render.hits", 2);
    let text = summary().render();
    assert!(text.contains("== trace summary =="));
    let a = text.find("api.render.a").expect("span a rendered");
    let b = text.find("api.render.b").expect("span b rendered");
    assert!(a < b, "spans must render in sorted name order");
    assert!(text.contains("api.render.hits"));
    set_enabled(false);
}
