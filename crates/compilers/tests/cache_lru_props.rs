//! Property tests for the [`ArtifactCache`] capacity layer: under any
//! interleaving of compiles, caps and quotas, (1) the resident total
//! never exceeds the byte cap, (2) no named tenant ever exceeds its
//! quota, and (3) eviction is invisible to correctness — an evicted
//! key recompiles to a bitwise-identical artifact.

use proptest::prelude::*;

use paccport_compilers::{tenant_scope, ArtifactCache, CompileOptions, CompilerId};
use paccport_ir::{
    ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
};

/// A saxpy-family program whose artifact size varies with `width`
/// (number of store statements) — so the generated workloads exercise
/// entries of genuinely different byte sizes.
fn program(tag: u8, width: u8) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new(&format!("prog{tag}"));
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let body: Vec<_> = (0..=width)
        .map(|w| st(y, i, E::from(w as f64 + 2.0) * ld(x, i) + ld(y, i)))
        .collect();
    let k = Kernel::simple(
        "saxpy",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(body),
    );
    b.finish(vec![HostStmt::Launch(k)])
}

fn compiler(sel: u8) -> CompilerId {
    match sel % 3 {
        0 => CompilerId::Caps,
        1 => CompilerId::Pgi,
        _ => CompilerId::OpenClHand,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However compiles and cap changes interleave, `total_bytes`
    /// never rests above the cap — including when a single entry is
    /// larger than the whole budget (it is served but not retained).
    #[test]
    fn resident_bytes_never_exceed_the_byte_cap(
        cap in 1u64..12_000,
        ops in proptest::collection::vec((0u8..6, 0u8..4, 0u8..3), 1..24),
    ) {
        let cache = ArtifactCache::new();
        cache.set_byte_cap(Some(cap));
        for (tag, width, sel) in &ops {
            let p = program(*tag, *width);
            cache.compile(compiler(*sel), &p, &CompileOptions::gpu()).unwrap();
            prop_assert!(
                cache.total_bytes() <= cap,
                "resident {} > cap {cap}", cache.total_bytes()
            );
        }
        // Tightening the cap re-enforces eagerly.
        let tighter = cap / 2;
        cache.set_byte_cap(Some(tighter));
        prop_assert!(cache.total_bytes() <= tighter);
        // Lifting it never loses entries that were within budget.
        let resident = cache.total_bytes();
        cache.set_byte_cap(None);
        prop_assert_eq!(cache.total_bytes(), resident);
    }

    /// Eviction is invisible to correctness: any key that was evicted
    /// under pressure recompiles to an artifact bitwise-equal to an
    /// uncached compile of the same (compiler, program, options).
    #[test]
    fn evicted_keys_recompile_bitwise_identical(
        cap in 500u64..4_000,
        ops in proptest::collection::vec((0u8..4, 0u8..3, 0u8..3), 2..12),
    ) {
        let cache = ArtifactCache::new();
        cache.set_byte_cap(Some(cap));
        for (tag, width, sel) in &ops {
            let p = program(*tag, *width);
            cache.compile(compiler(*sel), &p, &CompileOptions::gpu()).unwrap();
        }
        // Re-request every key from the pressured cache; hits and
        // evict→recompile misses alike must match the oracle.
        for (tag, width, sel) in &ops {
            let p = program(*tag, *width);
            let cached = cache.compile(compiler(*sel), &p, &CompileOptions::gpu()).unwrap();
            let oracle = paccport_compilers::compile(compiler(*sel), &p, &CompileOptions::gpu()).unwrap();
            prop_assert_eq!(&*cached, &oracle);
        }
        prop_assert!(cache.total_bytes() <= cap);
    }

    /// No named tenant ever rests above its quota, and one tenant
    /// blowing its budget never evicts another tenant's entries.
    #[test]
    fn tenant_quotas_bound_and_isolate(
        quota in 500u64..6_000,
        ops in proptest::collection::vec((0u8..2, 0u8..5, 0u8..4), 1..20),
    ) {
        let cache = ArtifactCache::new();
        cache.set_tenant_quota(Some(quota));
        let name = |t: u8| format!("tenant{t}");
        for (tenant, tag, width) in &ops {
            let _t = tenant_scope(Some(name(*tenant)));
            let p = program(*tag, *width);
            cache.compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
            for t in 0u8..2 {
                prop_assert!(
                    cache.tenant_bytes(&name(t)) <= quota,
                    "{} holds {} > quota {quota}", name(t), cache.tenant_bytes(&name(t))
                );
            }
        }
        // The ledger balances: tenants' shares sum to the total.
        let sum: u64 = (0u8..2).map(|t| cache.tenant_bytes(&name(t))).sum();
        prop_assert_eq!(sum, cache.total_bytes());
    }
}
