//! Structural unit tests for the middle-end pass pipeline.
//!
//! These assert *shape*: that each pass performs its signature
//! rewrite on a hand-built kernel, keeps the program valid, and is
//! idempotent. Bitwise semantic preservation is enforced separately
//! by the conformance harness, which runs every pass (and every
//! prefix of the default pipeline) as its own differential leg.

use paccport_compilers::passes::{self, Pipeline, DEFAULT_PASSES};
use paccport_compilers::{compile, CompileOptions, CompilerId};
use paccport_ir::{
    assign, for_, ld, let_, st, validate, Block, Expr, Intent, Kernel, KernelBody, ParallelLoop,
    Program, ProgramBuilder, Scalar, Stmt, E,
};

/// `out[i] = f(x[i])` with a reassigned scalar in the middle.
fn program_with_assign() -> Program {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let t = b.var("t");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(t, Scalar::F32, ld(x, i)),
            assign(t, E::from(t) * 2.0),
            st(out, i, E::from(t) + 1.0),
        ]),
    );
    b.finish(vec![paccport_ir::HostStmt::Launch(k)])
}

fn body(p: &Program) -> &Vec<Stmt> {
    let paccport_ir::HostStmt::Launch(k) = &p.body[0] else {
        panic!("launch");
    };
    let KernelBody::Simple(b) = &k.body else {
        panic!("simple");
    };
    &b.0
}

#[test]
fn mem2reg_rewrites_assign_to_ssa_let() {
    let mut p = program_with_assign();
    assert!(passes::mem2reg::run(&mut p));
    validate(&p).unwrap();
    let stmts = body(&p);
    assert_eq!(stmts.len(), 3);
    // The Assign became a Let of a fresh variable with the identity
    // type for floats (F64 — no narrowing on rebind)...
    let Stmt::Let { var: ssa, ty, .. } = &stmts[1] else {
        panic!("assign not promoted: {:?}", stmts[1]);
    };
    assert_eq!(*ty, Scalar::F64);
    // ...and the store reads the new binding.
    let Stmt::Store { value, .. } = &stmts[2] else {
        panic!("store");
    };
    let mut reads_ssa = false;
    value.walk(&mut |e| {
        if let Expr::Var(v) = e {
            if v == ssa {
                reads_ssa = true;
            }
        }
    });
    assert!(reads_ssa, "store still reads the old slot: {value:?}");
    // Idempotent: nothing left to promote.
    assert!(!passes::mem2reg::run(&mut p));
}

#[test]
fn mem2reg_skips_conditionally_assigned_vars() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let t = b.var("t");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(t, Scalar::F32, 0.0),
            paccport_ir::if_(E::from(i).lt(E::from(4i64)), vec![assign(t, ld(x, i))]),
            st(out, i, E::from(t)),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    // The assignment is control-dependent: promotion would need a phi.
    assert!(!passes::mem2reg::run(&mut p));
}

#[test]
fn constfold_propagates_coerced_let_constants() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::I32, n, Intent::Out);
    let i = b.var("i");
    let c = b.var("c");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(c, Scalar::I32, 3i64),
            st(out, i, E::from(c) * 2i64),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(passes::constfold::run(&mut p));
    validate(&p).unwrap();
    let stmts = body(&p);
    let Stmt::Store { value, .. } = &stmts[1] else {
        panic!("store");
    };
    assert_eq!(*value, Expr::IConst(6), "c * 2 should fold to 6");
}

#[test]
fn constfold_distrusts_shadowed_lets() {
    // let c = 3; if (i < 4) { let c: f64 = 0.5; }  out[i] = c * 2
    // The branch's Let writes the same slot, so `c` after the If is
    // not the constant 3 on every path — no propagation.
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let c = b.var("c");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(c, Scalar::I32, 3i64),
            paccport_ir::if_(
                E::from(i).lt(E::from(4i64)),
                vec![let_(c, Scalar::F64, 0.5)],
            ),
            st(out, i, E::from(c) * 2i64),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    passes::constfold::run(&mut p);
    let stmts = body(&p);
    let Stmt::Store { value, .. } = &stmts[2] else {
        panic!("store");
    };
    let mut still_reads_c = false;
    value.walk(&mut |e| {
        if *e == Expr::Var(c) {
            still_reads_c = true;
        }
    });
    assert!(still_reads_c, "shadowed constant was propagated: {value:?}");
}

#[test]
fn licm_hoists_invariant_let_out_of_innermost_for() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let j = b.var("j");
    let x = b.var("x");
    let t = b.var("t");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(x, Scalar::F64, 1.5),
            for_(
                j,
                0i64,
                Expr::param(n),
                vec![
                    let_(t, Scalar::F64, E::from(x) * 2.0),
                    st(out, j, E::from(t)),
                ],
            ),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(passes::licm::run(&mut p));
    validate(&p).unwrap();
    let stmts = body(&p);
    assert_eq!(stmts.len(), 3, "t hoisted before the loop: {stmts:?}");
    assert!(matches!(&stmts[1], Stmt::Let { var, .. } if *var == t));
    let Stmt::For { body: fb, .. } = &stmts[2] else {
        panic!("for");
    };
    assert_eq!(fb.0.len(), 1, "loop body keeps only the store");
    assert!(!passes::licm::run(&mut p));
}

#[test]
fn licm_keeps_variant_and_trapping_lets() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::I32, n, Intent::Out);
    let i = b.var("i");
    let j = b.var("j");
    let t = b.var("t");
    let u = b.var("u");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![for_(
            j,
            0i64,
            Expr::param(n),
            vec![
                // Depends on the loop variable: must stay.
                let_(t, Scalar::I32, E::from(j) + 1i64),
                // Integer add can overflow-panic; hoisting would make
                // a zero-trip loop trap. Must stay.
                let_(u, Scalar::I32, E::from(n) + 1i64),
                st(out, j, E::from(t) + E::from(u)),
            ],
        )]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(!passes::licm::run(&mut p));
}

#[test]
fn cse_shares_repeated_pure_subtrees() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let x = b.var("x");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(x, Scalar::F64, 1.5),
            st(out, i, (E::from(x) + 2.0) * (E::from(x) + 2.0)),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(passes::cse::run(&mut p));
    validate(&p).unwrap();
    let stmts = body(&p);
    assert_eq!(stmts.len(), 3);
    let Stmt::Let { var: t, ty, .. } = &stmts[1] else {
        panic!("cse temp: {:?}", stmts[1]);
    };
    assert_eq!(*ty, Scalar::F64);
    let Stmt::Store { value, .. } = &stmts[2] else {
        panic!("store");
    };
    assert_eq!(
        *value,
        Expr::bin(paccport_ir::BinOp::Mul, Expr::Var(*t), Expr::Var(*t))
    );
    assert!(!passes::cse::run(&mut p));
}

#[test]
fn dse_removes_overwritten_and_unobservable_stores() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let scratch = b.array("scratch", Scalar::F32, n, Intent::In);
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            // Overwritten before anything reads it.
            st(out, i, 1.0),
            st(out, i, 2.0),
            // `scratch` has intent In and is read nowhere: the store
            // can never be observed.
            st(scratch, i, 3.0),
        ]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(passes::dse::run(&mut p));
    validate(&p).unwrap();
    let stmts = body(&p);
    assert_eq!(stmts.len(), 1, "one live store remains: {stmts:?}");
    let Stmt::Store { value, .. } = &stmts[0] else {
        panic!("store");
    };
    assert_eq!(*value, Expr::FConst(2.0));
}

#[test]
fn dse_keeps_store_when_overwrite_reads_the_location() {
    // out[i] = 1.0; out[i] = out[i] + 1.0  — the second store reads
    // what the first wrote; removing the first would change it.
    // (Regression: found by the conformance pass legs on generated
    // program seed=1234 index=3.)
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(out, i, 1.0), st(out, i, ld(out, i) + 1.0)]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(!passes::dse::run(&mut p));
    assert_eq!(body(&p).len(), 2);
}

#[test]
fn dse_sweeps_dead_lets() {
    let mut b = ProgramBuilder::new("p");
    let n = b.iparam("n");
    let out = b.array("out", Scalar::F32, n, Intent::Out);
    let i = b.var("i");
    let dead = b.var("dead");
    let k = Kernel::simple(
        "k",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![let_(dead, Scalar::F64, 1.5), st(out, i, 2.0)]),
    );
    let mut p = b.finish(vec![paccport_ir::HostStmt::Launch(k)]);
    assert!(passes::dse::run(&mut p));
    assert_eq!(body(&p).len(), 1);
}

#[test]
fn pipeline_parse_expands_default_and_rejects_unknown() {
    let pl = Pipeline::default_pipeline();
    let names: Vec<&str> = pl.passes.iter().map(|p| p.name).collect();
    assert_eq!(names, DEFAULT_PASSES);
    assert!(!pl.peephole);

    let pl = Pipeline::parse("default,ptx-peephole").unwrap();
    assert_eq!(pl.passes.len(), DEFAULT_PASSES.len());
    assert!(pl.peephole);
    assert_eq!(pl.label(), "mem2reg,constfold,licm,cse,dse,ptx-peephole");

    let err = Pipeline::parse("mem2reg,frobnicate").unwrap_err();
    assert!(
        err.contains("frobnicate") && err.contains("mem2reg"),
        "{err}"
    );
}

#[test]
fn registry_covers_required_passes() {
    let reg = passes::registry();
    for required in [
        "mem2reg",
        "constfold",
        "licm",
        "cse",
        "dse",
        "simplify",
        "unroll2",
    ] {
        assert!(
            reg.iter().any(|p| p.name == required),
            "missing pass {required}"
        );
    }
    // Structural transforms must not re-run under the fixpoint.
    assert!(reg.iter().filter(|p| p.fixpoint).count() >= 6);
    assert!(!reg.iter().find(|p| p.name == "unroll2").unwrap().fixpoint);
}

#[test]
fn default_pipeline_reaches_fixpoint_and_reports_passes() {
    let mut p = program_with_assign();
    let stats = Pipeline::default_pipeline().run(&mut p);
    assert!(stats.changed());
    assert!(stats.applied.iter().any(|(n, _)| *n == "mem2reg"));
    assert!(stats.sweeps < 8, "did not converge: {stats:?}");
    validate(&p).unwrap();
    // A second full run is a no-op.
    let again = Pipeline::default_pipeline().run(&mut p);
    assert!(!again.changed(), "not idempotent: {:?}", again.applied);
}

#[test]
fn peephole_cleans_pgi_param_mov_debris() {
    // The PGI personality emits bookkeeping `mov`s whose results are
    // never read (Table V's register-pressure debris). The peephole
    // must remove them — and only data movement, never memory ops.
    let p = program_with_assign();
    let cp = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
    let before = cp.module.counts();
    let mut m = cp.module.clone();
    assert!(paccport_ptx::peephole::run_module(&mut m));
    let after = m.counts();
    use paccport_ptx::Category;
    assert!(
        after.get(Category::DataMovement) < before.get(Category::DataMovement),
        "no movs removed: {before:?} -> {after:?}"
    );
    assert_eq!(
        after.get(Category::GlobalMemory),
        before.get(Category::GlobalMemory)
    );
    assert_eq!(after.get(Category::Sync), before.get(Category::Sync));
}

#[test]
fn global_pipeline_hook_is_off_by_default_and_restorable() {
    assert!(passes::global_pipeline().is_none());
    passes::set_global_pipeline(Some(Pipeline::default_pipeline()));
    assert!(passes::global_pipeline().is_some());
    passes::set_global_pipeline(None);
    assert!(passes::global_pipeline().is_none());
}
