//! Lowering from the directive IR to the PTX-like ISA.
//!
//! One lowering pass serves all three compiler personalities; they
//! differ through [`LoweringStyle`]:
//!
//! * **address style** — CAPS performs common-subexpression
//!   elimination on address arithmetic within a statement and
//!   converts each array base to a global pointer once per kernel;
//!   PGI recomputes addresses naively per access (including the
//!   `cvta.to.global`), which is why the paper measures more PTX
//!   instructions for PGI on LUD and BP, and more global-memory
//!   instructions on BFS.
//! * **fast math** — `div` becomes `rcp`+`mul` (the `-fastmath` /
//!   `-prec-div=false` flags of Table I).
//!
//! The pass simultaneously builds a [`CostTree`] using emitter marks,
//! so the dynamic-cost model used by the device simulator is derived
//! from the *same* instruction stream as the static counts the paper
//! plots — they cannot drift apart.

use crate::artifact::{CostNode, CostTree};
use paccport_ir::expr::{BinOp, Expr, SpecialVar, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{ArrayId, MemSpace, ParamId, Scalar, VarId};
use paccport_ir::Program;
use paccport_ptx::{CategoryCounts, Emitter, Opcode, Operand, PtxKernel, PtxType, Reg, SpecialReg};
use std::collections::BTreeMap;

/// How addresses and repeated subexpressions are lowered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrStyle {
    /// Value-number repeated subexpressions within a statement; one
    /// `cvta.to.global` per array (CAPS).
    Cse,
    /// Recompute everything per access (PGI).
    Naive,
}

/// Per-compiler lowering knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoweringStyle {
    pub addr: AddrStyle,
    /// Lower `div` as `rcp`+`mul`.
    pub fastmath: bool,
    /// Extra per-scalar-parameter register traffic (PGI reloads and
    /// converts parameters more eagerly; inflates `mov`/`cvt`).
    pub extra_param_movs: u32,
}

impl LoweringStyle {
    pub fn caps() -> Self {
        LoweringStyle {
            addr: AddrStyle::Cse,
            fastmath: false,
            extra_param_movs: 0,
        }
    }

    pub fn pgi() -> Self {
        LoweringStyle {
            addr: AddrStyle::Naive,
            fastmath: false,
            extra_param_movs: 2,
        }
    }

    pub fn opencl() -> Self {
        LoweringStyle {
            addr: AddrStyle::Naive,
            fastmath: false,
            extra_param_movs: 0,
        }
    }
}

/// Result of lowering one kernel.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    pub ptx: PtxKernel,
    /// Per-thread setup cost (parameters, addresses, global index,
    /// bounds guard).
    pub prologue: CategoryCounts,
    /// Per-parallel-iteration body cost (includes serialized parallel
    /// loops as loop nodes).
    pub cost: CostTree,
}

/// Lower a kernel, distributing the outermost `dist_rank` parallel
/// loops across threads and serializing the rest inside each thread.
pub fn lower_kernel(
    p: &Program,
    k: &Kernel,
    dist_rank: usize,
    style: &LoweringStyle,
) -> LoweredKernel {
    let _span = paccport_trace::span("compilers.lower_kernel");
    paccport_faults::maybe_slow_compile(&format!("lower:{}", k.name));
    let mut lw = Lowerer::new(p, style, format!("{}_kernel", k.name));
    lw.prologue(k, dist_rank);
    let prologue_counts = lw.emitter.counts_since(0);

    let mut cost = CostTree::default();
    let dist_rank = dist_rank.min(k.loops.len());

    // Serialize the non-distributed parallel loops.
    let mut m = lw.emitter.mark();
    let serial: Vec<_> = k.loops[dist_rank..].to_vec();
    lw.lower_serialized_loops(&serial, k, &mut cost, &mut m);

    let ptx = lw.emitter.finish();
    LoweredKernel {
        ptx,
        prologue: prologue_counts,
        cost,
    }
}

/// Lower a host-fallback stub (kernels PGI never launches): a handful
/// of parameter loads and a `ret`, matching the paper's "few PTX
/// instructions" observation on PGI's BFS.
pub fn lower_stub(p: &Program, k: &Kernel) -> PtxKernel {
    let mut e = Emitter::new(format!("{}_kernel", k.name));
    let used = used_arrays(k);
    for a in used.iter().take(3) {
        e.add_param(p.array(*a).name.clone());
        e.emit(
            Opcode::LdParam,
            PtxType::U64,
            vec![Operand::Sym(p.array(*a).name.clone())],
        );
    }
    e.emit_void(Opcode::Mov, PtxType::U32, vec![Operand::ImmI(0)]);
    e.finish()
}

/// Arrays referenced anywhere in a kernel (bounds or body).
pub fn used_arrays(k: &Kernel) -> Vec<ArrayId> {
    let mut set = std::collections::BTreeSet::new();
    fn from_expr(e: &Expr, set: &mut std::collections::BTreeSet<ArrayId>) {
        e.walk(&mut |e| {
            if let Expr::Load {
                space: MemSpace::Global,
                array,
                ..
            } = e
            {
                set.insert(*array);
            }
        });
    }
    for lp in &k.loops {
        from_expr(&lp.lo, &mut set);
        from_expr(&lp.hi, &mut set);
    }
    let from_block = |b: &Block, set: &mut std::collections::BTreeSet<ArrayId>| {
        b.walk(&mut |s| {
            s.for_each_expr(&mut |e| {
                e.walk(&mut |e| {
                    if let Expr::Load {
                        space: MemSpace::Global,
                        array,
                        ..
                    } = e
                    {
                        set.insert(*array);
                    }
                })
            });
            match s {
                Stmt::Store {
                    space: MemSpace::Global,
                    array,
                    ..
                }
                | Stmt::Atomic { array, .. } => {
                    set.insert(*array);
                }
                _ => {}
            }
        });
    };
    match &k.body {
        KernelBody::Simple(b) => from_block(b, &mut set),
        KernelBody::Grouped(g) => {
            for phase in &g.phases {
                from_block(phase, &mut set);
            }
        }
    }
    if let Some(rr) = &k.region_reduction {
        set.insert(rr.dest);
        from_expr(&rr.value, &mut set);
    }
    set.into_iter().collect()
}

/// Scalar parameters referenced anywhere in a kernel.
pub fn used_params(k: &Kernel) -> Vec<ParamId> {
    let mut set = std::collections::BTreeSet::new();
    let from_expr = |e: &Expr, set: &mut std::collections::BTreeSet<ParamId>| {
        e.walk(&mut |e| {
            if let Expr::Param(id) = e {
                set.insert(*id);
            }
        });
    };
    for lp in &k.loops {
        from_expr(&lp.lo, &mut set);
        from_expr(&lp.hi, &mut set);
    }
    let mut blocks: Vec<&Block> = Vec::new();
    match &k.body {
        KernelBody::Simple(b) => blocks.push(b),
        KernelBody::Grouped(g) => blocks.extend(g.phases.iter()),
    }
    for b in blocks {
        b.walk_exprs(&mut |e| {
            if let Expr::Param(id) = e {
                set.insert(*id);
            }
        });
    }
    if let Some(rr) = &k.region_reduction {
        from_expr(&rr.value, &mut set);
    }
    set.into_iter().collect()
}

struct Lowerer<'a> {
    p: &'a Program,
    style: &'a LoweringStyle,
    emitter: Emitter,
    /// Array base pointer registers (CSE style only).
    bases: BTreeMap<ArrayId, Reg>,
    /// Scalar parameter registers.
    params: BTreeMap<ParamId, Reg>,
    /// Kernel-local scalar registers and their types.
    vars: BTreeMap<VarId, (Reg, PtxType)>,
    /// Within-statement value numbering (CSE style only).
    cse: Vec<(Expr, Reg, PtxType)>,
    /// Registers for work-group builtins.
    specials: BTreeMap<SpecialVar, Reg>,
}

impl<'a> Lowerer<'a> {
    fn new(p: &'a Program, style: &'a LoweringStyle, name: String) -> Self {
        Lowerer {
            p,
            style,
            emitter: Emitter::new(name),
            bases: BTreeMap::new(),
            params: BTreeMap::new(),
            vars: BTreeMap::new(),
            cse: Vec::new(),
            specials: BTreeMap::new(),
        }
    }

    // ---------------------------------------------------------------
    // Prologue
    // ---------------------------------------------------------------

    fn prologue(&mut self, k: &Kernel, dist_rank: usize) {
        // Scalar parameters.
        for pid in used_params(k) {
            let name = self.p.param(pid).name.clone();
            self.emitter.add_param(name.clone());
            let r = self
                .emitter
                .emit(Opcode::LdParam, PtxType::S32, vec![Operand::Sym(name)]);
            for _ in 0..self.style.extra_param_movs {
                self.emitter.un(Opcode::Mov, PtxType::S32, r);
            }
            self.params.insert(pid, r);
        }
        // Array bases.
        for aid in used_arrays(k) {
            let name = self.p.array(aid).name.clone();
            self.emitter.add_param(name.clone());
            let raw = self
                .emitter
                .emit(Opcode::LdParam, PtxType::U64, vec![Operand::Sym(name)]);
            if self.style.addr == AddrStyle::Cse {
                let base = self.emitter.un(Opcode::CvtaToGlobal, PtxType::U64, raw);
                self.bases.insert(aid, base);
            } else {
                // Naive style re-converts per access; remember the raw
                // parameter register instead.
                self.bases.insert(aid, raw);
            }
        }
        // Global indices for the distributed loops.
        let dist_rank = dist_rank.min(k.loops.len());
        for (d, lp) in k.loops.iter().take(dist_rank).enumerate() {
            let (tid, ctaid, ntid) = match dist_rank - 1 - d {
                // Innermost distributed loop maps to x.
                0 => (SpecialReg::TidX, SpecialReg::CtaIdX, SpecialReg::NTidX),
                _ => (SpecialReg::TidY, SpecialReg::CtaIdY, SpecialReg::NTidY),
            };
            let rt = self
                .emitter
                .emit(Opcode::Mov, PtxType::U32, vec![Operand::Sreg(tid)]);
            let rc = self
                .emitter
                .emit(Opcode::Mov, PtxType::U32, vec![Operand::Sreg(ctaid)]);
            let rn = self
                .emitter
                .emit(Opcode::Mov, PtxType::U32, vec![Operand::Sreg(ntid)]);
            // gid = ctaid * ntid + tid
            let gid = self.emitter.emit(
                Opcode::Mad,
                PtxType::S32,
                vec![rc.into(), rn.into(), rt.into()],
            );
            // idx = lo + gid
            let (lo, _) = self.expr(&lp.lo);
            let idx = self.emitter.bin(Opcode::Add, PtxType::S32, lo, gid);
            self.vars.insert(lp.var, (idx, PtxType::S32));
            // Guard: if idx >= hi, exit.
            let (hi, _) = self.expr(&lp.hi);
            let pred = self.emitter.bin(Opcode::Setp, PtxType::S32, idx, hi);
            let end = self.emitter.label();
            self.emitter.branch_if(pred, end);
            // The exit label is conceptually at the end; for counting
            // purposes placement is irrelevant, so place it directly.
            self.emitter.place(end);
        }
        self.cse.clear();
    }

    // ---------------------------------------------------------------
    // Loops and bodies
    // ---------------------------------------------------------------

    fn lower_serialized_loops(
        &mut self,
        serial: &[paccport_ir::ParallelLoop],
        k: &Kernel,
        tree: &mut CostTree,
        mark: &mut usize,
    ) {
        if let Some((first, rest)) = serial.split_first() {
            // Lower as an ordinary sequential loop containing the rest.
            let lo = first.lo.clone();
            let hi = first.hi.clone();
            self.begin_loop(first.var, &lo, tree, mark);
            let mut body_tree = CostTree::default();
            let mut body_mark = self.emitter.mark();
            self.lower_serialized_loops(rest, k, &mut body_tree, &mut body_mark);
            self.flush(&mut body_tree, &mut body_mark);
            let overhead = self.loop_overhead();
            tree.kids.push(CostNode::Loop {
                var: first.var,
                lo,
                hi,
                step: 1,
                overhead,
                body: body_tree,
            });
            *mark = self.emitter.mark();
        } else {
            self.lower_body(k, tree, mark);
        }
    }

    fn lower_body(&mut self, k: &Kernel, tree: &mut CostTree, mark: &mut usize) {
        match &k.body {
            KernelBody::Simple(b) => self.block(b, tree, mark),
            KernelBody::Grouped(g) => {
                for (i, phase) in g.phases.iter().enumerate() {
                    if i > 0 {
                        self.emitter.emit_void(
                            Opcode::BarSync,
                            PtxType::U32,
                            vec![Operand::ImmI(0)],
                        );
                    }
                    self.block(phase, tree, mark);
                }
            }
        }
        if let Some(rr) = &k.region_reduction {
            // Per-iteration accumulate of the reduced value.
            let (v, ty) = self.expr(&rr.value);
            let op = match rr.op {
                paccport_ir::ReduceOp::Add => Opcode::Add,
                paccport_ir::ReduceOp::Max => Opcode::Max,
                paccport_ir::ReduceOp::Min => Opcode::Min,
            };
            let acc = self.emitter.mov_imm_f(0.0);
            self.emitter.bin(op, ty, acc, v);
            // One representative global store for the result.
            self.store_addr_and(rr.dest, &Expr::iconst(0), acc, Opcode::StGlobal, ty);
        }
        self.flush(tree, mark);
    }

    /// Move counts emitted since `mark` into `tree.flat`.
    fn flush(&mut self, tree: &mut CostTree, mark: &mut usize) {
        let c = self.emitter.counts_since(*mark);
        tree.flat += c;
        tree.flat_ldst += self.emitter.ldst_since(*mark);
        *mark = self.emitter.mark();
    }

    fn loop_overhead(&self) -> CategoryCounts {
        // setp + predicated bra + add (increment) + bra (backedge).
        let mut c = CategoryCounts::default();
        c.add_n(paccport_ptx::Category::FlowControl, 3);
        c.add_n(paccport_ptx::Category::Arithmetic, 1);
        c
    }

    /// Emit loop header: init + bound + top label + test. The caller
    /// is responsible for the cost-tree bookkeeping.
    fn begin_loop(&mut self, var: VarId, lo: &Expr, tree: &mut CostTree, mark: &mut usize) {
        let (rlo, _) = self.expr(lo);
        let ri = self.emitter.un(Opcode::Mov, PtxType::S32, rlo);
        self.vars.insert(var, (ri, PtxType::S32));
        self.flush(tree, mark);
        let top = self.emitter.label();
        self.emitter.place(top);
        self.cse.clear();
    }

    fn block(&mut self, b: &Block, tree: &mut CostTree, mark: &mut usize) {
        for s in &b.0 {
            match s {
                Stmt::Let { var, ty, init } => {
                    let (r, _rty) = self.expr(init);
                    let pty = scalar_ty(*ty);
                    let dst = self.emitter.un(Opcode::Mov, pty, r);
                    self.vars.insert(*var, (dst, pty));
                    self.cse.clear();
                }
                Stmt::Assign { var, value } => {
                    let (r, _) = self.expr(value);
                    let (_, pty) = *self.vars.get(var).unwrap_or(&(Reg(0), PtxType::F32));
                    let dst = self.emitter.un(Opcode::Mov, pty, r);
                    self.vars.insert(*var, (dst, pty));
                    self.cse.clear();
                }
                Stmt::Store {
                    space,
                    array,
                    index,
                    value,
                } => {
                    let (rv, vty) = self.expr(value);
                    let op = match space {
                        MemSpace::Global => Opcode::StGlobal,
                        MemSpace::Local => Opcode::StShared,
                    };
                    self.store_addr_and(*array, index, rv, op, vty);
                    self.cse.clear();
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let pred = self.pred(cond);
                    let l_else = self.emitter.label();
                    self.emitter.branch_if(pred, l_else);
                    self.flush(tree, mark);

                    let mut then_tree = CostTree::default();
                    let mut m2 = self.emitter.mark();
                    self.cse.clear();
                    self.block(then_blk, &mut then_tree, &mut m2);
                    self.flush(&mut then_tree, &mut m2);

                    let l_end = self.emitter.label();
                    let mut els_tree = CostTree::default();
                    if !else_blk.is_empty() {
                        self.emitter.branch(l_end);
                        // The unconditional jump out of `then` belongs
                        // to the then-arm's cost.
                        then_tree.flat += self.emitter.counts_since(m2);
                    }
                    self.emitter.place(l_else);
                    if !else_blk.is_empty() {
                        let mut m3 = self.emitter.mark();
                        self.cse.clear();
                        self.block(else_blk, &mut els_tree, &mut m3);
                        self.flush(&mut els_tree, &mut m3);
                        self.emitter.place(l_end);
                    }
                    tree.kids.push(CostNode::Branch {
                        then: then_tree,
                        els: els_tree,
                    });
                    *mark = self.emitter.mark();
                    self.cse.clear();
                }
                Stmt::For {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    // Hoisted bound.
                    let (rhi, _) = self.expr(hi);
                    self.begin_loop(*var, lo, tree, mark);
                    let (ri, _) = self.vars[var];
                    let pred = self.emitter.bin(Opcode::Setp, PtxType::S32, ri, rhi);
                    let l_end = self.emitter.label();
                    self.emitter.branch_if(pred, l_end);
                    // Test instructions counted via `overhead` below,
                    // so rewind the mark over them.
                    let test_counts = self.emitter.counts_since(*mark);

                    let mut body_tree = CostTree::default();
                    let mut m2 = self.emitter.mark();
                    self.block(body, &mut body_tree, &mut m2);
                    self.flush(&mut body_tree, &mut m2);

                    // Increment + backedge.
                    let step_reg = self.emitter.mov_imm_i(PtxType::S32, *step);
                    self.emitter.bin(Opcode::Add, PtxType::S32, ri, step_reg);
                    let top2 = self.emitter.label();
                    self.emitter.branch(top2);
                    self.emitter.place(l_end);

                    let mut overhead = self.loop_overhead();
                    // Absorb the literal test/increment emission into
                    // the declared per-iteration overhead.
                    let _ = test_counts;
                    overhead.add_n(paccport_ptx::Category::DataMovement, 1);
                    tree.kids.push(CostNode::Loop {
                        var: *var,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        step: *step,
                        overhead,
                        body: body_tree,
                    });
                    *mark = self.emitter.mark();
                    self.cse.clear();
                }
                Stmt::Barrier => {
                    self.emitter
                        .emit_void(Opcode::BarSync, PtxType::U32, vec![Operand::ImmI(0)]);
                }
                Stmt::Atomic {
                    op,
                    array,
                    index,
                    value,
                } => {
                    let (rv, vty) = self.expr(value);
                    let opc = match op {
                        paccport_ir::ReduceOp::Add => Opcode::AtomAdd,
                        paccport_ir::ReduceOp::Max => Opcode::AtomMax,
                        paccport_ir::ReduceOp::Min => Opcode::AtomMin,
                    };
                    self.store_addr_and(*array, index, rv, opc, vty);
                    self.cse.clear();
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Addresses
    // ---------------------------------------------------------------

    fn store_addr_and(
        &mut self,
        array: ArrayId,
        index: &Expr,
        value: Reg,
        op: Opcode,
        vty: PtxType,
    ) {
        let addr = self.address(array, index, op == Opcode::StShared);
        self.emitter
            .emit_void(op, vty, vec![addr.into(), value.into()]);
    }

    /// Compute the byte address of `array[index]`.
    fn address(&mut self, array: ArrayId, index: &Expr, local: bool) -> Reg {
        let (idx, _) = self.expr(index);
        // offset = idx << log2(elem)  (all benchmark elements are 4- or
        // 8-byte; use shl as compilers do)
        let sh = self.emitter.mov_imm_i(PtxType::U32, 2);
        let off = self.emitter.bin(Opcode::Shl, PtxType::U64, idx, sh);
        if local {
            // Shared memory is addressed off an implicit base.
            return off;
        }
        let base = match self.bases.get(&array) {
            Some(b) => *b,
            None => {
                // Array appears only via this access (possible after
                // transforms); load its parameter on demand.
                let name = self.p.array(array).name.clone();
                let raw =
                    self.emitter
                        .emit(Opcode::LdParam, PtxType::U64, vec![Operand::Sym(name)]);
                self.bases.insert(array, raw);
                raw
            }
        };
        let base = if self.style.addr == AddrStyle::Naive {
            // Convert the generic pointer on every access.
            self.emitter.un(Opcode::CvtaToGlobal, PtxType::U64, base)
        } else {
            base
        };
        self.emitter.bin(Opcode::Add, PtxType::U64, base, off)
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    fn cse_lookup(&self, e: &Expr) -> Option<(Reg, PtxType)> {
        if self.style.addr != AddrStyle::Cse {
            return None;
        }
        self.cse
            .iter()
            .find(|(k, _, _)| k == e)
            .map(|(_, r, t)| (*r, *t))
    }

    fn cse_insert(&mut self, e: &Expr, r: Reg, t: PtxType) {
        if self.style.addr == AddrStyle::Cse && e.node_count() > 1 {
            self.cse.push((e.clone(), r, t));
        }
    }

    fn pred(&mut self, cond: &Expr) -> Reg {
        match cond {
            Expr::Cmp(_, _, _) => self.expr(cond).0,
            _ => {
                // Compare against zero.
                let (r, ty) = self.expr(cond);
                let zero = self.emitter.mov_imm_i(PtxType::S32, 0);
                let _ = ty;
                self.emitter.bin(Opcode::Setp, PtxType::S32, r, zero)
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> (Reg, PtxType) {
        if let Some(hit) = self.cse_lookup(e) {
            return hit;
        }
        let out = match e {
            Expr::FConst(v) => (self.emitter.mov_imm_f(*v), PtxType::F32),
            Expr::IConst(v) => (self.emitter.mov_imm_i(PtxType::S32, *v), PtxType::S32),
            Expr::BConst(v) => (
                self.emitter.mov_imm_i(PtxType::S32, *v as i64),
                PtxType::S32,
            ),
            Expr::Param(id) => {
                let r = match self.params.get(id) {
                    Some(r) => *r,
                    None => {
                        let name = self.p.param(*id).name.clone();
                        let r = self.emitter.emit(
                            Opcode::LdParam,
                            PtxType::S32,
                            vec![Operand::Sym(name)],
                        );
                        self.params.insert(*id, r);
                        r
                    }
                };
                (r, PtxType::S32)
            }
            Expr::Var(id) => *self.vars.get(id).unwrap_or(&(Reg(0), PtxType::S32)),
            Expr::Special(sv) => {
                if let Some(r) = self.specials.get(sv) {
                    (*r, PtxType::S32)
                } else {
                    let sreg = match sv {
                        SpecialVar::LocalId(0) => SpecialReg::TidX,
                        SpecialVar::LocalId(_) => SpecialReg::TidY,
                        SpecialVar::GroupId(0) => SpecialReg::CtaIdX,
                        SpecialVar::GroupId(_) => SpecialReg::CtaIdY,
                        SpecialVar::LocalSize(0) => SpecialReg::NTidX,
                        SpecialVar::LocalSize(_) => SpecialReg::NTidY,
                        SpecialVar::NumGroups(0) => SpecialReg::NCtaIdX,
                        SpecialVar::NumGroups(_) => SpecialReg::NCtaIdY,
                    };
                    let r = self
                        .emitter
                        .emit(Opcode::Mov, PtxType::U32, vec![Operand::Sreg(sreg)]);
                    self.specials.insert(*sv, r);
                    (r, PtxType::S32)
                }
            }
            Expr::Load {
                space,
                array,
                index,
            } => {
                let addr = self.address(*array, index, *space == MemSpace::Local);
                let (op, ty) = match space {
                    MemSpace::Global => (Opcode::LdGlobal, scalar_ty(self.p.array(*array).elem)),
                    MemSpace::Local => (Opcode::LdShared, PtxType::F32),
                };
                (self.emitter.emit(op, ty, vec![addr.into()]), ty)
            }
            Expr::Un(op, a) => {
                let (ra, ty) = self.expr(a);
                let (opc, oty) = match op {
                    UnOp::Neg => (Opcode::Neg, ty),
                    UnOp::Abs => (Opcode::Abs, ty),
                    UnOp::Rcp => (Opcode::Rcp, PtxType::F32),
                    UnOp::Sqrt => (Opcode::Sqrt, PtxType::F32),
                    UnOp::Not => (Opcode::Not, PtxType::Pred),
                    UnOp::Exp => (Opcode::Ex2, PtxType::F32),
                };
                (self.emitter.un(opc, oty, ra), oty)
            }
            Expr::Bin(op, a, b) => {
                let (ra, ta) = self.expr(a);
                let (rb, tb) = self.expr(b);
                let ty = join_ty(ta, tb);
                match op {
                    BinOp::Div if self.style.fastmath && ty == PtxType::F32 => {
                        let r = self.emitter.un(Opcode::Rcp, PtxType::F32, rb);
                        (self.emitter.bin(Opcode::Mul, ty, ra, r), ty)
                    }
                    _ => {
                        let opc = match op {
                            BinOp::Add => Opcode::Add,
                            BinOp::Sub => Opcode::Sub,
                            BinOp::Mul => Opcode::Mul,
                            BinOp::Div => Opcode::Div,
                            BinOp::Rem => Opcode::Rem,
                            BinOp::Min => Opcode::Min,
                            BinOp::Max => Opcode::Max,
                            BinOp::And => Opcode::And,
                            BinOp::Or => Opcode::Or,
                            BinOp::Shl => Opcode::Shl,
                            BinOp::Shr => Opcode::Shr,
                        };
                        (self.emitter.bin(opc, ty, ra, rb), ty)
                    }
                }
            }
            Expr::Cmp(_, a, b) => {
                let (ra, ta) = self.expr(a);
                let (rb, tb) = self.expr(b);
                let ty = join_ty(ta, tb);
                (self.emitter.bin(Opcode::Setp, ty, ra, rb), PtxType::Pred)
            }
            Expr::Fma(a, b, c) => {
                let (ra, _) = self.expr(a);
                let (rb, _) = self.expr(b);
                let (rc, _) = self.expr(c);
                (
                    self.emitter.emit(
                        Opcode::Fma,
                        PtxType::F32,
                        vec![ra.into(), rb.into(), rc.into()],
                    ),
                    PtxType::F32,
                )
            }
            Expr::Select(c, a, b) => {
                let rp = self.pred(c);
                let (ra, ta) = self.expr(a);
                let (rb, tb) = self.expr(b);
                let ty = join_ty(ta, tb);
                (
                    self.emitter
                        .emit(Opcode::Selp, ty, vec![ra.into(), rb.into(), rp.into()]),
                    ty,
                )
            }
            Expr::Cast(to, a) => {
                let (ra, _) = self.expr(a);
                let ty = scalar_ty(*to);
                (self.emitter.un(Opcode::Cvt, ty, ra), ty)
            }
        };
        self.cse_insert(e, out.0, out.1);
        out
    }
}

fn scalar_ty(s: Scalar) -> PtxType {
    match s {
        Scalar::F32 => PtxType::F32,
        Scalar::F64 => PtxType::F64,
        Scalar::I32 => PtxType::S32,
        Scalar::U32 | Scalar::Bool => PtxType::U32,
    }
}

fn join_ty(a: PtxType, b: PtxType) -> PtxType {
    use PtxType::*;
    match (a, b) {
        (F64, _) | (_, F64) => F64,
        (F32, _) | (_, F32) => F32,
        (U64, _) | (_, U64) => U64,
        (S32, _) | (_, S32) => S32,
        _ => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{ld, st, ParallelLoop, ProgramBuilder, E};
    use paccport_ir::{HostStmt, Intent};
    use paccport_ptx::Category;

    /// saxpy-like: y[i] = 2*x[i] + y[i].
    fn saxpy() -> (Program, Kernel) {
        let mut b = ProgramBuilder::new("saxpy");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        (p, k)
    }

    #[test]
    fn lowering_emits_global_memory_ops() {
        let (p, k) = saxpy();
        let lk = lower_kernel(&p, &k, 1, &LoweringStyle::caps());
        let c = lk.ptx.counts();
        // Two loads + one store + one cvta per array (2 arrays).
        assert_eq!(c.get(Category::GlobalMemory), 2 + 1 + 2);
        assert!(c.get(Category::Arithmetic) >= 2);
    }

    #[test]
    fn naive_style_emits_more_instructions() {
        let (p, k) = saxpy();
        let caps = lower_kernel(&p, &k, 1, &LoweringStyle::caps());
        let pgi = lower_kernel(&p, &k, 1, &LoweringStyle::pgi());
        assert!(
            pgi.ptx.len() > caps.ptx.len(),
            "pgi {} <= caps {}",
            pgi.ptx.len(),
            caps.ptx.len()
        );
        // PGI re-does cvta per access: 3 accesses vs 2 arrays once.
        assert!(
            pgi.ptx.counts().get(Category::GlobalMemory)
                > caps.ptx.counts().get(Category::GlobalMemory)
        );
    }

    #[test]
    fn cse_reuses_repeated_index_arithmetic() {
        // a[i*n+j] = a[i*n+j] + a[i*n+j]: the i*n+j computation should
        // be emitted once under CSE and three times naively.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        let idx = E::from(i) * n + j;
        let k = Kernel::simple(
            "k",
            vec![
                ParallelLoop::new(i, Expr::iconst(0), Expr::param(n)),
                ParallelLoop::new(j, Expr::iconst(0), Expr::param(n)),
            ],
            Block::new(vec![st(
                a,
                idx.clone(),
                ld(a, idx.clone()) + ld(a, idx.clone()),
            )]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let caps = lower_kernel(&p, &k, 2, &LoweringStyle::caps());
        let pgi = lower_kernel(&p, &k, 2, &LoweringStyle::pgi());
        let d = |lk: &LoweredKernel| lk.ptx.counts().get(Category::Arithmetic);
        assert!(d(&pgi) > d(&caps));
    }

    #[test]
    fn cost_tree_matches_ptx_for_flat_bodies() {
        let (p, k) = saxpy();
        let lk = lower_kernel(&p, &k, 1, &LoweringStyle::caps());
        // prologue + body(static) + ret == full kernel counts.
        let mut total = lk.prologue;
        total += lk.cost.static_counts();
        let full = lk.ptx.counts();
        assert_eq!(
            total.get(Category::GlobalMemory),
            full.get(Category::GlobalMemory)
        );
        assert_eq!(
            total.get(Category::Arithmetic),
            full.get(Category::Arithmetic)
        );
    }

    #[test]
    fn serialized_inner_loop_appears_as_cost_node() {
        let (p, mut k) = saxpy();
        // Distribute rank 0 of 1 → whole loop serialized per thread.
        k.name = "serial".into();
        let lk = lower_kernel(&p, &k, 0, &LoweringStyle::pgi());
        assert_eq!(lk.cost.kids.len(), 1);
        assert!(matches!(lk.cost.kids[0], CostNode::Loop { .. }));
    }

    #[test]
    fn fastmath_replaces_div() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, ld(a, i) / 3.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut style = LoweringStyle::caps();
        let before = lower_kernel(&p, &k, 1, &style);
        style.fastmath = true;
        let after = lower_kernel(&p, &k, 1, &style);
        let has_div = |lk: &LoweredKernel| {
            lk.ptx
                .body
                .iter()
                .filter_map(|i| i.as_inst())
                .any(|i| i.op == Opcode::Div)
        };
        assert!(has_div(&before));
        assert!(!has_div(&after));
    }

    #[test]
    fn stub_is_tiny() {
        let (p, k) = saxpy();
        let s = lower_stub(&p, &k);
        assert!(s.len() <= 6, "stub should be a few instructions");
    }

    #[test]
    fn grouped_body_emits_shared_and_barrier() {
        use paccport_ir::{st_local, GroupedBody, LocalArrayDecl};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let body = GroupedBody {
            group_size: 64,
            locals: vec![LocalArrayDecl {
                name: "sdata".into(),
                elem: Scalar::F32,
                len: 64,
            }],
            phases: vec![
                Block::new(vec![st_local(
                    ArrayId(0),
                    E(Expr::Special(SpecialVar::LocalId(0))),
                    ld(a, i),
                )]),
                Block::new(vec![st(
                    a,
                    i,
                    paccport_ir::ld_local(ArrayId(0), E(Expr::Special(SpecialVar::LocalId(0)))),
                )]),
            ],
        };
        let k = Kernel {
            name: "g".into(),
            loops: vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            body: KernelBody::Grouped(body),
            locals: vec![],
            region_reduction: None,
            reduction: None,
            launch_hint: None,
        };
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let lk = lower_kernel(&p, &k, 1, &LoweringStyle::opencl());
        let c = lk.ptx.counts();
        assert!(c.get(Category::SharedMemory) >= 2);
        assert!(c.get(Category::Sync) >= 1);
    }
}
