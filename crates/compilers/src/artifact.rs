//! Compilation artifacts: plans, cost trees, launch shapes and the
//! compiled program bundle.

use crate::options::{CompileOptions, CompilerId};
use paccport_ir::{Expr, VarId};
use paccport_ptx::{CategoryCounts, PtxModule};
use serde::{Deserialize, Serialize};

/// How a kernel's parallel iteration space is distributed over device
/// threads — the *thread distribution* at the centre of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistSpec {
    /// One thread executes everything (the CAPS `gang(1), worker(1)`
    /// default-distribution bug, or any fully serialized kernel).
    Sequential,
    /// CAPS gang mode: Table VI row "Gang mode" — grid `[gang,1,1]`,
    /// block `[1,worker,1]`; threads stride over the iteration space.
    GangWorker { gang: u32, worker: u32 },
    /// CAPS gridify, one grid dimension for a single loop:
    /// grid `[ceil(n / (bx·by)), 1, 1]`, block `[bx, by, 1]`.
    Gridify1D { bx: u32, by: u32 },
    /// CAPS gridify, two grid dimensions for nested loops:
    /// grid `[ceil(n1/bx), ceil(n0/by), 1]`, block `[bx, by, 1]`.
    Gridify2D { bx: u32, by: u32 },
    /// PGI's automatic one-dimensional distribution: block
    /// `[vector,1,1]` (vector = 128 by default), grid sized from the
    /// outer loop; inner loops run sequentially inside each thread.
    PgiAuto { vector: u32 },
    /// Hand-written OpenCL NDRange with a fixed local size; global
    /// size is the extent rounded up to a multiple of the local size
    /// (`two_d` selects a 2-D range for nested loops).
    NdRange { lx: u32, ly: u32, two_d: bool },
    /// Work-group execution for grouped (local-memory) kernels:
    /// `extent` global threads in groups of `group_size`.
    Grouped { group_size: u32 },
    /// One work-group *per parallel iteration* (reduction kernels:
    /// every group of `group_size` threads cooperates on a single
    /// outer iteration, as in the Fig. 13 tree reduction).
    GroupedPerIter { group_size: u32 },
}

/// Concrete launch dimensions for one launch, after the loop extents
/// are known.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchDims {
    pub grid: [u32; 3],
    pub block: [u32; 3],
}

impl LaunchDims {
    pub fn total_threads(&self) -> u64 {
        self.grid.iter().map(|v| *v as u64).product::<u64>()
            * self.block.iter().map(|v| *v as u64).product::<u64>()
    }

    pub fn threads_per_block(&self) -> u32 {
        self.block.iter().product()
    }

    /// `BXxBY`-style display used in the paper's figure captions
    /// ("Thread 32x4", "128x1", "1x1").
    pub fn thread_label(&self) -> String {
        format!("{}x{}", self.block[0].max(1), self.block[1].max(1))
    }
}

fn ceil_div(a: u64, b: u64) -> u32 {
    (a.div_ceil(b.max(1))).min(u32::MAX as u64) as u32
}

impl DistSpec {
    /// Compute launch dimensions from the evaluated parallel-loop
    /// extents (outermost first). Extents may be zero (empty launch).
    pub fn launch_dims(&self, extents: &[u64]) -> LaunchDims {
        let e0 = extents.first().copied().unwrap_or(0);
        let e1 = extents.get(1).copied().unwrap_or(1);
        match *self {
            DistSpec::Sequential => LaunchDims {
                grid: [1, 1, 1],
                block: [1, 1, 1],
            },
            DistSpec::GangWorker { gang, worker } => LaunchDims {
                grid: [gang, 1, 1],
                block: [1, worker, 1],
            },
            DistSpec::Gridify1D { bx, by } => LaunchDims {
                grid: [ceil_div(e0, bx as u64 * by as u64), 1, 1],
                block: [bx, by, 1],
            },
            DistSpec::Gridify2D { bx, by } => LaunchDims {
                grid: [ceil_div(e1, bx as u64), ceil_div(e0, by as u64), 1],
                block: [bx, by, 1],
            },
            DistSpec::PgiAuto { vector } => LaunchDims {
                grid: [ceil_div(e0, vector as u64).max(1), 1, 1],
                block: [vector, 1, 1],
            },
            DistSpec::NdRange { lx, ly, two_d } => {
                if two_d {
                    LaunchDims {
                        grid: [ceil_div(e1, lx as u64), ceil_div(e0, ly as u64), 1],
                        block: [lx, ly, 1],
                    }
                } else {
                    LaunchDims {
                        grid: [ceil_div(e0, lx as u64 * ly as u64), 1, 1],
                        block: [lx, ly, 1],
                    }
                }
            }
            DistSpec::Grouped { group_size } => LaunchDims {
                grid: [ceil_div(e0, group_size as u64), 1, 1],
                block: [group_size, 1, 1],
            },
            DistSpec::GroupedPerIter { group_size } => LaunchDims {
                grid: [e0.min(u32::MAX as u64) as u32, 1, 1],
                block: [group_size, 1, 1],
            },
        }
    }

    /// Whether the distribution actually exploits parallelism.
    pub fn is_parallel(&self) -> bool {
        match *self {
            DistSpec::Sequential => false,
            DistSpec::GangWorker { gang, worker } => (gang as u64 * worker as u64) > 1,
            _ => true,
        }
    }
}

/// Where and how a kernel executes — discovered in the paper via
/// `PGI_ACC_TIME` and nvprof (the BFS "does not run on GPU" finding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecStrategy {
    /// Launched on the device with a parallel distribution.
    DeviceParallel,
    /// Launched on the device, but effectively one thread.
    DeviceSequential,
    /// Never launched: the host runs the loop nest sequentially.
    HostSequential,
}

/// Whether the compiled kernel computes correct results on the target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Correctness {
    Correct,
    /// Known-wrong on this target (CAPS `reduction` on MIC).
    Wrong {
        reason: String,
    },
}

/// A nested cost model for one kernel: per-parallel-iteration
/// instruction counts with loop and branch structure preserved, built
/// by the same emission pass that produces the PTX (so static counts
/// and dynamic estimates cannot drift apart).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CostTree {
    /// Instructions executed once per visit of this tree, excluding
    /// children.
    pub flat: CategoryCounts,
    /// Global-memory transactions (`ld.global`/`st.global` only —
    /// `cvta` is counted in `flat` but moves no bytes) executed once
    /// per visit, excluding children.
    pub flat_ldst: u64,
    pub kids: Vec<CostNode>,
}

/// A child region of a [`CostTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostNode {
    /// A sequential loop: `body` runs `max(0, hi-lo)/step` times, plus
    /// `overhead` (compare/branch/increment) per iteration.
    Loop {
        var: VarId,
        lo: Expr,
        hi: Expr,
        step: i64,
        overhead: CategoryCounts,
        body: CostTree,
    },
    /// A two-armed branch; the dynamic estimator weights the arms
    /// (default 0.5 unless the workload supplies a hint).
    Branch { then: CostTree, els: CostTree },
}

impl CostTree {
    /// Total static counts (every loop body and both branch arms
    /// counted once) — must match the PTX static counts of the body.
    pub fn static_counts(&self) -> CategoryCounts {
        let mut c = self.flat;
        for k in &self.kids {
            match k {
                CostNode::Loop { overhead, body, .. } => {
                    c += *overhead;
                    c += body.static_counts();
                }
                CostNode::Branch { then, els } => {
                    c += then.static_counts();
                    c += els.static_counts();
                }
            }
        }
        c
    }
}

/// A compiler diagnostic line, as printed during compilation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    pub kernel: String,
    pub message: String,
}

/// Host↔device data-movement policy the compiler settled on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferPolicy {
    /// Arrays stay resident on the device; movement only at region
    /// boundaries and explicit `update`s (PGI's hoisted schedule —
    /// Table VII "4 times in total").
    Resident,
    /// Inside dynamically-bounded host loops, written arrays are
    /// re-synchronized every iteration (CAPS — Table VII "3 times in
    /// each iteration").
    PerIteration,
}

/// Per-kernel compilation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPlan {
    pub kernel: String,
    pub exec: ExecStrategy,
    pub dist: DistSpec,
    /// Per-thread setup cost (parameter loads, address setup, global
    /// index computation, bounds guard).
    pub prologue: CategoryCounts,
    /// Per-parallel-iteration body cost.
    pub cost: CostTree,
    pub correctness: Correctness,
    /// Figure-caption style thread configuration label ("32x4",
    /// "128x1", "256x16", "1x1").
    pub config_label: String,
    /// Slow-down multiplier for known performance bugs that do not
    /// show in the instruction stream (CAPS's reduction that emits
    /// shared-memory code but fails to speed anything up). 1.0 = none.
    pub perf_penalty: f64,
}

/// Everything a compiler produces for one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledProgram {
    pub compiler: CompilerId,
    pub options: CompileOptions,
    /// The (possibly transformed) program the device simulator runs:
    /// unrolling, tiling and reduction lowering are IR-to-IR, so the
    /// functional interpreter executes exactly what was compiled.
    pub program: paccport_ir::Program,
    /// PTX-like code, one kernel per compute region (stub bodies for
    /// host-fallback kernels, matching the paper's "few PTX
    /// instructions" observation for PGI's BFS).
    pub module: PtxModule,
    pub plans: Vec<KernelPlan>,
    pub diagnostics: Vec<Diagnostic>,
    pub transfers: TransferPolicy,
}

impl CompiledProgram {
    pub fn plan(&self, kernel: &str) -> Option<&KernelPlan> {
        self.plans.iter().find(|p| p.kernel == kernel)
    }

    /// All diagnostics for one kernel.
    pub fn diags_for(&self, kernel: &str) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.kernel == kernel)
            .collect()
    }
}

/// Compilation failure (e.g. PGI on Hydro's pointer-heavy headers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileError {
    pub compiler: CompilerId,
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.compiler.label(), self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ptx::Category;

    #[test]
    fn table6_gang_mode_shape() {
        // CAPS gang-mode default from Table VI: grid [192,1,1],
        // block [1,256,1].
        let d = DistSpec::GangWorker {
            gang: 192,
            worker: 256,
        };
        let l = d.launch_dims(&[4096]);
        assert_eq!(l.grid, [192, 1, 1]);
        assert_eq!(l.block, [1, 256, 1]);
        assert_eq!(l.total_threads(), 192 * 256);
    }

    #[test]
    fn table6_gridify_shapes() {
        // Gridify 1D on n=4096 with 32x4: grid [32,1,1], block [32,4,1].
        let d = DistSpec::Gridify1D { bx: 32, by: 4 };
        let l = d.launch_dims(&[4096]);
        assert_eq!(l.grid, [32, 1, 1]);
        assert_eq!(l.block, [32, 4, 1]);
        assert_eq!(l.thread_label(), "32x4");

        // Gridify 2D on 100x200 (outer=100, inner=200).
        let d = DistSpec::Gridify2D { bx: 32, by: 4 };
        let l = d.launch_dims(&[100, 200]);
        assert_eq!(l.grid, [200u32.div_ceil(32), 100u32.div_ceil(4), 1]);
        assert_eq!(l.block, [32, 4, 1]);
    }

    #[test]
    fn pgi_auto_is_128x1() {
        let d = DistSpec::PgiAuto { vector: 128 };
        let l = d.launch_dims(&[1000]);
        assert_eq!(l.block, [128, 1, 1]);
        assert_eq!(l.grid[0], 8);
        assert_eq!(l.thread_label(), "128x1");
    }

    #[test]
    fn sequential_is_1x1() {
        let l = DistSpec::Sequential.launch_dims(&[1 << 20]);
        assert_eq!(l.total_threads(), 1);
        assert_eq!(l.thread_label(), "1x1");
        assert!(!DistSpec::Sequential.is_parallel());
        assert!(!DistSpec::GangWorker { gang: 1, worker: 1 }.is_parallel());
        assert!(DistSpec::PgiAuto { vector: 128 }.is_parallel());
    }

    #[test]
    fn empty_extents_produce_empty_grid() {
        let d = DistSpec::Gridify1D { bx: 32, by: 4 };
        let l = d.launch_dims(&[0]);
        assert_eq!(l.grid[0], 0);
        assert_eq!(l.total_threads(), 0);
    }

    #[test]
    fn cost_tree_static_counts_sum_children() {
        let mut flat = CategoryCounts::default();
        flat.add_n(Category::Arithmetic, 2);
        let mut inner_flat = CategoryCounts::default();
        inner_flat.add_n(Category::GlobalMemory, 3);
        let mut overhead = CategoryCounts::default();
        overhead.add_n(Category::FlowControl, 2);
        let t = CostTree {
            flat,
            flat_ldst: 0,
            kids: vec![CostNode::Loop {
                var: VarId(0),
                lo: Expr::iconst(0),
                hi: Expr::iconst(10),
                step: 1,
                overhead,
                body: CostTree {
                    flat: inner_flat,
                    flat_ldst: 3,
                    kids: vec![],
                },
            }],
        };
        let c = t.static_counts();
        assert_eq!(c.get(Category::Arithmetic), 2);
        assert_eq!(c.get(Category::GlobalMemory), 3);
        assert_eq!(c.get(Category::FlowControl), 2);
    }
}
