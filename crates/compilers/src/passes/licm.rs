//! Loop-invariant code motion out of innermost sequential `For`
//! bodies.
//!
//! Hoists a top-level `Let` of a `For` body in front of the loop when
//! the binding is provably the same value on every iteration and
//! evaluating it early (and exactly once, even for zero-trip loops)
//! is indistinguishable from the original schedule:
//!
//! * the initializer mentions no variable that the loop body assigns
//!   or (re)binds, and not the loop variable;
//! * the initializer reads no memory (`Load`) — stores in the loop
//!   could change what it sees;
//! * the initializer can never trap ([`super::util::never_traps`]) —
//!   a zero-trip loop must not start panicking because we evaluate
//!   the expression once, and a panicking iteration must not panic
//!   *earlier* than it used to;
//! * the hoisted variable is bound by exactly one `Let` in the whole
//!   kernel and never assigned, so widening its scope cannot collide
//!   with another binding of the same slot.
//!
//! Only innermost loops (no nested `For` in the body) are processed
//! directly; the pass-manager fixpoint hoists invariants outward one
//! level per sweep.

use super::util::{
    assigned_vars, expr_vars, for_vars, has_load, kernel_blocks, kernel_blocks_mut,
    kind_env_for_kernel, let_vars, never_traps,
};
use paccport_ir::{Block, KindEnv, Program, Stmt, VarId};
use std::collections::{BTreeMap, BTreeSet};

fn block_has_for(b: &Block) -> bool {
    let mut found = false;
    b.walk(&mut |s| {
        if matches!(s, Stmt::For { .. }) {
            found = true;
        }
    });
    found
}

fn hoist_in_block(
    b: &mut Block,
    env: &KindEnv,
    let_count: &BTreeMap<VarId, usize>,
    assigned: &BTreeSet<VarId>,
    loop_bound: &BTreeSet<VarId>,
) -> bool {
    let mut changed = false;
    for s in &mut b.0 {
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                changed |= hoist_in_block(then_blk, env, let_count, assigned, loop_bound);
                changed |= hoist_in_block(else_blk, env, let_count, assigned, loop_bound);
            }
            Stmt::For { body, .. } => {
                changed |= hoist_in_block(body, env, let_count, assigned, loop_bound);
            }
            _ => {}
        }
    }
    let mut i = 0;
    while i < b.0.len() {
        let mut hoisted: Vec<Stmt> = Vec::new();
        if let Stmt::For { var, body, .. } = &mut b.0[i] {
            if !block_has_for(body) {
                let loop_var = *var;
                let mut pinned = assigned_vars(body);
                pinned.extend(let_vars(body));
                pinned.insert(loop_var);
                body.0.retain(|s| {
                    if let Stmt::Let { var: v, init, .. } = s {
                        let ok = let_count.get(v) == Some(&1)
                            && !assigned.contains(v)
                            && !loop_bound.contains(v)
                            && !has_load(init)
                            && never_traps(init, env)
                            && expr_vars(init).is_disjoint(&pinned);
                        if ok {
                            hoisted.push(s.clone());
                            return false;
                        }
                    }
                    true
                });
            }
        }
        if hoisted.is_empty() {
            i += 1;
        } else {
            changed = true;
            let n = hoisted.len();
            b.0.splice(i..i, hoisted);
            i += n + 1;
        }
    }
    changed
}

pub fn run(p: &mut Program) -> bool {
    let program_env = KindEnv::for_program(p);
    let mut changed = false;
    p.map_kernels(|k| {
        let env = kind_env_for_kernel(&program_env, k);
        let mut let_count: BTreeMap<VarId, usize> = BTreeMap::new();
        let mut assigned: BTreeSet<VarId> = BTreeSet::new();
        let mut loop_bound: BTreeSet<VarId> = k.loops.iter().map(|lp| lp.var).collect();
        for b in kernel_blocks(k) {
            assigned.extend(assigned_vars(b));
            loop_bound.extend(for_vars(b));
            b.walk(&mut |s| {
                if let Stmt::Let { var, .. } = s {
                    *let_count.entry(*var).or_insert(0) += 1;
                }
            });
        }
        for b in kernel_blocks_mut(k) {
            changed |= hoist_in_block(b, &env, &let_count, &assigned, &loop_bound);
        }
    });
    changed
}
