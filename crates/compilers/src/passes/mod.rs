//! An ordered middle-end pass pipeline over the kernel IR.
//!
//! Historically every rewrite in this crate lived in
//! [`crate::transforms`] as a free function that the conformance
//! driver invoked ad hoc. This module gives them a spine: a [`Pass`]
//! is a named `fn(&mut Program) -> bool` rewrite, a [`Pipeline`] is
//! an ordered list of passes run to a bounded fixpoint, and every run
//! is observable — each pass that reports a change bumps a
//! `passes.<name>` counter in the `paccport-trace` metrics registry,
//! and the conformance driver checks each pass (and each prefix of
//! the default pipeline) for bitwise-exact observable equivalence
//! against the reference oracle.
//!
//! The default optimization pipeline is
//! `mem2reg → constfold → licm → cse → dse`: promotion first (it
//! unlocks the kind analysis everything else gates on), folding
//! before motion (smaller expressions hoist and match more readily),
//! DSE last (the earlier passes strand dead bindings it sweeps up).
//!
//! Structural transforms (unrolling, strip-mining, …) are registered
//! too so `reproduce --passes` can name them, but they are marked
//! non-`fixpoint`: re-running unroll until quiescence would double
//! the program every sweep.

pub mod constfold;
pub mod cse;
pub mod dse;
pub mod licm;
pub mod mem2reg;
pub mod util;

use crate::transforms::TransformVariant;
use paccport_ir::Program;
use std::sync::RwLock;

/// A named kernel-IR rewrite. `run` must preserve bitwise-exact
/// observable behavior (the conformance suite enforces this) and
/// report whether it changed the program.
#[derive(Debug, Clone, Copy)]
pub struct Pass {
    pub name: &'static str,
    /// Metrics counter bumped once per program on which the pass
    /// reported a change (`passes.<name>`).
    pub counter: &'static str,
    /// Whether the pass manager may re-run this pass when a later
    /// sweep changes the program again. Analysis-style rewrites
    /// converge; structural transforms (unrolling) would grow the
    /// program every sweep and run once only.
    pub fixpoint: bool,
    pub run: fn(&mut Program) -> bool,
}

/// The optimization passes of the default pipeline, in order.
pub const DEFAULT_PASSES: [&str; 5] = ["mem2reg", "constfold", "licm", "cse", "dse"];

/// Name of the pseudo-pass that enables the post-lowering PTX
/// peephole (it runs on the lowered module, not the IR, so it is a
/// [`Pipeline`] flag rather than a [`Pass`]).
pub const PTX_PEEPHOLE: &str = "ptx-peephole";

/// Every registered pass. Optimization passes first (pipeline
/// order), then the structural transforms ported from
/// [`crate::transforms`].
pub fn registry() -> Vec<Pass> {
    fn p(name: &'static str, counter: &'static str, run: fn(&mut Program) -> bool) -> Pass {
        Pass {
            name,
            counter,
            fixpoint: true,
            run,
        }
    }
    fn t(name: &'static str, counter: &'static str, run: fn(&mut Program) -> bool) -> Pass {
        Pass {
            name,
            counter,
            fixpoint: false,
            run,
        }
    }
    vec![
        p("mem2reg", "passes.mem2reg", mem2reg::run),
        p("constfold", "passes.constfold", constfold::run),
        p("licm", "passes.licm", licm::run),
        p("cse", "passes.cse", cse::run),
        p("dse", "passes.dse", dse::run),
        p("simplify", "passes.simplify", |p| {
            TransformVariant::Simplify.apply(p)
        }),
        t("unroll2", "passes.unroll2", |p| {
            TransformVariant::Unroll(2).apply(p)
        }),
        t("unroll3", "passes.unroll3", |p| {
            TransformVariant::Unroll(3).apply(p)
        }),
        t("unroll-grouped2", "passes.unroll-grouped2", |p| {
            TransformVariant::UnrollGrouped(2).apply(p)
        }),
        t("strip-mine4", "passes.strip-mine4", |p| {
            TransformVariant::StripMine(4).apply(p)
        }),
        t("serialize-inner", "passes.serialize-inner", |p| {
            TransformVariant::SerializeInner.apply(p)
        }),
        t(
            "reduction-to-grouped8",
            "passes.reduction-to-grouped8",
            |p| TransformVariant::ReductionToGrouped(8).apply(p),
        ),
    ]
}

/// Outcome of a [`Pipeline::run`]: which passes reported a change
/// (in application order, with per-pass change counts) and how many
/// fixpoint sweeps were needed.
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    pub applied: Vec<(&'static str, u32)>,
    pub sweeps: u32,
}

impl PassStats {
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// Fixpoint safety valve. Well-behaved passes converge in two or
/// three sweeps; NaN-bearing programs defeat `PartialEq`-based
/// change detection and would otherwise spin forever.
const MAX_SWEEPS: u32 = 8;

/// An ordered list of passes, run to a bounded fixpoint.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    pub passes: Vec<Pass>,
    /// Run the PTX peephole on the lowered module afterwards (see
    /// `paccport_ptx::peephole`; applied by [`crate::compile`]).
    pub peephole: bool,
}

impl Pipeline {
    /// Parse a `--passes` specification: comma-separated pass names,
    /// where `default` expands to the default optimization pipeline
    /// and `ptx-peephole` enables the post-lowering peephole.
    pub fn parse(spec: &str) -> Result<Pipeline, String> {
        let registry = registry();
        let mut pl = Pipeline::default();
        for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if name == "default" {
                for d in DEFAULT_PASSES {
                    pl.passes
                        .push(*registry.iter().find(|p| p.name == d).unwrap());
                }
            } else if name == PTX_PEEPHOLE {
                pl.peephole = true;
            } else if let Some(p) = registry.iter().find(|p| p.name == name) {
                pl.passes.push(*p);
            } else {
                let known: Vec<&str> = registry
                    .iter()
                    .map(|p| p.name)
                    .chain(["default", PTX_PEEPHOLE])
                    .collect();
                return Err(format!(
                    "unknown pass '{name}' (known: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(pl)
    }

    /// The default optimization pipeline (no peephole).
    pub fn default_pipeline() -> Pipeline {
        Pipeline::parse("default").unwrap()
    }

    /// Stable human-readable label, e.g. for conformance legs.
    pub fn label(&self) -> String {
        let mut parts: Vec<&str> = self.passes.iter().map(|p| p.name).collect();
        if self.peephole {
            parts.push(PTX_PEEPHOLE);
        }
        parts.join(",")
    }

    /// Run the pipeline on `p`. Each full sweep applies the passes in
    /// order; sweeps repeat while any `fixpoint` pass still reports
    /// progress, up to [`MAX_SWEEPS`]. Non-fixpoint (structural)
    /// passes run during the first sweep only.
    pub fn run(&self, p: &mut Program) -> PassStats {
        let mut stats = PassStats::default();
        for sweep in 0..MAX_SWEEPS {
            stats.sweeps = sweep + 1;
            let mut sweep_changed = false;
            for pass in &self.passes {
                if sweep > 0 && !pass.fixpoint {
                    continue;
                }
                if (pass.run)(p) {
                    paccport_trace::add(pass.counter, 1);
                    match stats.applied.iter_mut().find(|(n, _)| *n == pass.name) {
                        Some((_, n)) => *n += 1,
                        None => stats.applied.push((pass.name, 1)),
                    }
                    // Any change (structural included) earns one more
                    // sweep so earlier fixpoint passes see it; only
                    // fixpoint passes run in that sweep, so this still
                    // terminates.
                    sweep_changed = true;
                }
            }
            if !sweep_changed {
                break;
            }
        }
        stats
    }
}

/// Session-global pipeline applied by [`crate::compile`] before
/// dispatching to a compiler personality (and, when `peephole` is
/// set, to the lowered PTX module afterwards). `None` — the default
/// — leaves compilation byte-for-byte as it always was.
static GLOBAL: RwLock<Option<Pipeline>> = RwLock::new(None);

pub fn set_global_pipeline(pl: Option<Pipeline>) {
    *GLOBAL.write().unwrap() = pl;
}

pub fn global_pipeline() -> Option<Pipeline> {
    GLOBAL.read().unwrap().clone()
}
