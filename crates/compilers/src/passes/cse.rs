//! Common-subexpression elimination over pure expression trees.
//!
//! Within one block (per nesting level), repeated occurrences of a
//! structurally identical, `Load`-free, trap-free expression are
//! replaced by a fresh `Let`-bound temporary inserted before the
//! first occurrence:
//!
//! ```text
//! store b[i] = (x*y + 1) * (x*y + 1);      let cse7 = x*y + 1;
//! store c[i] = x*y + 1;              =>    store b[i] = cse7 * cse7;
//!                                          store c[i] = cse7;
//! ```
//!
//! The temporary's declared type is the *identity* scalar for the
//! expression's proven kind, so the `Let` coercion reproduces the
//! value bit for bit. Availability is purely syntactic: an occurrence
//! at a later statement only joins the candidate if no statement in
//! between (re)defines any variable the expression mentions —
//! `Assign` targets, `Let` bindings and `For` variables all count,
//! nested ones included ([`super::util::defs_of`]). Occurrences
//! inside nested blocks are never rewritten (an `If` branch may not
//! execute, so evaluating its expression early could change trap
//! *and* value behavior; `never_traps` covers traps but memory reads
//! are already excluded and partial-execution value semantics are
//! simply not worth modeling here).

use super::util::{
    defs_of, expr_vars, has_load, identity_scalar, kernel_blocks_mut, kind_env_for_kernel,
    never_traps, replace_expr,
};
use crate::transforms::VarAlloc;
use paccport_ir::{value_kind, Block, Expr, KindEnv, Program, Scalar, Stmt, VarId};

struct Cand {
    expr: Expr,
    first: usize,
    last: usize,
    count: usize,
    live: bool,
}

fn for_each_expr_mut(s: &mut Stmt, f: &mut impl FnMut(&mut Expr)) {
    match s {
        Stmt::Let { init, .. } => f(init),
        Stmt::Assign { value, .. } => f(value),
        Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
            f(index);
            f(value);
        }
        Stmt::If { cond, .. } => f(cond),
        Stmt::For { lo, hi, .. } => {
            f(lo);
            f(hi);
        }
        Stmt::Barrier => {}
    }
}

/// Find the most profitable candidate in `b` (this level only) and
/// rewrite it. Returns `false` when nothing is worth doing.
fn apply_one(
    b: &mut Block,
    env: &KindEnv,
    va: &mut VarAlloc<'_>,
    new_locals: &mut Vec<(VarId, Scalar)>,
) -> bool {
    let mut cands: Vec<Cand> = Vec::new();
    for (j, s) in b.0.iter().enumerate() {
        s.for_each_expr(&mut |top| {
            top.walk(&mut |e| {
                if e.node_count() < 3 || has_load(e) {
                    return;
                }
                let hit = cands.iter().position(|c| c.live && c.expr == *e);
                if let Some(i) = hit {
                    cands[i].count += 1;
                    cands[i].last = j;
                } else if never_traps(e, env) && value_kind(e, env).is_some() {
                    cands.push(Cand {
                        expr: e.clone(),
                        first: j,
                        last: j,
                        count: 1,
                        live: true,
                    });
                }
            });
        });
        let defs = defs_of(s);
        if !defs.is_empty() {
            for c in &mut cands {
                if c.live && !expr_vars(&c.expr).is_disjoint(&defs) {
                    c.live = false;
                }
            }
        }
    }
    // Savings: each repeated occurrence collapses `node_count` nodes
    // into one `Var` read. Deterministic tie-break on scan position.
    let best = cands.iter().filter(|c| c.count >= 2).max_by_key(|c| {
        (
            (c.count - 1) * (c.expr.node_count() - 1),
            std::cmp::Reverse(c.first),
        )
    });
    let Some(best) = best else {
        return false;
    };
    let kind = value_kind(&best.expr, env).expect("candidates are typable");
    let ty = identity_scalar(kind);
    let t = va.fresh("cse");
    new_locals.push((t, ty));
    let tvar = Expr::Var(t);
    for j in best.first..=best.last {
        for_each_expr_mut(&mut b.0[j], &mut |e| {
            *e = replace_expr(e, &best.expr, &tvar);
        });
    }
    let init = best.expr.clone();
    b.0.insert(best.first, Stmt::Let { var: t, ty, init });
    true
}

fn cse_block(
    b: &mut Block,
    env: &KindEnv,
    va: &mut VarAlloc<'_>,
    new_locals: &mut Vec<(VarId, Scalar)>,
) -> bool {
    let mut changed = false;
    for s in &mut b.0 {
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                changed |= cse_block(then_blk, env, va, new_locals);
                changed |= cse_block(else_blk, env, va, new_locals);
            }
            Stmt::For { body, .. } => {
                changed |= cse_block(body, env, va, new_locals);
            }
            _ => {}
        }
    }
    for _ in 0..8 {
        if !apply_one(b, env, va, new_locals) {
            break;
        }
        changed = true;
    }
    changed
}

pub fn run(p: &mut Program) -> bool {
    let program_env = KindEnv::for_program(p);
    let mut names = std::mem::take(&mut p.var_names);
    let mut changed = false;
    {
        let mut va = VarAlloc::new(&mut names);
        p.map_kernels(|k| {
            let env = kind_env_for_kernel(&program_env, k);
            let mut new_locals: Vec<(VarId, Scalar)> = Vec::new();
            for b in kernel_blocks_mut(k) {
                changed |= cse_block(b, &env, &mut va, &mut new_locals);
            }
            k.locals.extend(new_locals);
        });
    }
    p.var_names = names;
    changed
}
