//! Dead-store elimination against array intents, plus dead-`Let`
//! sweeping.
//!
//! Three rewrites, each gated on trap preservation (a removed
//! statement's expressions stop being evaluated, so they must be
//! provably total — [`super::util::never_traps`]):
//!
//! 1. **Overwritten stores**: `store a[e] = v₁ … store a[e] = v₂` at
//!    the same block level, with no intervening read of `a`, atomic
//!    on `a`, barrier, or redefinition of a variable in `e` — the
//!    first store can never be observed. The execution engines run
//!    parallel iterations (and grouped-phase threads) sequentially,
//!    so "no intervening statement observes it" within the block is
//!    sufficient.
//! 2. **Stores to unobservable arrays**: a global array whose intent
//!    does not copy out (`In`/`Scratch`) and that is never read by
//!    any load, atomic, host statement, `WhileFlag` test or region
//!    reduction is write-only debris; its stores go away.
//! 3. **Dead `Let`s**: a binding whose variable is bound exactly once
//!    in the whole program, read nowhere (kernel bodies, loop bounds,
//!    reduction values, host expressions), never assigned and not a
//!    reduction accumulator. These are typically left behind by
//!    scalar promotion and constant propagation.

use super::util::{defs_of, expr_vars, kernel_blocks_mut, kind_env_for_kernel, never_traps};
use paccport_ir::{
    ArrayId, Block, Expr, HostStmt, Kernel, KindEnv, MemSpace, Program, Stmt, VarId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Every expression of the program: kernel bodies (including nested
/// statements), parallel-loop bounds, region-reduction values, and
/// host statements.
fn walk_program_exprs(p: &Program, f: &mut impl FnMut(&Expr)) {
    fn host(stmts: &[HostStmt], f: &mut impl FnMut(&Expr)) {
        for s in stmts {
            match s {
                HostStmt::DataRegion { body, .. }
                | HostStmt::HostLoop { body, .. }
                | HostStmt::WhileFlag { body, .. } => host(body, f),
                HostStmt::Launch(k) => kernel(k, f),
                HostStmt::HostAssign { value, .. } => value.walk(f),
                HostStmt::HostStore { index, value, .. } => {
                    index.walk(f);
                    value.walk(f);
                }
                HostStmt::HostCompute { instr, .. } => instr.walk(f),
                HostStmt::Update { .. }
                | HostStmt::EnterData { .. }
                | HostStmt::ExitData { .. } => {}
            }
            if let HostStmt::HostLoop { lo, hi, .. } = s {
                lo.walk(f);
                hi.walk(f);
            }
        }
    }
    fn kernel(k: &Kernel, f: &mut impl FnMut(&Expr)) {
        for lp in &k.loops {
            lp.lo.walk(f);
            lp.hi.walk(f);
        }
        if let Some(rr) = &k.region_reduction {
            rr.value.walk(f);
        }
        for b in super::util::kernel_blocks(k) {
            b.walk_exprs(f);
        }
    }
    host(&p.body, f);
}

/// Does `s` (or anything nested in it) read global array `a` — via a
/// load or an atomic (atomics read-modify-write)?
fn reads_array(s: &Stmt, space: MemSpace, array: ArrayId) -> bool {
    let mut found = false;
    s.walk(&mut |n| {
        if let Stmt::Atomic { array: a2, .. } = n {
            if space == MemSpace::Global && *a2 == array {
                found = true;
            }
        }
        n.for_each_expr(&mut |top| {
            top.walk(&mut |e| {
                if let Expr::Load {
                    space: sp,
                    array: a2,
                    ..
                } = e
                {
                    if *sp == space && *a2 == array {
                        found = true;
                    }
                }
            });
        });
    });
    found
}

fn has_barrier(s: &Stmt) -> bool {
    let mut found = false;
    s.walk(&mut |n| {
        if matches!(n, Stmt::Barrier) {
            found = true;
        }
    });
    found
}

fn dse_block(
    b: &mut Block,
    env: &KindEnv,
    dead_arrays: &BTreeSet<ArrayId>,
    dead_lets: &BTreeSet<VarId>,
) -> bool {
    let mut changed = false;
    for s in &mut b.0 {
        match s {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                changed |= dse_block(then_blk, env, dead_arrays, dead_lets);
                changed |= dse_block(else_blk, env, dead_arrays, dead_lets);
            }
            Stmt::For { body, .. } => {
                changed |= dse_block(body, env, dead_arrays, dead_lets);
            }
            _ => {}
        }
    }

    // Rules 2 and 3: stores to unobservable arrays, dead Lets.
    let n0 = b.0.len();
    b.0.retain(|s| match s {
        Stmt::Store {
            space: MemSpace::Global,
            array,
            index,
            value,
        } if dead_arrays.contains(array) => !(never_traps(index, env) && never_traps(value, env)),
        Stmt::Let { var, init, .. } if dead_lets.contains(var) => !never_traps(init, env),
        _ => true,
    });
    changed |= b.0.len() != n0;

    // Rule 1: overwritten stores.
    let mut kill = vec![false; b.0.len()];
    for (i, si) in b.0.iter().enumerate() {
        let Stmt::Store {
            space,
            array,
            index,
            value,
        } = si
        else {
            continue;
        };
        if !never_traps(index, env) || !never_traps(value, env) {
            continue;
        }
        let ivars = expr_vars(index);
        for sj in &b.0[i + 1..] {
            if let Stmt::Store {
                space: s2,
                array: a2,
                index: i2,
                ..
            } = sj
            {
                // The overwrite's own index/value evaluate *before*
                // it writes — it only kills the earlier store if it
                // does not itself read the array (e.g.
                // `a[i] = f(a[i])` observes the killed value).
                if s2 == space && a2 == array && i2 == index && !reads_array(sj, *space, *array) {
                    kill[i] = true;
                    break;
                }
            }
            if reads_array(sj, *space, *array)
                || has_barrier(sj)
                || !defs_of(sj).is_disjoint(&ivars)
            {
                break;
            }
        }
    }
    if kill.iter().any(|&k| k) {
        let mut i = 0;
        b.0.retain(|_| {
            let dead = kill[i];
            i += 1;
            !dead
        });
        changed = true;
    }
    changed
}

pub fn run(p: &mut Program) -> bool {
    let program_env = KindEnv::for_program(p);

    // Program-wide read sets.
    let mut read_arrays: BTreeSet<ArrayId> = BTreeSet::new();
    let mut read_vars: BTreeSet<VarId> = BTreeSet::new();
    walk_program_exprs(p, &mut |e| match e {
        // All spaces, conservatively: a local array id that happens to
        // collide with a global id only suppresses a removal.
        Expr::Load { array, .. } => {
            read_arrays.insert(*array);
        }
        Expr::Var(v) => {
            read_vars.insert(*v);
        }
        _ => {}
    });
    let mut let_count: BTreeMap<VarId, usize> = BTreeMap::new();
    let mut assigned_or_pinned: BTreeSet<VarId> = BTreeSet::new();
    for hs in &p.body {
        hs.walk(&mut |h| match h {
            HostStmt::Launch(k) => {
                if let Some(r) = &k.reduction {
                    assigned_or_pinned.insert(r.acc);
                }
                for lp in &k.loops {
                    assigned_or_pinned.insert(lp.var);
                }
                for b in super::util::kernel_blocks(k) {
                    b.walk(&mut |s| match s {
                        Stmt::Let { var, .. } => {
                            *let_count.entry(*var).or_insert(0) += 1;
                        }
                        Stmt::Assign { var, .. } => {
                            assigned_or_pinned.insert(*var);
                        }
                        _ => {}
                    });
                }
            }
            HostStmt::WhileFlag { flag, .. } => {
                read_arrays.insert(*flag);
            }
            HostStmt::HostAssign { var, .. } | HostStmt::HostLoop { var, .. } => {
                assigned_or_pinned.insert(*var);
            }
            _ => {}
        });
    }
    for hs in &p.body {
        hs.walk(&mut |h| {
            if let HostStmt::Launch(k) = h {
                if let Some(rr) = &k.region_reduction {
                    // Engines may read-modify the destination slot.
                    read_arrays.insert(rr.dest);
                }
            }
        });
    }

    let dead_arrays: BTreeSet<ArrayId> = p
        .arrays
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.intent.copies_out() && !read_arrays.contains(&ArrayId(*i as u32)))
        .map(|(i, _)| ArrayId(i as u32))
        .collect();
    let dead_lets: BTreeSet<VarId> = let_count
        .iter()
        .filter(|(v, n)| **n == 1 && !read_vars.contains(v) && !assigned_or_pinned.contains(v))
        .map(|(v, _)| *v)
        .collect();

    let mut changed = false;
    p.map_kernels(|k| {
        let env = kind_env_for_kernel(&program_env, k);
        for b in kernel_blocks_mut(k) {
            changed |= dse_block(b, &env, &dead_arrays, &dead_lets);
        }
    });
    changed
}
