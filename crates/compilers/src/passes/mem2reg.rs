//! Scalar promotion ("mem2reg" for this IR): rewrite mutable locals
//! into SSA-style chains of immutable `Let` bindings.
//!
//! The IR's `Assign` statement stores a value into an existing slot
//! *without* coercing it through the declared type (only `Let`
//! coerces). That makes reassigned locals opaque to the kind analysis
//! in `paccport_ir::simplify` — after one `Assign`, nothing can be
//! said about the runtime kind of the variable, and every downstream
//! fold on it is blocked. This pass removes the `Assign`s:
//!
//! ```text
//! let x: f32 = a;      let x: f32 = a;
//! y = x + 1.0;         let x_ssa1: f64 = x + 1.0;   // identity ty
//! store b[i] = y;  =>  store b[i] = x_ssa1;
//! ```
//!
//! Each rewritten `Assign { var, value }` becomes a fresh
//! `Let { nv, ty, value }` where `ty` is the *identity* scalar for the
//! value's proven runtime kind (`I32` for integers, `F64` for floats,
//! `Bool` for booleans), so the new binding reproduces the assigned
//! value bit for bit. Subsequent reads are renamed to the freshest
//! binding. If the kind of an assigned value cannot be proven, that
//! particular site is *kept* as an `Assign` (writing the renamed value
//! back into the original slot), which is always sound — later reads
//! simply fall back to the original variable.
//!
//! Conservatism (all enforced, any failure skips the variable or the
//! whole kernel):
//!
//! * only kernels with a `Simple` body and no (region) reduction —
//!   grouped phases share slots across phases and per-thread
//!   environments, and reduction accumulators are read by the engine
//!   after the body runs;
//! * only variables with exactly one `Let`, at the top level of the
//!   body, and whose `Assign`s are all at the top level too (writes
//!   inside `If`/`For` merge control-flow-dependent values, which this
//!   pass does not model with phis);
//! * never loop variables.

use super::util::{assigned_vars, identity_scalar, let_vars};
use crate::transforms::VarAlloc;
use paccport_ir::{value_kind, Expr, KernelBody, KindEnv, Program, Stmt, ValueKind, VarId};
use std::collections::{BTreeMap, BTreeSet};

pub fn run(p: &mut Program) -> bool {
    let program_env = KindEnv::for_program(p);
    let hints: Vec<String> = p.var_names.clone();
    let mut names = std::mem::take(&mut p.var_names);
    let mut changed = false;
    {
        let mut va = VarAlloc::new(&mut names);
        p.map_kernels(|k| {
            if k.reduction.is_some() || k.region_reduction.is_some() {
                return;
            }
            let mut env = program_env.clone();
            for lp in &k.loops {
                env.set_var(lp.var, ValueKind::Int);
            }
            let KernelBody::Simple(body) = &mut k.body else {
                return;
            };

            // Candidacy over the whole body.
            let mut let_count: BTreeMap<VarId, usize> = BTreeMap::new();
            let mut top_lets: BTreeSet<VarId> = BTreeSet::new();
            let mut top_assigned: BTreeSet<VarId> = BTreeSet::new();
            let mut nested_assigned: BTreeSet<VarId> = BTreeSet::new();
            let mut loop_bound: BTreeSet<VarId> = k.loops.iter().map(|lp| lp.var).collect();
            for s in &body.0 {
                match s {
                    Stmt::Let { var, .. } => {
                        top_lets.insert(*var);
                    }
                    Stmt::Assign { var, .. } => {
                        top_assigned.insert(*var);
                    }
                    _ => {}
                }
                s.walk(&mut |n| match n {
                    Stmt::Let { var, .. } => {
                        *let_count.entry(*var).or_insert(0) += 1;
                    }
                    Stmt::For { var, body, .. } => {
                        loop_bound.insert(*var);
                        nested_assigned.extend(assigned_vars(body));
                    }
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        nested_assigned.extend(assigned_vars(then_blk));
                        nested_assigned.extend(assigned_vars(else_blk));
                    }
                    _ => {}
                });
            }
            let candidates: BTreeSet<VarId> = top_assigned
                .iter()
                .copied()
                .filter(|v| {
                    top_lets.contains(v)
                        && let_count.get(v) == Some(&1)
                        && !nested_assigned.contains(v)
                        && !loop_bound.contains(v)
                })
                .collect();
            if candidates.is_empty() {
                return;
            }

            // Rewrite the top level, tracking the freshest name of
            // each candidate and a kind environment that mirrors the
            // retraction rules of `simplify_stmt`.
            let mut cur: BTreeMap<VarId, VarId> = BTreeMap::new();
            let mut new_locals: Vec<(VarId, paccport_ir::Scalar)> = Vec::new();
            let stmts = std::mem::take(&mut body.0);
            let mut out: Vec<Stmt> = Vec::with_capacity(stmts.len());
            for s in stmts {
                // Rename candidate reads to their freshest binding.
                let mut s = s;
                for (v, nv) in &cur {
                    if nv != v {
                        s = s.subst_var(*v, &Expr::Var(*nv));
                    }
                }
                match &s {
                    Stmt::Let { var, ty, .. } => {
                        env.set_var_scalar(*var, *ty);
                        if candidates.contains(var) {
                            cur.insert(*var, *var);
                        }
                        out.push(s);
                    }
                    Stmt::Assign { var, value } => {
                        let kind = value_kind(value, &env);
                        if let (true, true, Some(kd)) =
                            (candidates.contains(var), cur.contains_key(var), kind)
                        {
                            let ty = identity_scalar(kd);
                            let hint = hints
                                .get(var.0 as usize)
                                .map(|n| format!("{n}_ssa"))
                                .unwrap_or_else(|| "ssa".into());
                            let nv = va.fresh(&hint);
                            env.set_var_scalar(nv, ty);
                            cur.insert(*var, nv);
                            new_locals.push((nv, ty));
                            out.push(Stmt::Let {
                                var: nv,
                                ty,
                                init: value.clone(),
                            });
                            changed = true;
                        } else {
                            match kind {
                                Some(kd) => env.set_var(*var, kd),
                                None => env.remove_var(*var),
                            }
                            // A kept Assign re-synchronizes the
                            // original slot; later reads may use it.
                            if candidates.contains(var) {
                                cur.insert(*var, *var);
                            }
                            out.push(s);
                        }
                    }
                    Stmt::If {
                        then_blk, else_blk, ..
                    } => {
                        for v in assigned_vars(then_blk).union(&assigned_vars(else_blk)) {
                            env.remove_var(*v);
                        }
                        for v in let_vars(then_blk).union(&let_vars(else_blk)) {
                            env.remove_var(*v);
                        }
                        out.push(s);
                    }
                    Stmt::For { var, body: fb, .. } => {
                        env.set_var(*var, ValueKind::Int);
                        for v in assigned_vars(fb).union(&let_vars(fb)) {
                            env.remove_var(*v);
                        }
                        out.push(s);
                    }
                    _ => out.push(s),
                }
            }
            body.0 = out;
            k.locals.extend(new_locals);
        });
    }
    p.var_names = names;
    changed
}
