//! Constant propagation + folding.
//!
//! Propagates `Let`-bound constants into the expressions that read
//! them, then reruns the bitwise-exact folder from
//! `paccport_ir::simplify` to collapse the newly constant subtrees.
//!
//! Propagation is only performed for variables whose runtime value is
//! *fully determined* by a single textual `Let`: variables that are
//! ever `Assign`ed, or that have more than one `Let` anywhere in the
//! kernel (shadowing re-declarations write the same underlying slot,
//! so a later read may observe either binding depending on control
//! flow), are never propagated. The propagated constant is the
//! *coerced* value — `Let` coerces its initializer through the
//! declared type, so `let x: f32 = 0.1` propagates the f64 value
//! `(0.1f32) as f64`, not `0.1`.

use super::util::{assigned_vars, kernel_blocks, kernel_blocks_mut};
use paccport_ir::{simplify_kernel_in, Expr, KindEnv, Program, Scalar, Stmt, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// The value a `Let { ty, init }` binds when `init` is a literal, as
/// a literal — mirrors `coerce` in the reference interpreter. `None`
/// when the coercion is not representable as an IR literal of
/// identical runtime behavior.
fn coerced_const(init: &Expr, ty: Scalar) -> Option<Expr> {
    match (init, ty) {
        (Expr::IConst(v), Scalar::I32 | Scalar::U32) => Some(Expr::IConst(*v)),
        (Expr::IConst(v), Scalar::F32) => Some(Expr::FConst(((*v as f64) as f32) as f64)),
        (Expr::IConst(v), Scalar::F64) => Some(Expr::FConst(*v as f64)),
        (Expr::FConst(v), Scalar::F32) => Some(Expr::FConst((*v as f32) as f64)),
        (Expr::FConst(v), Scalar::F64) => Some(Expr::FConst(*v)),
        (Expr::BConst(v), Scalar::Bool) => Some(Expr::BConst(*v)),
        _ => None,
    }
}

fn fold_stmts(stmts: &mut [Stmt], consts: &BTreeMap<VarId, Expr>, distrusted: &BTreeSet<VarId>) {
    let mut map = consts.clone();
    for s in stmts.iter_mut() {
        for (v, c) in &map {
            *s = s.subst_var(*v, c);
        }
        match s {
            Stmt::Let { var, ty, init } => {
                if distrusted.contains(var) {
                    map.remove(var);
                } else {
                    match coerced_const(init, *ty) {
                        Some(c) => {
                            map.insert(*var, c);
                        }
                        None => {
                            map.remove(var);
                        }
                    }
                }
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                fold_stmts(&mut then_blk.0, &map, distrusted);
                fold_stmts(&mut else_blk.0, &map, distrusted);
            }
            Stmt::For { body, .. } => {
                // The loop variable is never in the map (it has no
                // `Let`), and body-local bindings cannot leak out:
                // a single-`Let` variable scoped to the body is
                // unreadable after the loop, and multi-`Let`
                // variables are distrusted.
                fold_stmts(&mut body.0, &map, distrusted);
            }
            _ => {}
        }
    }
}

pub fn run(p: &mut Program) -> bool {
    let program_env = KindEnv::for_program(p);
    let mut changed = false;
    p.map_kernels(|k| {
        // Debug strings are a NaN-proof, deterministic change
        // detector (`PartialEq` on NaN would report a change
        // forever and spin the pipeline to its sweep cap).
        let before = format!("{k:?}");
        let mut distrusted: BTreeSet<VarId> = BTreeSet::new();
        let mut let_count: BTreeMap<VarId, usize> = BTreeMap::new();
        for b in kernel_blocks(k) {
            distrusted.extend(assigned_vars(b));
            b.walk(&mut |s| {
                if let Stmt::Let { var, .. } = s {
                    *let_count.entry(*var).or_insert(0) += 1;
                }
            });
        }
        for (v, n) in &let_count {
            if *n > 1 {
                distrusted.insert(*v);
            }
        }
        if let Some(r) = &k.reduction {
            // The accumulator is rebound by the engine per iteration.
            distrusted.insert(r.acc);
        }
        for b in kernel_blocks_mut(k) {
            fold_stmts(&mut b.0, &BTreeMap::new(), &distrusted);
        }
        simplify_kernel_in(k, &program_env);
        if format!("{k:?}") != before {
            changed = true;
        }
    });
    changed
}
