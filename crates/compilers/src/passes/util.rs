//! Shared analyses for the middle-end passes.
//!
//! Every helper here errs on the side of *refusing*: the passes must
//! preserve bit-exact observable behavior under the differential
//! conformance oracle, including trap behavior (integer overflow
//! debug-panics, division by zero, out-of-range shifts), so any
//! question a pass cannot answer precisely is answered "no".

use paccport_ir::{
    value_kind, Block, Expr, Kernel, KernelBody, KindEnv, Scalar, Stmt, UnOp, ValueKind, VarId,
};
use std::collections::BTreeSet;

/// All variables written by a `Stmt::Assign` anywhere in the block,
/// nested statements included.
pub fn assigned_vars(b: &Block) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    b.walk(&mut |s| {
        if let Stmt::Assign { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

/// All variables declared by a `Stmt::Let` anywhere in the block,
/// nested statements included.
pub fn let_vars(b: &Block) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    b.walk(&mut |s| {
        if let Stmt::Let { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

/// All variables bound by a sequential `For` loop anywhere in the
/// block, nested statements included.
pub fn for_vars(b: &Block) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    b.walk(&mut |s| {
        if let Stmt::For { var, .. } = s {
            out.insert(*var);
        }
    });
    out
}

/// Every variable the expression mentions.
pub fn expr_vars(e: &Expr) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    e.walk(&mut |e| {
        if let Expr::Var(v) = e {
            out.insert(*v);
        }
    });
    out
}

/// Does the expression contain a `Load` (of any memory space)?
pub fn has_load(e: &Expr) -> bool {
    let mut found = false;
    e.walk(&mut |e| {
        if matches!(e, Expr::Load { .. }) {
            found = true;
        }
    });
    found
}

/// The body blocks of a kernel: the simple body, or every grouped
/// phase.
pub fn kernel_blocks(k: &Kernel) -> Vec<&Block> {
    match &k.body {
        KernelBody::Simple(b) => vec![b],
        KernelBody::Grouped(g) => g.phases.iter().collect(),
    }
}

/// Mutable view of [`kernel_blocks`].
pub fn kernel_blocks_mut(k: &mut Kernel) -> Vec<&mut Block> {
    match &mut k.body {
        KernelBody::Simple(b) => vec![b],
        KernelBody::Grouped(g) => g.phases.iter_mut().collect(),
    }
}

/// A kind environment valid at *every* point of the kernel: program
/// parameters, `Let`-declared locals that are never reassigned (their
/// declared type then fixes their runtime kind for good, because `Let`
/// coerces), and loop variables (always integers). Reassigned locals
/// are left unknown — `Assign` does not coerce, so their declared type
/// says nothing about their runtime kind.
pub fn kind_env_for_kernel(program_env: &KindEnv, k: &Kernel) -> KindEnv {
    let mut env = program_env.clone();
    let mut assigned = BTreeSet::new();
    let mut seen: std::collections::BTreeMap<VarId, Scalar> = Default::default();
    for b in kernel_blocks(k) {
        assigned.extend(assigned_vars(b));
    }
    for b in kernel_blocks(k) {
        b.walk(&mut |s| {
            if let Stmt::Let { var, ty, .. } = s {
                match seen.get(var) {
                    // Two Lets with conflicting types (possible after
                    // unrolling rewrites): trust neither.
                    Some(prev) if prev != ty => {
                        env.remove_var(*var);
                        assigned.insert(*var);
                    }
                    _ => {
                        seen.insert(*var, *ty);
                        if !assigned.contains(var) {
                            env.set_var_scalar(*var, *ty);
                        }
                    }
                }
            }
        });
    }
    for v in &assigned {
        env.remove_var(*v);
    }
    for lp in &k.loops {
        env.set_var(lp.var, ValueKind::Int);
    }
    for b in kernel_blocks(k) {
        for v in for_vars(b) {
            env.set_var(v, ValueKind::Int);
        }
    }
    env
}

/// Can evaluating `e` ever trap or panic, in any build profile, for
/// any operand values consistent with `env`? Integer `add`/`sub`/
/// `mul`/`neg`/`abs` debug-panic on overflow, integer `div`/`rem` trap
/// on zero and `i64::MIN / -1`, and shifts trap outside `0..64`, so
/// an integer-kind arithmetic node is only safe when the kind analysis
/// proves the float path is taken. Loads are rejected outright (they
/// depend on memory, and the caller is about to move the evaluation).
pub fn never_traps(e: &Expr, env: &KindEnv) -> bool {
    match e {
        Expr::FConst(_)
        | Expr::IConst(_)
        | Expr::BConst(_)
        | Expr::Param(_)
        | Expr::Var(_)
        | Expr::Special(_) => true,
        Expr::Load { .. } => false,
        Expr::Un(op, a) => {
            never_traps(a, env)
                && match op {
                    UnOp::Not | UnOp::Rcp | UnOp::Sqrt | UnOp::Exp => true,
                    // `neg`/`abs` follow the operand's kind; only the
                    // float (and bool-as-float) paths are total.
                    UnOp::Neg | UnOp::Abs => matches!(
                        value_kind(a, env),
                        Some(ValueKind::Float) | Some(ValueKind::Bool)
                    ),
                }
        }
        Expr::Bin(op, a, b) => {
            never_traps(a, env)
                && never_traps(b, env)
                && match op {
                    paccport_ir::BinOp::And
                    | paccport_ir::BinOp::Or
                    | paccport_ir::BinOp::Min
                    | paccport_ir::BinOp::Max => true,
                    paccport_ir::BinOp::Add
                    | paccport_ir::BinOp::Sub
                    | paccport_ir::BinOp::Mul
                    | paccport_ir::BinOp::Div
                    | paccport_ir::BinOp::Rem => value_kind(e, env) == Some(ValueKind::Float),
                    paccport_ir::BinOp::Shl | paccport_ir::BinOp::Shr => false,
                }
        }
        Expr::Cmp(_, a, b) => never_traps(a, env) && never_traps(b, env),
        Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
            never_traps(a, env) && never_traps(b, env) && never_traps(c, env)
        }
        Expr::Cast(_, a) => never_traps(a, env),
    }
}

/// The `Scalar` type whose `Let` coercion is the identity on values of
/// `kind` — so binding a value of that kind with this declared type
/// reproduces it bit for bit (`I32` does not mask integers, `F64` does
/// not narrow floats).
pub fn identity_scalar(kind: ValueKind) -> Scalar {
    match kind {
        ValueKind::Int => Scalar::I32,
        ValueKind::Float => Scalar::F64,
        ValueKind::Bool => Scalar::Bool,
    }
}

/// Structural replacement of every occurrence of `target` (compared
/// with derived `PartialEq`, so NaN-containing trees never match —
/// a sound refusal) by `with`.
pub fn replace_expr(e: &Expr, target: &Expr, with: &Expr) -> Expr {
    if e == target {
        return with.clone();
    }
    match e {
        Expr::FConst(_)
        | Expr::IConst(_)
        | Expr::BConst(_)
        | Expr::Param(_)
        | Expr::Var(_)
        | Expr::Special(_) => e.clone(),
        Expr::Load {
            space,
            array,
            index,
        } => Expr::Load {
            space: *space,
            array: *array,
            index: Box::new(replace_expr(index, target, with)),
        },
        Expr::Un(op, a) => Expr::un(*op, replace_expr(a, target, with)),
        Expr::Cast(t, a) => Expr::cast(*t, replace_expr(a, target, with)),
        Expr::Bin(op, a, b) => Expr::bin(
            *op,
            replace_expr(a, target, with),
            replace_expr(b, target, with),
        ),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            replace_expr(a, target, with),
            replace_expr(b, target, with),
        ),
        Expr::Fma(a, b, c) => Expr::fma(
            replace_expr(a, target, with),
            replace_expr(b, target, with),
            replace_expr(c, target, with),
        ),
        Expr::Select(a, b, c) => Expr::select(
            replace_expr(a, target, with),
            replace_expr(b, target, with),
            replace_expr(c, target, with),
        ),
    }
}

/// Count occurrences of `target` in `e` (structural equality).
pub fn count_expr(e: &Expr, target: &Expr) -> usize {
    let mut n = 0;
    e.walk(&mut |sub| {
        if sub == target {
            n += 1;
        }
    });
    n
}

/// Variables (re)defined by this statement, *including* nested ones:
/// `Assign` targets, `Let` bindings and `For` loop variables. Used by
/// CSE to invalidate availability after a statement executes.
pub fn defs_of(s: &Stmt) -> BTreeSet<VarId> {
    let mut out = BTreeSet::new();
    s.walk(&mut |s| match s {
        Stmt::Assign { var, .. } | Stmt::Let { var, .. } | Stmt::For { var, .. } => {
            out.insert(*var);
        }
        _ => {}
    });
    out
}
