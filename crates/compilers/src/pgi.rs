//! The PGI 14.9 personality.
//!
//! PGI compiles OpenACC straight to CUDA for NVIDIA GPUs only (no MIC
//! target — one of the portability gaps the paper works around).
//! Reconstructed behaviours:
//!
//! * **automatic parallelization** — kernels with affine rank-1 nests
//!   or rectangular rank-2 nests are auto-distributed `[128,1]` even
//!   without `independent`; triangular rank-2 nests are kept
//!   sequential until `independent` is added (the GE baseline's `1x1`);
//! * **conservatism** — kernels with indirect accesses or
//!   loop-invariant stores are *never offloaded*, even with
//!   `independent` (the BFS discovery via `PGI_ACC_TIME`);
//! * **locked distribution** — once `independent` is present, explicit
//!   gang/worker clauses are ignored;
//! * **`-Munroll`** — unrolls serialized loops without scalar
//!   accumulation by 2 (GE's arithmetic nearly doubles; LUD unchanged);
//! * **no tiling**, and **pointer-aliasing sensitivity** that rejects
//!   Hydro outright.

use crate::artifact::{
    CompileError, CompiledProgram, Correctness, DistSpec, ExecStrategy, TransferPolicy,
};
use crate::common::{
    assemble, has_indirect_access, has_invariant_store, rectangular_bounds, KernelDecision,
};
use crate::lower::LoweringStyle;
use crate::options::{CompileOptions, CompilerId, DeviceKind};
use crate::transforms::{
    reduction_to_grouped, serialize_inner_loops, unroll_inner_loops_filtered, VarAlloc,
};
use paccport_ir::kernel::KernelBody;
use paccport_ir::Program;
use std::collections::BTreeMap;

const PGI_VECTOR: u32 = 128;

/// Compile a program with the PGI personality.
pub fn compile(
    program: &Program,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let site = format!("{}:{}", CompilerId::Pgi.label(), program.name);
    if paccport_faults::inject(paccport_faults::FaultKind::CompileFail, &site) {
        return Err(CompileError {
            compiler: CompilerId::Pgi,
            message: format!(
                "{} simulated toolchain crash compiling `{}`",
                paccport_faults::INJECTED,
                program.name
            ),
        });
    }
    paccport_faults::maybe_slow_compile(&site);
    if options.target == DeviceKind::Mic5110P {
        return Err(CompileError {
            compiler: CompilerId::Pgi,
            message: "PGI 14.9 cannot target Intel MIC (it \"likely plans to support MIC in the future\")".into(),
        });
    }
    if options.quirks.pgi_pointer_alias_sensitivity
        && program.tags.iter().any(|t| t == "pointer-heavy-headers")
    {
        return Err(CompileError {
            compiler: CompilerId::Pgi,
            message:
                "cannot compile: PGI is sensitive to the pointer allocations and conversions in this source"
                    .into(),
        });
    }

    let q = options.quirks.clone();
    let mut prog = program.clone();

    // ---------------- Pass A: decisions on the original kernels -----
    let mut decisions: BTreeMap<String, KernelDecision> = BTreeMap::new();
    for k in prog.kernels() {
        let mut diags = Vec::new();
        let d = if k.reduction.is_some() {
            diags.push("reduction generated using shared memory".into());
            KernelDecision {
                dist: DistSpec::GroupedPerIter { group_size: 128 },
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else if (has_indirect_access(k) || has_invariant_store(k))
            && q.pgi_conservative_indirection
        {
            if k.any_independent() {
                diags.push(
                    "loop carried dependence of indirect accesses prevents parallelization \
                     (independent clause ignored)"
                        .into(),
                );
            } else {
                diags.push("complex loop carried dependence prevents parallelization".into());
            }
            diags.push("accelerator kernel NOT generated; running on host".into());
            KernelDecision {
                dist: DistSpec::Sequential,
                exec: ExecStrategy::HostSequential,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else if k.any_independent() {
            let explicit = k
                .loops
                .iter()
                .find(|l| l.clauses.has_explicit_distribution());
            if let Some(lp) = explicit {
                if q.pgi_locks_distribution {
                    diags.push(
                        "gang/worker clauses ignored: schedule is fixed once independent is given"
                            .into(),
                    );
                } else {
                    // A lock-free (hypothetical) PGI honours the
                    // request — the ablation case.
                    let gang = lp.clauses.gang.unwrap_or(PGI_VECTOR);
                    let worker = lp.clauses.worker.or(lp.clauses.vector).unwrap_or(1);
                    diags.push(format!("loop gang({gang}), vector({worker})"));
                    decisions.insert(
                        k.name.clone(),
                        KernelDecision {
                            dist: DistSpec::GangWorker { gang, worker },
                            exec: ExecStrategy::DeviceParallel,
                            correctness: Correctness::Correct,
                            perf_penalty: 1.0,
                            diagnostics: diags,
                        },
                    );
                    continue;
                }
            }
            diags.push(format!(
                "loop gang, vector({PGI_VECTOR}) /* blockIdx.x threadIdx.x */"
            ));
            KernelDecision {
                dist: DistSpec::PgiAuto { vector: PGI_VECTOR },
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else if let Some(lp) = k
            .loops
            .iter()
            .find(|l| l.clauses.has_explicit_distribution())
        {
            // Without `independent`, PGI honours the explicit request.
            let gang = lp.clauses.gang.unwrap_or(PGI_VECTOR);
            let worker = lp.clauses.worker.or(lp.clauses.vector).unwrap_or(1);
            diags.push(format!("loop gang({gang}), vector({worker})"));
            KernelDecision {
                dist: DistSpec::GangWorker { gang, worker },
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else if k.rank() == 1 || rectangular_bounds(k) {
            diags.push(format!(
                "loop auto-parallelized: gang, vector({PGI_VECTOR})"
            ));
            KernelDecision {
                dist: DistSpec::PgiAuto { vector: PGI_VECTOR },
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else {
            diags.push(
                "loop not auto-parallelized: triangular bounds in a multi-dimensional nest".into(),
            );
            KernelDecision {
                dist: DistSpec::Sequential,
                exec: ExecStrategy::DeviceSequential,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        };
        decisions.insert(k.name.clone(), d);
    }

    // ---------------- Pass B: transforms matching the decisions -----
    let munroll = options.munroll();
    let kinds = paccport_ir::KindEnv::for_program(&prog);
    let mut names = std::mem::take(&mut prog.var_names);
    {
        let mut va = VarAlloc::new(&mut names);
        prog.map_kernels(|k| {
            let decision = &decisions[&k.name];
            if k.reduction.is_some() {
                reduction_to_grouped(k, 128, &mut va);
                return;
            }
            // Make PGI's one-dimensional serialization explicit.
            if matches!(decision.dist, DistSpec::PgiAuto { .. }) && k.rank() > 1 {
                serialize_inner_loops(k, 1);
            }
            if munroll && matches!(k.body, KernelBody::Simple(_)) {
                unroll_inner_loops_filtered(k, 2, true, &kinds);
            }
        });
    }
    prog.var_names = names;

    let style = LoweringStyle {
        fastmath: options.has_flag(&crate::options::Flag::Fast),
        ..LoweringStyle::pgi()
    };
    let decide = move |k: &paccport_ir::Kernel| -> KernelDecision {
        let d = &decisions[&k.name];
        KernelDecision {
            dist: d.dist,
            exec: d.exec,
            correctness: d.correctness.clone(),
            perf_penalty: d.perf_penalty,
            diagnostics: d.diagnostics.clone(),
        }
    };

    Ok(assemble(
        CompilerId::Pgi,
        options,
        prog,
        &style,
        decide,
        TransferPolicy::Resident,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
    };

    #[test]
    fn mic_target_is_rejected() {
        let b = ProgramBuilder::new("p");
        let p = b.finish(vec![]);
        let err = compile(&p, &CompileOptions::mic()).unwrap_err();
        assert!(err.message.contains("MIC"));
    }

    #[test]
    fn pointer_heavy_sources_are_rejected() {
        let mut b = ProgramBuilder::new("hydro");
        b.tag("pointer-heavy-headers");
        let p = b.finish(vec![]);
        let err = compile(&p, &CompileOptions::gpu()).unwrap_err();
        assert!(err.message.contains("pointer"));
    }

    fn rank2_triangular() -> Program {
        // GE Fan2-like: for i in t+1..n, for j in t+1..n.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let t = b.iparam("t"); // stand-in for the host var
        let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        // Make it *triangular* through a var-dependent bound: lo uses i.
        let k = Kernel::simple(
            "fan2",
            vec![
                ParallelLoop::new(i, (E::from(t) + 1i64).expr(), Expr::param(n)),
                ParallelLoop::new(j, (E::from(i) * 0i64).expr(), Expr::param(n)),
            ],
            paccport_ir::Block::new(vec![st(
                a,
                E::from(i) * n + j,
                ld(a, E::from(i) * n + j) + 1.0,
            )]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn triangular_rank2_is_sequential_until_independent() {
        let p = rank2_triangular();
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        assert_eq!(c.plan("fan2").unwrap().exec, ExecStrategy::DeviceSequential);
        assert_eq!(c.plan("fan2").unwrap().config_label, "1x1");

        let mut p2 = p.clone();
        p2.map_kernel("fan2", |k| k.loops[0].clauses.independent = true);
        let c2 = compile(&p2, &CompileOptions::gpu()).unwrap();
        let plan = c2.plan("fan2").unwrap();
        assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
        assert_eq!(plan.config_label, "128x1");
        // The inner loop was serialized into the body.
        assert_eq!(c2.program.kernel("fan2").unwrap().rank(), 1);
    }

    #[test]
    fn locked_distribution_once_independent() {
        let mut p = rank2_triangular();
        p.map_kernel("fan2", |k| {
            k.loops[0].clauses.independent = true;
            k.loops[0].clauses.gang = Some(999);
            k.loops[0].clauses.worker = Some(7);
        });
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        // Still 128x1, and a diagnostic explains why.
        assert_eq!(c.plan("fan2").unwrap().config_label, "128x1");
        assert!(c.diagnostics.iter().any(|d| d.message.contains("ignored")));
    }

    #[test]
    fn indirect_kernels_never_reach_the_gpu() {
        let mut b = ProgramBuilder::new("bfs");
        let n = b.iparam("n");
        let edges = b.array("edges", Scalar::I32, n, Intent::In);
        let cost = b.array("cost", Scalar::I32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "k1",
            vec![lp],
            paccport_ir::Block::new(vec![st(cost, ld(edges, i), 1i64)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k1").unwrap();
        assert_eq!(plan.exec, ExecStrategy::HostSequential);
        // The PTX stub is tiny — the paper's "few PTX instructions".
        assert!(c.module.kernel("k1_kernel").unwrap().len() <= 6);
        assert!(c
            .diagnostics
            .iter()
            .any(|d| d.message.contains("running on host")));
    }

    #[test]
    fn munroll_doubles_flat_serialized_loops_only() {
        use paccport_ir::{assign, for_, let_};
        // Kernel A: inner loop without accumulation (unrollable).
        // Kernel B: inner loop with accumulation (skipped).
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
        let i = b.var("i");
        let jv = b.var("j");
        let kv = b.var("k2");
        let s = b.var("s");
        let ka = Kernel::simple(
            "flat",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![for_(
                jv,
                0i64,
                E::from(n),
                vec![st(a, E::from(i) * n + jv, 1.0)],
            )]),
        );
        let kb = Kernel::simple(
            "accum",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![
                let_(s, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(s, E::from(s) + ld(a, E::from(i) * n + kv))],
                ),
                st(a, i, E::from(s)),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(ka), HostStmt::Launch(kb)]);

        let base = compile(&p, &CompileOptions::gpu()).unwrap();
        let unrolled = compile(
            &p,
            &CompileOptions::gpu().with_flag(crate::options::Flag::Munroll),
        )
        .unwrap();
        let count = |c: &CompiledProgram, k: &str| c.module.kernel(k).unwrap().len();
        assert!(count(&unrolled, "flat_kernel") > count(&base, "flat_kernel"));
        assert_eq!(
            count(&unrolled, "accum_kernel"),
            count(&base, "accum_kernel")
        );
    }
}
