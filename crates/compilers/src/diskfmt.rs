//! On-disk wire format for compiled artifacts.
//!
//! Serializes a full [`CompiledProgram`] — IR program, PTX module,
//! kernel plans with their nested cost trees, diagnostics, options —
//! as one [`paccport_persist::wire`] token record, suitable for a
//! `BlobStore` entry. The workspace has no serialization framework
//! (serde is a no-op shim), so every type is encoded by hand.
//!
//! Two properties the cache layer depends on:
//!
//! * **Bit-exactness.** Floats travel as `to_bits()` hex, never
//!   through float formatting. (The PTX pretty-printer is lossy —
//!   `ImmF` immediates print at `f32` precision — so a format/parse
//!   round trip would *not* reproduce the artifact; this structural
//!   codec does.)
//! * **Self-verification.** The record embeds
//!   [`artifact_checksum`](crate::cache::artifact_checksum) computed
//!   at encode time, and [`decode_artifact`] recomputes it over the
//!   *decoded* value. Any codec defect, version skew, or corruption
//!   the store's CRC missed therefore surfaces as a decode error —
//!   which the cache treats as a miss and recompiles — never as a
//!   silently wrong artifact.
//!
//! The leading `paccport-artifact <version>` tokens version the
//! format; bump [`VERSION`] on any grammar change and old entries
//! read as absent (a cache miss), which is exactly the right failure
//! mode for a cache.

use paccport_ir::{
    expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp},
    kernel::{
        AccDeviceType, DeviceTypeClause, GroupedBody, Kernel, KernelBody, LaunchHint, LoopClauses,
        ParallelLoop, ReduceOp, Reduction, RegionReduction,
    },
    program::{Dir, HostStmt, Program},
    stmt::{Block, Stmt},
    types::{
        ArrayDecl, ArrayId, Intent, LocalArrayDecl, MemSpace, ParamDecl, ParamId, Scalar, VarId,
    },
};
use paccport_persist::wire::{Reader, Writer};
use paccport_ptx::{
    instr::{Instruction, Item, LabelId, Operand, Reg, SpecialReg},
    isa::{Opcode, PtxType},
    kernel::{PtxKernel, PtxModule},
    CategoryCounts, CATEGORIES,
};

use crate::artifact::{
    CompiledProgram, Correctness, CostNode, CostTree, Diagnostic, DistSpec, ExecStrategy,
    KernelPlan, TransferPolicy,
};
use crate::cache::artifact_checksum;
use crate::options::{
    Backend, CompileOptions, CompilerId, DeviceKind, Flag, HostCompiler, QuirkSet,
};

/// Format name token leading every record.
pub const MAGIC: &str = "paccport-artifact";
/// Format version; bump on any grammar change.
pub const VERSION: u64 = 1;

type R<'a, 'b> = &'a mut Reader<'b>;

// ---------------------------------------------------------------------------
// Generic shapes
// ---------------------------------------------------------------------------

fn enc_vec<T>(w: &mut Writer, items: &[T], mut f: impl FnMut(&mut Writer, &T)) {
    w.u64(items.len() as u64);
    for it in items {
        f(w, it);
    }
}

fn dec_vec<T>(r: R, mut f: impl FnMut(R) -> Result<T, String>) -> Result<Vec<T>, String> {
    let n = r.usize()?;
    // Guard against a corrupt length token allocating gigabytes; real
    // artifacts have at most a few thousand elements per collection.
    if n > 1_000_000 {
        return Err(format!("implausible collection length {n}"));
    }
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(f(r)?);
    }
    Ok(out)
}

fn enc_opt<T>(w: &mut Writer, v: &Option<T>, f: impl FnOnce(&mut Writer, &T)) {
    match v {
        Some(x) => {
            w.word("s");
            f(w, x);
        }
        None => {
            w.word("n");
        }
    }
}

fn dec_opt<T>(r: R, f: impl FnOnce(R) -> Result<T, String>) -> Result<Option<T>, String> {
    match r.word()? {
        "s" => Ok(Some(f(r)?)),
        "n" => Ok(None),
        other => Err(format!("bad option tag `{other}`")),
    }
}

fn dec_u8(r: R) -> Result<u8, String> {
    let v = r.u64()?;
    u8::try_from(v).map_err(|_| format!("bad u8 `{v}`"))
}

// ---------------------------------------------------------------------------
// IR scalars and small enums
// ---------------------------------------------------------------------------

fn enc_scalar(w: &mut Writer, s: Scalar) {
    w.word(match s {
        Scalar::F32 => "f32",
        Scalar::F64 => "f64",
        Scalar::I32 => "i32",
        Scalar::U32 => "u32",
        Scalar::Bool => "bool",
    });
}

fn dec_scalar(r: R) -> Result<Scalar, String> {
    Ok(match r.word()? {
        "f32" => Scalar::F32,
        "f64" => Scalar::F64,
        "i32" => Scalar::I32,
        "u32" => Scalar::U32,
        "bool" => Scalar::Bool,
        other => return Err(format!("bad scalar `{other}`")),
    })
}

fn enc_space(w: &mut Writer, s: MemSpace) {
    w.word(match s {
        MemSpace::Global => "glob",
        MemSpace::Local => "loc",
    });
}

fn dec_space(r: R) -> Result<MemSpace, String> {
    Ok(match r.word()? {
        "glob" => MemSpace::Global,
        "loc" => MemSpace::Local,
        other => return Err(format!("bad memspace `{other}`")),
    })
}

fn enc_intent(w: &mut Writer, i: Intent) {
    w.word(match i {
        Intent::In => "in",
        Intent::Out => "out",
        Intent::InOut => "inout",
        Intent::Scratch => "scratch",
    });
}

fn dec_intent(r: R) -> Result<Intent, String> {
    Ok(match r.word()? {
        "in" => Intent::In,
        "out" => Intent::Out,
        "inout" => Intent::InOut,
        "scratch" => Intent::Scratch,
        other => return Err(format!("bad intent `{other}`")),
    })
}

fn enc_reduce_op(w: &mut Writer, op: ReduceOp) {
    w.word(match op {
        ReduceOp::Add => "add",
        ReduceOp::Max => "max",
        ReduceOp::Min => "min",
    });
}

fn dec_reduce_op(r: R) -> Result<ReduceOp, String> {
    Ok(match r.word()? {
        "add" => ReduceOp::Add,
        "max" => ReduceOp::Max,
        "min" => ReduceOp::Min,
        other => return Err(format!("bad reduce op `{other}`")),
    })
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn un_op_tag(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Abs => "abs",
        UnOp::Rcp => "rcp",
        UnOp::Sqrt => "sqrt",
        UnOp::Not => "not",
        UnOp::Exp => "exp",
    }
}

fn dec_un_op(r: R) -> Result<UnOp, String> {
    Ok(match r.word()? {
        "neg" => UnOp::Neg,
        "abs" => UnOp::Abs,
        "rcp" => UnOp::Rcp,
        "sqrt" => UnOp::Sqrt,
        "not" => UnOp::Not,
        "exp" => UnOp::Exp,
        other => return Err(format!("bad unary op `{other}`")),
    })
}

fn bin_op_tag(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn dec_bin_op(r: R) -> Result<BinOp, String> {
    Ok(match r.word()? {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        other => return Err(format!("bad binary op `{other}`")),
    })
}

fn cmp_op_tag(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn dec_cmp_op(r: R) -> Result<CmpOp, String> {
    Ok(match r.word()? {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => return Err(format!("bad compare op `{other}`")),
    })
}

fn enc_special(w: &mut Writer, s: SpecialVar) {
    match s {
        SpecialVar::LocalId(d) => w.word("lid").u64(d as u64),
        SpecialVar::GroupId(d) => w.word("gid").u64(d as u64),
        SpecialVar::LocalSize(d) => w.word("lsz").u64(d as u64),
        SpecialVar::NumGroups(d) => w.word("ngr").u64(d as u64),
    };
}

fn dec_special(r: R) -> Result<SpecialVar, String> {
    let tag = r.word()?.to_string();
    let d = dec_u8(r)?;
    Ok(match tag.as_str() {
        "lid" => SpecialVar::LocalId(d),
        "gid" => SpecialVar::GroupId(d),
        "lsz" => SpecialVar::LocalSize(d),
        "ngr" => SpecialVar::NumGroups(d),
        other => return Err(format!("bad special var `{other}`")),
    })
}

fn enc_expr(w: &mut Writer, e: &Expr) {
    match e {
        Expr::FConst(v) => {
            w.word("fc").f64(*v);
        }
        Expr::IConst(v) => {
            w.word("ic").i64(*v);
        }
        Expr::BConst(v) => {
            w.word("bc").bool(*v);
        }
        Expr::Param(ParamId(p)) => {
            w.word("par").u64(*p as u64);
        }
        Expr::Var(VarId(v)) => {
            w.word("var").u64(*v as u64);
        }
        Expr::Special(s) => {
            w.word("spec");
            enc_special(w, *s);
        }
        Expr::Load {
            space,
            array,
            index,
        } => {
            w.word("load");
            enc_space(w, *space);
            w.u64(array.0 as u64);
            enc_expr(w, index);
        }
        Expr::Un(op, a) => {
            w.word("un").word(un_op_tag(*op));
            enc_expr(w, a);
        }
        Expr::Bin(op, a, b) => {
            w.word("bin").word(bin_op_tag(*op));
            enc_expr(w, a);
            enc_expr(w, b);
        }
        Expr::Cmp(op, a, b) => {
            w.word("cmp").word(cmp_op_tag(*op));
            enc_expr(w, a);
            enc_expr(w, b);
        }
        Expr::Fma(a, b, c) => {
            w.word("fma");
            enc_expr(w, a);
            enc_expr(w, b);
            enc_expr(w, c);
        }
        Expr::Select(c, a, b) => {
            w.word("sel");
            enc_expr(w, c);
            enc_expr(w, a);
            enc_expr(w, b);
        }
        Expr::Cast(ty, a) => {
            w.word("cast");
            enc_scalar(w, *ty);
            enc_expr(w, a);
        }
    }
}

fn dec_expr(r: R) -> Result<Expr, String> {
    Ok(match r.word()? {
        "fc" => Expr::FConst(r.f64()?),
        "ic" => Expr::IConst(r.i64()?),
        "bc" => Expr::BConst(r.bool()?),
        "par" => Expr::Param(ParamId(r.u32()?)),
        "var" => Expr::Var(VarId(r.u32()?)),
        "spec" => Expr::Special(dec_special(r)?),
        "load" => Expr::Load {
            space: dec_space(r)?,
            array: ArrayId(r.u32()?),
            index: Box::new(dec_expr(r)?),
        },
        "un" => Expr::Un(dec_un_op(r)?, Box::new(dec_expr(r)?)),
        "bin" => Expr::Bin(
            dec_bin_op(r)?,
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
        ),
        "cmp" => Expr::Cmp(
            dec_cmp_op(r)?,
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
        ),
        "fma" => Expr::Fma(
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
        ),
        "sel" => Expr::Select(
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
            Box::new(dec_expr(r)?),
        ),
        "cast" => Expr::Cast(dec_scalar(r)?, Box::new(dec_expr(r)?)),
        other => return Err(format!("bad expr tag `{other}`")),
    })
}

// ---------------------------------------------------------------------------
// Statements and blocks
// ---------------------------------------------------------------------------

fn enc_stmt(w: &mut Writer, s: &Stmt) {
    match s {
        Stmt::Let { var, ty, init } => {
            w.word("let").u64(var.0 as u64);
            enc_scalar(w, *ty);
            enc_expr(w, init);
        }
        Stmt::Assign { var, value } => {
            w.word("asg").u64(var.0 as u64);
            enc_expr(w, value);
        }
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => {
            w.word("st");
            enc_space(w, *space);
            w.u64(array.0 as u64);
            enc_expr(w, index);
            enc_expr(w, value);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            w.word("if");
            enc_expr(w, cond);
            enc_block(w, then_blk);
            enc_block(w, else_blk);
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            w.word("for").u64(var.0 as u64);
            enc_expr(w, lo);
            enc_expr(w, hi);
            w.i64(*step);
            enc_block(w, body);
        }
        Stmt::Barrier => {
            w.word("bar");
        }
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => {
            w.word("atom");
            enc_reduce_op(w, *op);
            w.u64(array.0 as u64);
            enc_expr(w, index);
            enc_expr(w, value);
        }
    }
}

fn dec_stmt(r: R) -> Result<Stmt, String> {
    Ok(match r.word()? {
        "let" => Stmt::Let {
            var: VarId(r.u32()?),
            ty: dec_scalar(r)?,
            init: dec_expr(r)?,
        },
        "asg" => Stmt::Assign {
            var: VarId(r.u32()?),
            value: dec_expr(r)?,
        },
        "st" => Stmt::Store {
            space: dec_space(r)?,
            array: ArrayId(r.u32()?),
            index: dec_expr(r)?,
            value: dec_expr(r)?,
        },
        "if" => Stmt::If {
            cond: dec_expr(r)?,
            then_blk: dec_block(r)?,
            else_blk: dec_block(r)?,
        },
        "for" => Stmt::For {
            var: VarId(r.u32()?),
            lo: dec_expr(r)?,
            hi: dec_expr(r)?,
            step: r.i64()?,
            body: dec_block(r)?,
        },
        "bar" => Stmt::Barrier,
        "atom" => Stmt::Atomic {
            op: dec_reduce_op(r)?,
            array: ArrayId(r.u32()?),
            index: dec_expr(r)?,
            value: dec_expr(r)?,
        },
        other => return Err(format!("bad stmt tag `{other}`")),
    })
}

fn enc_block(w: &mut Writer, b: &Block) {
    enc_vec(w, &b.0, enc_stmt);
}

fn dec_block(r: R) -> Result<Block, String> {
    Ok(Block(dec_vec(r, dec_stmt)?))
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

fn enc_device_type(w: &mut Writer, d: AccDeviceType) {
    w.word(match d {
        AccDeviceType::Nvidia => "nvidia",
        AccDeviceType::Radeon => "radeon",
        AccDeviceType::XeonPhi => "xeonphi",
    });
}

fn dec_device_type(r: R) -> Result<AccDeviceType, String> {
    Ok(match r.word()? {
        "nvidia" => AccDeviceType::Nvidia,
        "radeon" => AccDeviceType::Radeon,
        "xeonphi" => AccDeviceType::XeonPhi,
        other => return Err(format!("bad device type `{other}`")),
    })
}

fn enc_opt_u32(w: &mut Writer, v: &Option<u32>) {
    enc_opt(w, v, |w, x| {
        w.u64(*x as u64);
    });
}

fn dec_opt_u32(r: R) -> Result<Option<u32>, String> {
    dec_opt(r, |r| r.u32())
}

fn enc_clauses(w: &mut Writer, c: &LoopClauses) {
    w.bool(c.independent);
    enc_opt_u32(w, &c.gang);
    enc_opt_u32(w, &c.worker);
    enc_opt_u32(w, &c.vector);
    enc_opt_u32(w, &c.tile);
    enc_opt_u32(w, &c.unroll_jam);
    enc_vec(w, &c.device_overrides, |w, o| {
        enc_device_type(w, o.device);
        enc_opt_u32(w, &o.gang);
        enc_opt_u32(w, &o.worker);
        enc_opt_u32(w, &o.vector);
    });
}

fn dec_clauses(r: R) -> Result<LoopClauses, String> {
    Ok(LoopClauses {
        independent: r.bool()?,
        gang: dec_opt_u32(r)?,
        worker: dec_opt_u32(r)?,
        vector: dec_opt_u32(r)?,
        tile: dec_opt_u32(r)?,
        unroll_jam: dec_opt_u32(r)?,
        device_overrides: dec_vec(r, |r| {
            Ok(DeviceTypeClause {
                device: dec_device_type(r)?,
                gang: dec_opt_u32(r)?,
                worker: dec_opt_u32(r)?,
                vector: dec_opt_u32(r)?,
            })
        })?,
    })
}

fn enc_local_array(w: &mut Writer, d: &LocalArrayDecl) {
    w.str(&d.name);
    enc_scalar(w, d.elem);
    w.u64(d.len as u64);
}

fn dec_local_array(r: R) -> Result<LocalArrayDecl, String> {
    Ok(LocalArrayDecl {
        name: r.str()?,
        elem: dec_scalar(r)?,
        len: r.usize()?,
    })
}

fn enc_kernel(w: &mut Writer, k: &Kernel) {
    w.str(&k.name);
    enc_vec(w, &k.loops, |w, pl| {
        w.u64(pl.var.0 as u64);
        enc_expr(w, &pl.lo);
        enc_expr(w, &pl.hi);
        enc_clauses(w, &pl.clauses);
    });
    match &k.body {
        KernelBody::Simple(b) => {
            w.word("simple");
            enc_block(w, b);
        }
        KernelBody::Grouped(g) => {
            w.word("grouped").u64(g.group_size as u64);
            enc_vec(w, &g.locals, enc_local_array);
            enc_vec(w, &g.phases, enc_block);
        }
    }
    enc_vec(w, &k.locals, |w, (v, ty)| {
        w.u64(v.0 as u64);
        enc_scalar(w, *ty);
    });
    enc_opt(w, &k.region_reduction, |w, rr| {
        enc_reduce_op(w, rr.op);
        enc_expr(w, &rr.value);
        w.u64(rr.dest.0 as u64);
    });
    enc_opt(w, &k.reduction, |w, red| {
        enc_reduce_op(w, red.op);
        w.u64(red.acc.0 as u64);
    });
    enc_opt(w, &k.launch_hint, |w, h| {
        w.u64(h.local.0 as u64)
            .u64(h.local.1 as u64)
            .bool(h.two_d)
            .bool(h.group_per_iter);
    });
}

fn dec_kernel(r: R) -> Result<Kernel, String> {
    let name = r.str()?;
    let loops = dec_vec(r, |r| {
        Ok(ParallelLoop {
            var: VarId(r.u32()?),
            lo: dec_expr(r)?,
            hi: dec_expr(r)?,
            clauses: dec_clauses(r)?,
        })
    })?;
    let body = match r.word()? {
        "simple" => KernelBody::Simple(dec_block(r)?),
        "grouped" => KernelBody::Grouped(GroupedBody {
            group_size: r.u32()?,
            locals: dec_vec(r, dec_local_array)?,
            phases: dec_vec(r, dec_block)?,
        }),
        other => return Err(format!("bad kernel body tag `{other}`")),
    };
    let locals = dec_vec(r, |r| Ok((VarId(r.u32()?), dec_scalar(r)?)))?;
    let region_reduction = dec_opt(r, |r| {
        Ok(RegionReduction {
            op: dec_reduce_op(r)?,
            value: dec_expr(r)?,
            dest: ArrayId(r.u32()?),
        })
    })?;
    let reduction = dec_opt(r, |r| {
        Ok(Reduction {
            op: dec_reduce_op(r)?,
            acc: VarId(r.u32()?),
        })
    })?;
    let launch_hint = dec_opt(r, |r| {
        Ok(LaunchHint {
            local: (r.u32()?, r.u32()?),
            two_d: r.bool()?,
            group_per_iter: r.bool()?,
        })
    })?;
    Ok(Kernel {
        name,
        loops,
        body,
        locals,
        region_reduction,
        reduction,
        launch_hint,
    })
}

// ---------------------------------------------------------------------------
// Host statements and programs
// ---------------------------------------------------------------------------

fn enc_host_stmt(w: &mut Writer, s: &HostStmt) {
    match s {
        HostStmt::DataRegion { arrays, body } => {
            w.word("data");
            enc_vec(w, arrays, |w, a| {
                w.u64(a.0 as u64);
            });
            enc_vec(w, body, enc_host_stmt);
        }
        HostStmt::Launch(k) => {
            w.word("launch");
            enc_kernel(w, k);
        }
        HostStmt::HostLoop { var, lo, hi, body } => {
            w.word("hloop").u64(var.0 as u64);
            enc_expr(w, lo);
            enc_expr(w, hi);
            enc_vec(w, body, enc_host_stmt);
        }
        HostStmt::WhileFlag {
            flag,
            max_iters,
            body,
        } => {
            w.word("while").u64(flag.0 as u64).u64(*max_iters as u64);
            enc_vec(w, body, enc_host_stmt);
        }
        HostStmt::HostAssign { var, ty, value } => {
            w.word("hasg").u64(var.0 as u64);
            enc_scalar(w, *ty);
            enc_expr(w, value);
        }
        HostStmt::HostStore {
            array,
            index,
            value,
        } => {
            w.word("hst").u64(array.0 as u64);
            enc_expr(w, index);
            enc_expr(w, value);
        }
        HostStmt::Update { array, dir } => {
            w.word("upd").u64(array.0 as u64);
            w.word(match dir {
                Dir::ToDevice => "todev",
                Dir::ToHost => "tohost",
            });
        }
        HostStmt::EnterData { arrays } => {
            w.word("enter");
            enc_vec(w, arrays, |w, a| {
                w.u64(a.0 as u64);
            });
        }
        HostStmt::ExitData { arrays } => {
            w.word("exit");
            enc_vec(w, arrays, |w, a| {
                w.u64(a.0 as u64);
            });
        }
        HostStmt::HostCompute { label, instr } => {
            w.word("hcomp").str(label);
            enc_expr(w, instr);
        }
    }
}

fn dec_host_stmt(r: R) -> Result<HostStmt, String> {
    Ok(match r.word()? {
        "data" => HostStmt::DataRegion {
            arrays: dec_vec(r, |r| Ok(ArrayId(r.u32()?)))?,
            body: dec_vec(r, dec_host_stmt)?,
        },
        "launch" => HostStmt::Launch(dec_kernel(r)?),
        "hloop" => HostStmt::HostLoop {
            var: VarId(r.u32()?),
            lo: dec_expr(r)?,
            hi: dec_expr(r)?,
            body: dec_vec(r, dec_host_stmt)?,
        },
        "while" => HostStmt::WhileFlag {
            flag: ArrayId(r.u32()?),
            max_iters: r.u32()?,
            body: dec_vec(r, dec_host_stmt)?,
        },
        "hasg" => HostStmt::HostAssign {
            var: VarId(r.u32()?),
            ty: dec_scalar(r)?,
            value: dec_expr(r)?,
        },
        "hst" => HostStmt::HostStore {
            array: ArrayId(r.u32()?),
            index: dec_expr(r)?,
            value: dec_expr(r)?,
        },
        "upd" => HostStmt::Update {
            array: ArrayId(r.u32()?),
            dir: match r.word()? {
                "todev" => Dir::ToDevice,
                "tohost" => Dir::ToHost,
                other => return Err(format!("bad update dir `{other}`")),
            },
        },
        "enter" => HostStmt::EnterData {
            arrays: dec_vec(r, |r| Ok(ArrayId(r.u32()?)))?,
        },
        "exit" => HostStmt::ExitData {
            arrays: dec_vec(r, |r| Ok(ArrayId(r.u32()?)))?,
        },
        "hcomp" => HostStmt::HostCompute {
            label: r.str()?,
            instr: dec_expr(r)?,
        },
        other => return Err(format!("bad host stmt tag `{other}`")),
    })
}

fn enc_program(w: &mut Writer, p: &Program) {
    w.str(&p.name);
    enc_vec(w, &p.params, |w, d| {
        w.str(&d.name);
        enc_scalar(w, d.ty);
    });
    enc_vec(w, &p.arrays, |w, d| {
        w.str(&d.name);
        enc_scalar(w, d.elem);
        enc_expr(w, &d.len);
        enc_intent(w, d.intent);
    });
    enc_vec(w, &p.body, enc_host_stmt);
    enc_vec(w, &p.var_names, |w, s| {
        w.str(s);
    });
    enc_vec(w, &p.tags, |w, s| {
        w.str(s);
    });
}

fn dec_program(r: R) -> Result<Program, String> {
    Ok(Program {
        name: r.str()?,
        params: dec_vec(r, |r| {
            Ok(ParamDecl {
                name: r.str()?,
                ty: dec_scalar(r)?,
            })
        })?,
        arrays: dec_vec(r, |r| {
            Ok(ArrayDecl {
                name: r.str()?,
                elem: dec_scalar(r)?,
                len: dec_expr(r)?,
                intent: dec_intent(r)?,
            })
        })?,
        body: dec_vec(r, dec_host_stmt)?,
        var_names: dec_vec(r, |r| r.str())?,
        tags: dec_vec(r, |r| r.str())?,
    })
}

// ---------------------------------------------------------------------------
// PTX
// ---------------------------------------------------------------------------

fn enc_ptx_type(w: &mut Writer, t: PtxType) {
    w.word(t.suffix());
}

fn dec_ptx_type(r: R) -> Result<PtxType, String> {
    Ok(match r.word()? {
        "f32" => PtxType::F32,
        "f64" => PtxType::F64,
        "s32" => PtxType::S32,
        "u32" => PtxType::U32,
        "u64" => PtxType::U64,
        "pred" => PtxType::Pred,
        other => return Err(format!("bad ptx type `{other}`")),
    })
}

const OPCODES: [Opcode; 35] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Max,
    Opcode::Min,
    Opcode::Fma,
    Opcode::Mad,
    Opcode::Rcp,
    Opcode::Abs,
    Opcode::Neg,
    Opcode::Rem,
    Opcode::Sqrt,
    Opcode::Ex2,
    Opcode::Setp,
    Opcode::Selp,
    Opcode::Bra,
    Opcode::And,
    Opcode::Or,
    Opcode::Not,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Cvt,
    Opcode::Mov,
    Opcode::LdParam,
    Opcode::CvtaToGlobal,
    Opcode::LdGlobal,
    Opcode::StGlobal,
    Opcode::AtomAdd,
    Opcode::AtomMax,
    Opcode::AtomMin,
    Opcode::LdShared,
    Opcode::StShared,
    Opcode::BarSync,
    Opcode::Ret,
];

fn dec_opcode(r: R) -> Result<Opcode, String> {
    let tok = r.word()?;
    OPCODES
        .iter()
        .copied()
        .find(|op| op.mnemonic() == tok)
        .ok_or_else(|| format!("bad opcode `{tok}`"))
}

const SREGS: [SpecialReg; 8] = [
    SpecialReg::TidX,
    SpecialReg::TidY,
    SpecialReg::CtaIdX,
    SpecialReg::CtaIdY,
    SpecialReg::NTidX,
    SpecialReg::NTidY,
    SpecialReg::NCtaIdX,
    SpecialReg::NCtaIdY,
];

fn dec_sreg(r: R) -> Result<SpecialReg, String> {
    let tok = r.word()?;
    SREGS
        .iter()
        .copied()
        .find(|s| s.name() == tok)
        .ok_or_else(|| format!("bad special register `{tok}`"))
}

fn enc_operand(w: &mut Writer, o: &Operand) {
    match o {
        Operand::Reg(Reg(n)) => {
            w.word("r").u64(*n as u64);
        }
        Operand::ImmF(v) => {
            w.word("if").f64(*v);
        }
        Operand::ImmI(v) => {
            w.word("ii").i64(*v);
        }
        Operand::Sym(s) => {
            w.word("sym").str(s);
        }
        Operand::Label(LabelId(n)) => {
            w.word("lab").u64(*n as u64);
        }
        Operand::Sreg(s) => {
            w.word("sreg").word(s.name());
        }
    }
}

fn dec_operand(r: R) -> Result<Operand, String> {
    Ok(match r.word()? {
        "r" => Operand::Reg(Reg(r.u32()?)),
        "if" => Operand::ImmF(r.f64()?),
        "ii" => Operand::ImmI(r.i64()?),
        "sym" => Operand::Sym(r.str()?),
        "lab" => Operand::Label(LabelId(r.u32()?)),
        "sreg" => Operand::Sreg(dec_sreg(r)?),
        other => return Err(format!("bad operand tag `{other}`")),
    })
}

fn enc_item(w: &mut Writer, it: &Item) {
    match it {
        Item::Label(LabelId(n)) => {
            w.word("l").u64(*n as u64);
        }
        Item::Inst(i) => {
            w.word("i").word(i.op.mnemonic());
            enc_ptx_type(w, i.ty);
            enc_opt(w, &i.dst, |w, Reg(n)| {
                w.u64(*n as u64);
            });
            enc_vec(w, &i.srcs, enc_operand);
            enc_opt(w, &i.pred, |w, Reg(n)| {
                w.u64(*n as u64);
            });
        }
    }
}

fn dec_item(r: R) -> Result<Item, String> {
    Ok(match r.word()? {
        "l" => Item::Label(LabelId(r.u32()?)),
        "i" => Item::Inst(Instruction {
            op: dec_opcode(r)?,
            ty: dec_ptx_type(r)?,
            dst: dec_opt(r, |r| Ok(Reg(r.u32()?)))?,
            srcs: dec_vec(r, dec_operand)?,
            pred: dec_opt(r, |r| Ok(Reg(r.u32()?)))?,
        }),
        other => return Err(format!("bad item tag `{other}`")),
    })
}

fn enc_module(w: &mut Writer, m: &PtxModule) {
    w.str(&m.producer);
    enc_vec(w, &m.kernels, |w, k| {
        w.str(&k.name);
        enc_vec(w, &k.params, |w, s| {
            w.str(s);
        });
        enc_vec(w, &k.body, enc_item);
    });
}

fn dec_module(r: R) -> Result<PtxModule, String> {
    Ok(PtxModule {
        producer: r.str()?,
        kernels: dec_vec(r, |r| {
            Ok(PtxKernel {
                name: r.str()?,
                params: dec_vec(r, |r| r.str())?,
                body: dec_vec(r, dec_item)?,
            })
        })?,
    })
}

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

pub(crate) fn compiler_tag(c: CompilerId) -> &'static str {
    match c {
        CompilerId::Caps => "caps",
        CompilerId::Pgi => "pgi",
        CompilerId::OpenClHand => "ocl-hand",
        CompilerId::OpenArc => "openarc",
    }
}

fn dec_compiler(r: R) -> Result<CompilerId, String> {
    Ok(match r.word()? {
        "caps" => CompilerId::Caps,
        "pgi" => CompilerId::Pgi,
        "ocl-hand" => CompilerId::OpenClHand,
        "openarc" => CompilerId::OpenArc,
        other => return Err(format!("bad compiler `{other}`")),
    })
}

fn enc_flag(w: &mut Writer, f: &Flag) {
    match f {
        Flag::O4 => {
            w.word("o4");
        }
        Flag::Fast => {
            w.word("fast");
        }
        Flag::Mvect => {
            w.word("mvect");
        }
        Flag::Munroll => {
            w.word("munroll");
        }
        Flag::Msafeptr => {
            w.word("msafeptr");
        }
        Flag::FastMath => {
            w.word("fastmath");
        }
        Flag::PrecDivFalse => {
            w.word("precdiv");
        }
        Flag::CodeSm35 => {
            w.word("sm35");
        }
        Flag::ArchCompute35 => {
            w.word("arch35");
        }
        Flag::GridBlockSize(bx, by) => {
            w.word("gbs").u64(*bx as u64).u64(*by as u64);
        }
    }
}

fn dec_flag(r: R) -> Result<Flag, String> {
    Ok(match r.word()? {
        "o4" => Flag::O4,
        "fast" => Flag::Fast,
        "mvect" => Flag::Mvect,
        "munroll" => Flag::Munroll,
        "msafeptr" => Flag::Msafeptr,
        "fastmath" => Flag::FastMath,
        "precdiv" => Flag::PrecDivFalse,
        "sm35" => Flag::CodeSm35,
        "arch35" => Flag::ArchCompute35,
        "gbs" => Flag::GridBlockSize(r.u32()?, r.u32()?),
        other => return Err(format!("bad flag `{other}`")),
    })
}

fn enc_options(w: &mut Writer, o: &CompileOptions) {
    w.word(match o.backend {
        Backend::Cuda => "cuda",
        Backend::OpenCl => "opencl",
    });
    w.word(match o.target {
        DeviceKind::GpuK40 => "k40",
        DeviceKind::AmdGpu => "amd",
        DeviceKind::Mic5110P => "mic",
        DeviceKind::HostCpu => "host",
    });
    w.word(match o.host_compiler {
        HostCompiler::Gcc => "gcc",
        HostCompiler::Intel => "intel",
    });
    enc_vec(w, &o.flags, enc_flag);
    let q = &o.quirks;
    for b in [
        q.caps_default_gang1,
        q.caps_fake_unroll_success,
        q.caps_cuda_unroll_fails_on_accum,
        q.caps_tile_silent_on_nested,
        q.caps_reduction_perf_bug,
        q.caps_reduction_wrong_on_mic,
        q.caps_retransfer_in_dynamic_loops,
        q.pgi_conservative_indirection,
        q.pgi_locks_distribution,
        q.pgi_unroll_no_speedup,
        q.pgi_pointer_alias_sensitivity,
    ] {
        w.bool(b);
    }
}

fn dec_options(r: R) -> Result<CompileOptions, String> {
    let backend = match r.word()? {
        "cuda" => Backend::Cuda,
        "opencl" => Backend::OpenCl,
        other => return Err(format!("bad backend `{other}`")),
    };
    let target = match r.word()? {
        "k40" => DeviceKind::GpuK40,
        "amd" => DeviceKind::AmdGpu,
        "mic" => DeviceKind::Mic5110P,
        "host" => DeviceKind::HostCpu,
        other => return Err(format!("bad target `{other}`")),
    };
    let host_compiler = match r.word()? {
        "gcc" => HostCompiler::Gcc,
        "intel" => HostCompiler::Intel,
        other => return Err(format!("bad host compiler `{other}`")),
    };
    let flags = dec_vec(r, dec_flag)?;
    let quirks = QuirkSet {
        caps_default_gang1: r.bool()?,
        caps_fake_unroll_success: r.bool()?,
        caps_cuda_unroll_fails_on_accum: r.bool()?,
        caps_tile_silent_on_nested: r.bool()?,
        caps_reduction_perf_bug: r.bool()?,
        caps_reduction_wrong_on_mic: r.bool()?,
        caps_retransfer_in_dynamic_loops: r.bool()?,
        pgi_conservative_indirection: r.bool()?,
        pgi_locks_distribution: r.bool()?,
        pgi_unroll_no_speedup: r.bool()?,
        pgi_pointer_alias_sensitivity: r.bool()?,
    };
    Ok(CompileOptions {
        backend,
        target,
        host_compiler,
        flags,
        quirks,
    })
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

fn enc_counts(w: &mut Writer, c: &CategoryCounts) {
    for (_, v) in c.iter() {
        w.u64(v);
    }
}

fn dec_counts(r: R) -> Result<CategoryCounts, String> {
    let mut c = CategoryCounts::default();
    for cat in CATEGORIES {
        c.set(cat, r.u64()?);
    }
    Ok(c)
}

fn enc_cost_tree(w: &mut Writer, t: &CostTree) {
    enc_counts(w, &t.flat);
    w.u64(t.flat_ldst);
    enc_vec(w, &t.kids, |w, k| match k {
        CostNode::Loop {
            var,
            lo,
            hi,
            step,
            overhead,
            body,
        } => {
            w.word("loop").u64(var.0 as u64);
            enc_expr(w, lo);
            enc_expr(w, hi);
            w.i64(*step);
            enc_counts(w, overhead);
            enc_cost_tree(w, body);
        }
        CostNode::Branch { then, els } => {
            w.word("br");
            enc_cost_tree(w, then);
            enc_cost_tree(w, els);
        }
    });
}

fn dec_cost_tree(r: R) -> Result<CostTree, String> {
    Ok(CostTree {
        flat: dec_counts(r)?,
        flat_ldst: r.u64()?,
        kids: dec_vec(r, |r| {
            Ok(match r.word()? {
                "loop" => CostNode::Loop {
                    var: VarId(r.u32()?),
                    lo: dec_expr(r)?,
                    hi: dec_expr(r)?,
                    step: r.i64()?,
                    overhead: dec_counts(r)?,
                    body: dec_cost_tree(r)?,
                },
                "br" => CostNode::Branch {
                    then: dec_cost_tree(r)?,
                    els: dec_cost_tree(r)?,
                },
                other => return Err(format!("bad cost node tag `{other}`")),
            })
        })?,
    })
}

fn enc_dist(w: &mut Writer, d: &DistSpec) {
    match d {
        DistSpec::Sequential => {
            w.word("seq");
        }
        DistSpec::GangWorker { gang, worker } => {
            w.word("gw").u64(*gang as u64).u64(*worker as u64);
        }
        DistSpec::Gridify1D { bx, by } => {
            w.word("g1").u64(*bx as u64).u64(*by as u64);
        }
        DistSpec::Gridify2D { bx, by } => {
            w.word("g2").u64(*bx as u64).u64(*by as u64);
        }
        DistSpec::PgiAuto { vector } => {
            w.word("pgi").u64(*vector as u64);
        }
        DistSpec::NdRange { lx, ly, two_d } => {
            w.word("ndr").u64(*lx as u64).u64(*ly as u64).bool(*two_d);
        }
        DistSpec::Grouped { group_size } => {
            w.word("grp").u64(*group_size as u64);
        }
        DistSpec::GroupedPerIter { group_size } => {
            w.word("grpiter").u64(*group_size as u64);
        }
    }
}

fn dec_dist(r: R) -> Result<DistSpec, String> {
    Ok(match r.word()? {
        "seq" => DistSpec::Sequential,
        "gw" => DistSpec::GangWorker {
            gang: r.u32()?,
            worker: r.u32()?,
        },
        "g1" => DistSpec::Gridify1D {
            bx: r.u32()?,
            by: r.u32()?,
        },
        "g2" => DistSpec::Gridify2D {
            bx: r.u32()?,
            by: r.u32()?,
        },
        "pgi" => DistSpec::PgiAuto { vector: r.u32()? },
        "ndr" => DistSpec::NdRange {
            lx: r.u32()?,
            ly: r.u32()?,
            two_d: r.bool()?,
        },
        "grp" => DistSpec::Grouped {
            group_size: r.u32()?,
        },
        "grpiter" => DistSpec::GroupedPerIter {
            group_size: r.u32()?,
        },
        other => return Err(format!("bad dist tag `{other}`")),
    })
}

fn enc_plan(w: &mut Writer, p: &KernelPlan) {
    w.str(&p.kernel);
    w.word(match p.exec {
        ExecStrategy::DeviceParallel => "dp",
        ExecStrategy::DeviceSequential => "ds",
        ExecStrategy::HostSequential => "hs",
    });
    enc_dist(w, &p.dist);
    enc_counts(w, &p.prologue);
    enc_cost_tree(w, &p.cost);
    match &p.correctness {
        Correctness::Correct => {
            w.word("ok");
        }
        Correctness::Wrong { reason } => {
            w.word("wrong").str(reason);
        }
    }
    w.str(&p.config_label);
    w.f64(p.perf_penalty);
}

fn dec_plan(r: R) -> Result<KernelPlan, String> {
    Ok(KernelPlan {
        kernel: r.str()?,
        exec: match r.word()? {
            "dp" => ExecStrategy::DeviceParallel,
            "ds" => ExecStrategy::DeviceSequential,
            "hs" => ExecStrategy::HostSequential,
            other => return Err(format!("bad exec strategy `{other}`")),
        },
        dist: dec_dist(r)?,
        prologue: dec_counts(r)?,
        cost: dec_cost_tree(r)?,
        correctness: match r.word()? {
            "ok" => Correctness::Correct,
            "wrong" => Correctness::Wrong { reason: r.str()? },
            other => return Err(format!("bad correctness tag `{other}`")),
        },
        config_label: r.str()?,
        perf_penalty: r.f64()?,
    })
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

/// Serialize a compiled artifact as one self-verifying token record.
pub fn encode_artifact(c: &CompiledProgram) -> String {
    let mut w = Writer::new();
    w.word(MAGIC).u64(VERSION);
    w.word(&format!("{:016x}", artifact_checksum(c)));
    w.word(compiler_tag(c.compiler));
    enc_options(&mut w, &c.options);
    enc_program(&mut w, &c.program);
    enc_module(&mut w, &c.module);
    enc_vec(&mut w, &c.plans, enc_plan);
    enc_vec(&mut w, &c.diagnostics, |w, d| {
        w.str(&d.kernel);
        w.str(&d.message);
    });
    w.word(match c.transfers {
        TransferPolicy::Resident => "resident",
        TransferPolicy::PerIteration => "periter",
    });
    w.finish()
}

/// Parse a record produced by [`encode_artifact`] and verify its
/// embedded checksum against the decoded value. Every failure mode —
/// truncation, garbling, version skew, or a codec defect — returns
/// `Err`, which callers treat as a cache miss.
pub fn decode_artifact(record: &str) -> Result<CompiledProgram, String> {
    let mut r = Reader::new(record);
    r.tag(MAGIC)?;
    let version = r.u64()?;
    if version != VERSION {
        return Err(format!("artifact format v{version}, expected v{VERSION}"));
    }
    let sum_tok = r.word()?;
    if sum_tok.len() != 16 {
        return Err(format!("bad checksum token `{sum_tok}`"));
    }
    let expected =
        u64::from_str_radix(sum_tok, 16).map_err(|_| format!("bad checksum token `{sum_tok}`"))?;

    let compiler = dec_compiler(&mut r)?;
    let options = dec_options(&mut r)?;
    let program = dec_program(&mut r)?;
    let module = dec_module(&mut r)?;
    let plans = dec_vec(&mut r, dec_plan)?;
    let diagnostics = dec_vec(&mut r, |r| {
        Ok(Diagnostic {
            kernel: r.str()?,
            message: r.str()?,
        })
    })?;
    let transfers = match r.word()? {
        "resident" => TransferPolicy::Resident,
        "periter" => TransferPolicy::PerIteration,
        other => return Err(format!("bad transfer policy `{other}`")),
    };
    r.end()?;

    let decoded = CompiledProgram {
        compiler,
        options,
        program,
        module,
        plans,
        diagnostics,
        transfers,
    };
    let actual = artifact_checksum(&decoded);
    if actual != expected {
        return Err(format!(
            "artifact checksum mismatch: stored {expected:016x}, decoded {actual:016x}"
        ));
    }
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
    };

    fn saxpy(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name);
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    fn assert_round_trips(c: &CompiledProgram, what: &str) {
        let rec = encode_artifact(c);
        assert!(!rec.contains('\n'), "{what}: record must be one line");
        let back = decode_artifact(&rec).unwrap_or_else(|e| panic!("{what}: {e}"));
        assert_eq!(&back, c, "{what}: decoded artifact differs");
        // Determinism: re-encoding the decoded value is byte-identical.
        assert_eq!(encode_artifact(&back), rec, "{what}: re-encode differs");
    }

    #[test]
    fn artifacts_round_trip_across_the_compiler_matrix() {
        let p = saxpy("saxpy");
        for (id, opts, what) in [
            (CompilerId::Caps, CompileOptions::gpu(), "caps/gpu"),
            (CompilerId::Caps, CompileOptions::amd(), "caps/amd"),
            (CompilerId::Caps, CompileOptions::mic(), "caps/mic"),
            (CompilerId::Pgi, CompileOptions::gpu(), "pgi/gpu"),
            (CompilerId::OpenClHand, CompileOptions::gpu(), "ocl/gpu"),
            (CompilerId::OpenArc, CompileOptions::gpu(), "openarc/gpu"),
        ] {
            let c = crate::compile(id, &p, &opts).unwrap_or_else(|e| panic!("{what}: {e:?}"));
            assert_round_trips(&c, what);
        }
    }

    #[test]
    fn flags_and_grid_block_size_round_trip() {
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu()
            .with_flag(Flag::Munroll)
            .with_flag(Flag::GridBlockSize(32, 4))
            .with_host_compiler(HostCompiler::Intel);
        let c = crate::compile(CompilerId::Caps, &p, &opts).unwrap();
        assert_round_trips(&c, "caps with flags");
    }

    #[test]
    fn every_corruption_of_a_record_is_rejected_or_identical() {
        let c = crate::compile(CompilerId::Caps, &saxpy("saxpy"), &CompileOptions::gpu()).unwrap();
        let rec = encode_artifact(&c);
        // Truncations never decode.
        for cut in [0, 1, rec.len() / 2, rec.len() - 1] {
            assert!(decode_artifact(&rec[..cut]).is_err(), "cut at {cut}");
        }
        // Garbling any single byte either fails to decode or (for the
        // rare benign mutation, e.g. inside an escaped string that maps
        // back to the same value — which cannot happen with this
        // grammar, but the checksum is the backstop) decodes equal.
        let bytes = rec.as_bytes();
        for pos in (0..bytes.len()).step_by(7) {
            let mut m = bytes.to_vec();
            m[pos] ^= 0x01;
            let Ok(s) = String::from_utf8(m) else {
                continue;
            };
            match decode_artifact(&s) {
                Err(_) => {}
                Ok(back) => assert_eq!(back, c, "garble at {pos} decoded to a different artifact"),
            }
        }
    }

    #[test]
    fn version_skew_reads_as_a_miss() {
        let c = crate::compile(CompilerId::Caps, &saxpy("saxpy"), &CompileOptions::gpu()).unwrap();
        let rec = encode_artifact(&c);
        let skewed = rec.replacen(
            &format!("{MAGIC} {VERSION}"),
            &format!("{MAGIC} {}", VERSION + 1),
            1,
        );
        let err = decode_artifact(&skewed).unwrap_err();
        assert!(err.contains("format"), "{err}");
    }

    #[test]
    fn trailing_tokens_are_rejected() {
        let c = crate::compile(CompilerId::Pgi, &saxpy("saxpy"), &CompileOptions::gpu()).unwrap();
        let rec = format!("{} extra", encode_artifact(&c));
        assert!(decode_artifact(&rec).is_err());
    }
}
