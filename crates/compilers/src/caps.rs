//! The CAPS 3.4.1 personality.
//!
//! CAPS is a source-to-source compiler producing CUDA or OpenCL, the
//! only one of the three that targets both the GPU and the MIC. Its
//! reconstructed behaviours (Sections II-C, III, V of the paper):
//!
//! * **gang mode** — explicit `gang(n)/worker(n)` clauses are honoured;
//!   without them the default is `gangs(192)/workers(256)` *according
//!   to the log*, but the generated codelet actually runs
//!   `gang(1), worker(1)` (the paper calls this "maybe a bug of the
//!   CAPS compiler"; we keep both the lying log line and the bug);
//! * **gridify mode** — available only once `independent` is given:
//!   1-D grid for single loops, 2-D for nests, 32×4 blocks by default
//!   or per the `-Xhmppcg -grid-block-size` flag;
//! * **unroll-and-jam** — real on plain inner loops; a fake success
//!   message on kernels with nothing to unroll; and (CUDA back end
//!   only) a failure on grouped reduction bodies that the OpenCL back
//!   end handles;
//! * **tile** — strip-mines flat rank-1 kernels (never using shared
//!   memory); silently skipped on kernels with inner loops;
//! * **reduction** — lowered to the Fig.-13 shared-memory tree, but
//!   with no speed-up on the GPU and wrong results on the MIC.

use crate::artifact::{
    CompileError, CompiledProgram, Correctness, DistSpec, ExecStrategy, TransferPolicy,
};
use crate::common::{assemble, KernelDecision};
use crate::lower::LoweringStyle;
use crate::options::{Backend, CompileOptions, CompilerId, DeviceKind};
use crate::transforms::{
    has_inner_loop, reduction_to_grouped, strip_mine, unroll_grouped_phases, unroll_inner_loops,
    VarAlloc,
};
use paccport_ir::kernel::KernelBody;
use paccport_ir::{HostStmt, Program};

/// Compile a program with the CAPS personality.
pub fn compile(
    program: &Program,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let site = format!("{}:{}", CompilerId::Caps.label(), program.name);
    if paccport_faults::inject(paccport_faults::FaultKind::CompileFail, &site) {
        return Err(CompileError {
            compiler: CompilerId::Caps,
            message: format!(
                "{} simulated toolchain crash compiling `{}`",
                paccport_faults::INJECTED,
                program.name
            ),
        });
    }
    paccport_faults::maybe_slow_compile(&site);
    let mut prog = program.clone();
    let q = options.quirks.clone();
    let (bx, by) = options.grid_block_size();

    // ---------------- IR transformations ----------------
    // Outcome log lines, appended to the diagnostics after assembly
    // (the "fake successful message" of Section V-B3 lives here).
    let mut transform_diags: Vec<crate::artifact::Diagnostic> = Vec::new();
    let kinds = paccport_ir::KindEnv::for_program(&prog);
    let mut names = std::mem::take(&mut prog.var_names);
    {
        let mut va = VarAlloc::new(&mut names);
        prog.map_kernels(|k| {
            if k.reduction.is_some() {
                reduction_to_grouped(k, 128, &mut va);
            }
            if let Some(t) = k.loops.iter().find_map(|l| l.clauses.tile) {
                let nested = k.simple_body().is_none_or(has_inner_loop);
                let applied = if q.caps_tile_silent_on_nested && nested {
                    false
                } else {
                    strip_mine(k, t, &mut va, &kinds)
                };
                // Either way the compiler reports success; the PTX
                // comparison is how the paper catches the no-op.
                let _ = applied;
                transform_diags.push(crate::artifact::Diagnostic {
                    kernel: k.name.clone(),
                    message: format!("tile({t}) applied"),
                });
            }
            if let Some(f) = k.loops.iter().find_map(|l| l.clauses.unroll_jam) {
                let applied = match &k.body {
                    KernelBody::Grouped(_) => {
                        let allowed = options.backend == Backend::OpenCl
                            || !q.caps_cuda_unroll_fails_on_accum;
                        allowed && unroll_grouped_phases(k, f, &kinds)
                    }
                    KernelBody::Simple(_) => unroll_inner_loops(k, f, &kinds),
                };
                let message = if applied || q.caps_fake_unroll_success {
                    // Lying on failure is the quirk.
                    format!("loop unrolled by {f} and jammed")
                } else {
                    format!("unroll({f}), jam not applicable: no plain inner loop")
                };
                transform_diags.push(crate::artifact::Diagnostic {
                    kernel: k.name.clone(),
                    message,
                });
            }
        });
    }
    prog.var_names = names;

    // ---------------- Distribution decisions ----------------
    let quirks = q.clone();
    let transfers = if quirks.caps_retransfer_in_dynamic_loops && has_dynamic_loop(&prog) {
        TransferPolicy::PerIteration
    } else {
        TransferPolicy::Resident
    };
    let target = options.target;
    let style = LoweringStyle {
        fastmath: options.has_flag(&crate::options::Flag::FastMath),
        ..LoweringStyle::caps()
    };
    let decide = move |k: &paccport_ir::Kernel| -> KernelDecision {
        let mut diags = Vec::new();
        // Grouped bodies in the CAPS path only arise from `reduction`.
        if let KernelBody::Grouped(g) = &k.body {
            diags.push(format!(
                "reduction lowered to a {}-thread shared-memory tree",
                g.group_size
            ));
            let correctness =
                if quirks.caps_reduction_wrong_on_mic && target == DeviceKind::Mic5110P {
                    Correctness::Wrong {
                        reason: "CAPS reduction miscomputes on MIC (Section V-D2)".into(),
                    }
                } else {
                    Correctness::Correct
                };
            let perf_penalty = if quirks.caps_reduction_perf_bug && target == DeviceKind::GpuK40 {
                g.group_size as f64
            } else {
                1.0
            };
            return KernelDecision {
                dist: DistSpec::GroupedPerIter {
                    group_size: g.group_size,
                },
                exec: ExecStrategy::DeviceParallel,
                correctness,
                perf_penalty,
                diagnostics: diags,
            };
        }
        if k.any_independent() {
            let dist = if k.rank() == 1 {
                DistSpec::Gridify1D { bx, by }
            } else {
                DistSpec::Gridify2D { bx, by }
            };
            diags.push(format!(
                "gridify mode: {}-D grid, block {}x{}",
                k.rank().min(2),
                bx,
                by
            ));
            return KernelDecision {
                dist,
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            };
        }
        // Resolve OpenACC 2.0 `device_type` overrides for this target.
        let acc_dev = target.acc_device_type();
        let effective = |l: &paccport_ir::ParallelLoop| match acc_dev {
            Some(d) => l.clauses.for_device(d),
            None => l.clauses.clone(),
        };
        let explicit = k
            .loops
            .iter()
            .map(&effective)
            .find(|c| c.has_explicit_distribution());
        if let Some(c) = explicit {
            let gang = c.gang.unwrap_or(192);
            let worker = c.worker.or(c.vector).unwrap_or(256);
            diags.push(format!(
                "gang mode: loop shared among gangs({gang}) and workers({worker})"
            ));
            let dist = DistSpec::GangWorker { gang, worker };
            let exec = if dist.is_parallel() {
                ExecStrategy::DeviceParallel
            } else {
                ExecStrategy::DeviceSequential
            };
            return KernelDecision {
                dist,
                exec,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            };
        }
        // Default distribution: the famous lying log line.
        diags.push("Loop was shared among gangs(192) and workers(256)".into());
        if quirks.caps_default_gang1 {
            KernelDecision {
                dist: DistSpec::Sequential,
                exec: ExecStrategy::DeviceSequential,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        } else {
            KernelDecision {
                dist: DistSpec::GangWorker {
                    gang: 192,
                    worker: 256,
                },
                exec: ExecStrategy::DeviceParallel,
                correctness: Correctness::Correct,
                perf_penalty: 1.0,
                diagnostics: diags,
            }
        }
    };

    let mut out = assemble(CompilerId::Caps, options, prog, &style, decide, transfers);
    out.diagnostics.extend(transform_diags);
    Ok(out)
}

/// Does the program contain a dynamically-bounded host loop (BFS's
/// frontier `while`)?
fn has_dynamic_loop(p: &Program) -> bool {
    let mut found = false;
    for s in &p.body {
        s.walk(&mut |s| {
            if matches!(s, HostStmt::WhileFlag { .. }) {
                found = true;
            }
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::QuirkSet;
    use paccport_ir::{ld, st, Expr, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E};

    fn simple_program(independent: bool, gang: Option<u32>) -> Program {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = independent;
        lp.clauses.gang = gang;
        if gang.is_some() {
            lp.clauses.worker = Some(16);
        }
        let k = Kernel::simple(
            "k",
            vec![lp],
            paccport_ir::Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn baseline_hits_gang1_bug_but_log_lies() {
        let p = simple_program(false, None);
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(plan.exec, ExecStrategy::DeviceSequential);
        assert_eq!(plan.config_label, "1x1");
        // …while the log still claims 192x256.
        assert!(c.diagnostics[0].message.contains("gangs(192)"));
    }

    #[test]
    fn quirk_off_restores_default_parallelism() {
        let p = simple_program(false, None);
        let mut o = CompileOptions::gpu();
        o.quirks = QuirkSet::none();
        let c = compile(&p, &o).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
        assert_eq!(plan.config_label, "192x256");
    }

    #[test]
    fn independent_enables_gridify() {
        let p = simple_program(true, None);
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(plan.dist, DistSpec::Gridify1D { bx: 32, by: 4 });
        assert_eq!(plan.config_label, "32x4");
    }

    #[test]
    fn grid_block_size_flag_overrides_gridify_shape() {
        let p = simple_program(true, None);
        let o = CompileOptions::gpu().with_flag(crate::options::Flag::GridBlockSize(64, 2));
        let c = compile(&p, &o).unwrap();
        assert_eq!(
            c.plan("k").unwrap().dist,
            DistSpec::Gridify1D { bx: 64, by: 2 }
        );
    }

    #[test]
    fn explicit_gang_mode_is_honoured() {
        let p = simple_program(false, Some(256));
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(
            plan.dist,
            DistSpec::GangWorker {
                gang: 256,
                worker: 16
            }
        );
        assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
        assert_eq!(plan.config_label, "256x16");
    }

    #[test]
    fn tile_on_flat_kernel_strip_mines() {
        let mut p = simple_program(true, None);
        p.map_kernel("k", |k| k.loops[0].clauses.tile = Some(16));
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        // Rank went 1 → 2, so gridify is now 2-D.
        assert_eq!(
            c.plan("k").unwrap().dist,
            DistSpec::Gridify2D { bx: 32, by: 4 }
        );
        assert_eq!(c.program.kernel("k").unwrap().rank(), 2);
        // Still no shared memory: the paper's key tiling observation.
        let counts = c.module.kernel("k_kernel").unwrap().counts();
        assert_eq!(
            counts.get(paccport_ptx::Category::SharedMemory),
            0,
            "OpenACC tiling must not touch shared memory"
        );
    }

    #[test]
    fn reduction_is_wrong_on_mic_and_slow_on_gpu() {
        use paccport_ir::{assign, for_, let_, ReduceOp, Reduction};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let input = b.array("in", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let j = b.var("j");
        let kv = b.var("k");
        let sum = b.var("sum");
        let mut k = Kernel::simple(
            "fwd",
            vec![ParallelLoop::new(j, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![
                let_(sum, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(sum, E::from(sum) + ld(input, kv))],
                ),
                st(out, j, E::from(sum)),
            ]),
        );
        k.reduction = Some(Reduction {
            op: ReduceOp::Add,
            acc: sum,
        });
        let p = b.finish(vec![HostStmt::Launch(k)]);

        let gpu = compile(&p, &CompileOptions::gpu()).unwrap();
        let gp = gpu.plan("fwd").unwrap();
        assert!(gp.perf_penalty > 1.0, "GPU reduction perf bug");
        assert_eq!(gp.correctness, Correctness::Correct);
        // Shared-memory instructions now present (Fig. 14).
        assert!(
            gpu.module
                .kernel("fwd_kernel")
                .unwrap()
                .counts()
                .get(paccport_ptx::Category::SharedMemory)
                > 0
        );

        let mic = compile(&p, &CompileOptions::mic()).unwrap();
        assert!(matches!(
            mic.plan("fwd").unwrap().correctness,
            Correctness::Wrong { .. }
        ));
    }
}
