//! # paccport-compilers — simulated OpenACC toolchains
//!
//! The paper's findings are, to a large extent, findings *about
//! compilers*: how CAPS 3.4.1 and PGI 14.9 translate the same OpenACC
//! source differently, which of their optimizations are real and which
//! silently no-op, and which outright bugs shape the measured
//! performance. None of those toolchains can run today (CAPS went
//! bankrupt in July 2014), so this crate reconstructs them as
//! *personalities*: deterministic translators from the directive IR
//! (`paccport-ir`) to a PTX-like ISA (`paccport-ptx`), with every
//! documented quirk modeled as a togglable switch
//! ([`options::QuirkSet`]).
//!
//! The third personality is not a compiler at all: it stands for the
//! hand-written OpenCL versions the paper compares against.
//!
//! ```
//! use paccport_compilers::{compile, CompilerId, CompileOptions};
//! use paccport_ir::{ProgramBuilder, Kernel, ParallelLoop, Expr, Block, st, ld, Intent, Scalar, HostStmt, E};
//!
//! let mut b = ProgramBuilder::new("saxpy");
//! let n = b.iparam("n");
//! let x = b.array("x", Scalar::F32, n, Intent::In);
//! let y = b.array("y", Scalar::F32, n, Intent::InOut);
//! let i = b.var("i");
//! let k = Kernel::simple(
//!     "saxpy",
//!     vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
//!     Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
//! );
//! let program = b.finish(vec![HostStmt::Launch(k)]);
//!
//! let compiled = compile(CompilerId::Caps, &program, &CompileOptions::gpu()).unwrap();
//! assert_eq!(compiled.module.kernels.len(), 1);
//! ```

pub mod artifact;
pub mod cache;
pub mod caps;
pub mod common;
pub mod diskfmt;
pub mod flags;
pub mod lower;
pub mod mapping;
pub mod openarc;
pub mod opencl;
pub mod options;
pub mod passes;
pub mod pgi;
pub mod transforms;

pub use artifact::{
    CompileError, CompiledProgram, Correctness, CostNode, CostTree, Diagnostic, DistSpec,
    ExecStrategy, KernelPlan, LaunchDims, TransferPolicy,
};
pub use cache::{
    current_tenant, fingerprint, tenant_scope, ArtifactCache, ArtifactStore, CacheKey, TenantScope,
};
pub use diskfmt::{decode_artifact, encode_artifact};
pub use lower::{lower_kernel, lower_stub, LoweredKernel, LoweringStyle};
pub use options::{Backend, CompileOptions, CompilerId, DeviceKind, Flag, HostCompiler, QuirkSet};

use paccport_ir::Program;

/// Compile `program` with the chosen personality.
pub fn compile(
    id: CompilerId,
    program: &Program,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let _span = paccport_trace::span_attrs(
        "compilers.compile",
        vec![
            ("compiler".into(), id.label().into()),
            ("program".into(), program.name.clone()),
        ],
    );
    if paccport_trace::metrics::metrics_enabled() {
        paccport_trace::metrics::counter_add("compile_total", &[("compiler", id.label())], 1);
    }
    // The session-global middle-end pipeline (set via
    // `reproduce --passes`, or programmatically) rewrites a copy of
    // the IR before the personality sees it; `None` (the default)
    // keeps compilation byte-for-byte as it always was.
    let pipeline = passes::global_pipeline();
    let optimized = pipeline.as_ref().map(|pl| {
        let mut q = program.clone();
        pl.run(&mut q);
        q
    });
    let program = optimized.as_ref().unwrap_or(program);
    let mut out = match id {
        CompilerId::Caps => caps::compile(program, options),
        CompilerId::Pgi => pgi::compile(program, options),
        CompilerId::OpenClHand => opencl::compile(program, options),
        CompilerId::OpenArc => openarc::compile(program, options),
    }?;
    if pipeline.as_ref().is_some_and(|pl| pl.peephole)
        && paccport_ptx::peephole::run_module(&mut out.module)
    {
        paccport_trace::add("passes.ptx-peephole", 1);
    }
    Ok(out)
}
