//! The hand-written OpenCL personality.
//!
//! The paper's comparison baseline is not a compiler but the Rodinia /
//! Hydro OpenCL sources themselves: explicit NDRange launches, fixed
//! local work sizes, and `__local` memory staging where the original
//! authors used it. We route those kernels through the same lowering
//! machinery so their PTX is directly comparable with the OpenACC
//! output (Figures 9 and 11 do exactly this comparison).

use crate::artifact::{
    CompileError, CompiledProgram, Correctness, DistSpec, ExecStrategy, TransferPolicy,
};
use crate::common::{assemble, KernelDecision};
use crate::lower::LoweringStyle;
use crate::options::{CompileOptions, CompilerId};
use paccport_ir::kernel::KernelBody;
use paccport_ir::Program;

/// "Compile" a hand-written OpenCL program: honour its explicit launch
/// configuration, no transformations, buffers managed explicitly
/// (resident).
pub fn compile(
    program: &Program,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let prog = program.clone();
    let style = LoweringStyle {
        fastmath: options.has_flag(&crate::options::Flag::FastMath),
        ..LoweringStyle::opencl()
    };
    let decide = |k: &paccport_ir::Kernel| -> KernelDecision {
        let dist = match (&k.body, k.launch_hint) {
            (KernelBody::Grouped(g), Some(h)) if h.group_per_iter => DistSpec::GroupedPerIter {
                group_size: g.group_size,
            },
            (KernelBody::Grouped(g), _) => DistSpec::Grouped {
                group_size: g.group_size,
            },
            (_, Some(h)) => DistSpec::NdRange {
                lx: h.local.0,
                ly: h.local.1,
                two_d: h.two_d,
            },
            // Rodinia's common defaults: 256×1 work-groups for 1-D
            // kernels, 16×16 for 2-D ones.
            (_, None) => {
                if k.rank() >= 2 {
                    DistSpec::NdRange {
                        lx: 16,
                        ly: 16,
                        two_d: true,
                    }
                } else {
                    DistSpec::NdRange {
                        lx: 256,
                        ly: 1,
                        two_d: false,
                    }
                }
            }
        };
        KernelDecision {
            dist,
            exec: ExecStrategy::DeviceParallel,
            correctness: Correctness::Correct,
            perf_penalty: 1.0,
            diagnostics: vec![format!(
                "NDRange kernel: {}",
                crate::common::config_label(&dist)
            )],
        }
    };
    Ok(assemble(
        CompilerId::OpenClHand,
        options,
        prog,
        &style,
        decide,
        TransferPolicy::Resident,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Expr, HostStmt, Intent, Kernel, LaunchHint, ParallelLoop, ProgramBuilder, Scalar,
    };

    #[test]
    fn launch_hint_is_honoured() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        k.launch_hint = Some(LaunchHint {
            local: (32, 4),
            two_d: false,
            group_per_iter: false,
        });
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(
            plan.dist,
            DistSpec::NdRange {
                lx: 32,
                ly: 4,
                two_d: false
            }
        );
        assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
    }

    #[test]
    fn defaults_choose_by_rank() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        let k1 = Kernel::simple(
            "k1",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(a, i, 0.0)]),
        );
        let k2 = Kernel::simple(
            "k2",
            vec![
                ParallelLoop::new(i, Expr::iconst(0), Expr::param(n)),
                ParallelLoop::new(j, Expr::iconst(0), Expr::param(n)),
            ],
            paccport_ir::Block::new(vec![st(a, i, 0.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k1), HostStmt::Launch(k2)]);
        let c = compile(&p, &CompileOptions::gpu()).unwrap();
        assert!(matches!(
            c.plan("k1").unwrap().dist,
            DistSpec::NdRange { lx: 256, .. }
        ));
        assert!(matches!(
            c.plan("k2").unwrap().dist,
            DistSpec::NdRange {
                lx: 16,
                ly: 16,
                two_d: true
            }
        ));
    }
}
