//! IR-to-IR transformations backing Steps 3 (unroll) and 4 (tile) of
//! the systematic method, plus the `reduction` directive's
//! shared-memory tree lowering (Fig. 13 of the paper).
//!
//! All transforms are semantics-preserving rewrites of the kernel IR,
//! so the functional interpreter executes exactly the code whose PTX
//! the analysis counts.

use paccport_ir::expr::{BinOp, CmpOp, Expr};
use paccport_ir::kernel::{GroupedBody, Kernel, KernelBody, ParallelLoop};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{ArrayId, LocalArrayDecl, Scalar, VarId};
use paccport_ir::{simplify_kernel_in, KindEnv, SpecialVar};

/// Fresh-variable allocator backed by the program's name table.
pub struct VarAlloc<'a> {
    names: &'a mut Vec<String>,
}

impl<'a> VarAlloc<'a> {
    pub fn new(names: &'a mut Vec<String>) -> Self {
        VarAlloc { names }
    }

    pub fn fresh(&mut self, hint: &str) -> VarId {
        self.names.push(format!("{hint}{}", self.names.len()));
        VarId(self.names.len() as u32 - 1)
    }
}

/// One semantics-preserving whole-program rewrite, as enumerated by
/// the differential conformance harness: every variant must leave the
/// observable output of a program bitwise unchanged (that is the
/// invariant the fuzzer checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransformVariant {
    /// [`unroll_inner_loops`] with the given factor on every kernel.
    Unroll(u32),
    /// [`unroll_grouped_phases`] (unroll-and-jam of staged bodies).
    UnrollGrouped(u32),
    /// [`strip_mine`] (the `tile` clause's effect) with the given tile.
    StripMine(u32),
    /// [`serialize_inner_loops`] keeping one parallel level.
    SerializeInner,
    /// [`reduction_to_grouped`] with the given group size (must be a
    /// power of two).
    ReductionToGrouped(u32),
    /// [`paccport_ir::simplify_kernel`] over every kernel.
    Simplify,
}

impl TransformVariant {
    /// The canonical list the conformance driver iterates.
    pub fn all() -> Vec<TransformVariant> {
        vec![
            TransformVariant::Unroll(2),
            TransformVariant::Unroll(3),
            TransformVariant::UnrollGrouped(2),
            TransformVariant::StripMine(4),
            TransformVariant::SerializeInner,
            TransformVariant::ReductionToGrouped(8),
            TransformVariant::Simplify,
        ]
    }

    /// Stable label used in conformance reports.
    pub fn label(&self) -> String {
        match self {
            TransformVariant::Unroll(f) => format!("unroll(x{f})"),
            TransformVariant::UnrollGrouped(f) => format!("unroll-grouped(x{f})"),
            TransformVariant::StripMine(t) => format!("strip-mine({t})"),
            TransformVariant::SerializeInner => "serialize-inner".to_string(),
            TransformVariant::ReductionToGrouped(g) => format!("reduction-to-grouped({g})"),
            TransformVariant::Simplify => "simplify".to_string(),
        }
    }

    /// Apply the rewrite to every kernel of `p`. Returns whether any
    /// kernel changed. Transforms that do not match a kernel's shape
    /// (e.g. strip-mining a rank-2 nest) skip it, exactly as the
    /// simulated compilers do.
    pub fn apply(&self, p: &mut paccport_ir::Program) -> bool {
        let env = KindEnv::for_program(p);
        let mut names = std::mem::take(&mut p.var_names);
        let mut changed = false;
        {
            let mut va = VarAlloc::new(&mut names);
            p.map_kernels(|k| {
                changed |= match self {
                    TransformVariant::Unroll(f) => unroll_inner_loops(k, *f, &env),
                    TransformVariant::UnrollGrouped(f) => unroll_grouped_phases(k, *f, &env),
                    TransformVariant::StripMine(t) => strip_mine(k, *t, &mut va, &env),
                    TransformVariant::SerializeInner => serialize_inner_loops(k, 1),
                    TransformVariant::ReductionToGrouped(g) => reduction_to_grouped(k, *g, &mut va),
                    TransformVariant::Simplify => {
                        let before = k.clone();
                        simplify_kernel_in(k, &env);
                        *k != before
                    }
                };
            });
        }
        p.var_names = names;
        changed
    }
}

/// Does the block contain any sequential inner loop?
pub fn has_inner_loop(b: &Block) -> bool {
    let mut found = false;
    b.walk(&mut |s| {
        if matches!(s, Stmt::For { .. }) {
            found = true;
        }
    });
    found
}

/// Does the block accumulate into a scalar (`acc = acc ⊕ e`) inside a
/// loop? This is the pattern CAPS's CUDA back end fails to unroll in
/// Back Propagation.
pub fn has_scalar_accumulation(b: &Block) -> bool {
    let mut found = false;
    b.walk(&mut |s| {
        if let Stmt::For { body, .. } = s {
            for inner in &body.0 {
                if let Stmt::Assign { var, value } = inner {
                    if value.uses_var(*var) {
                        found = true;
                    }
                }
            }
        }
    });
    found
}

/// Unroll every innermost sequential loop of a simple kernel body by
/// `factor`, with an epilogue loop for the remainder. Returns whether
/// any loop was transformed.
pub fn unroll_inner_loops(k: &mut Kernel, factor: u32, env: &KindEnv) -> bool {
    unroll_inner_loops_filtered(k, factor, false, env)
}

/// Like [`unroll_inner_loops`], but with `skip_accum = true` loops
/// that accumulate into a scalar (`acc = acc + e`) are left alone —
/// PGI's `-Munroll` behaviour, which explains why LUD's PTX did not
/// change under PGI while Gaussian elimination's nearly doubled.
pub fn unroll_inner_loops_filtered(
    k: &mut Kernel,
    factor: u32,
    skip_accum: bool,
    env: &KindEnv,
) -> bool {
    assert!(factor >= 2);
    let KernelBody::Simple(body) = &mut k.body else {
        return false;
    };
    let mut changed = false;
    *body = unroll_block_filtered(body, factor, &mut changed, skip_accum);
    if changed {
        // Fold the `i + 0` / `(n / F) * F` debris a real
        // source-to-source compiler would never emit.
        simplify_kernel_in(k, env);
        paccport_trace::add("transforms.unroll_inner_loops", 1);
    }
    changed
}

fn body_accumulates(b: &Block) -> bool {
    b.0.iter().any(|s| match s {
        Stmt::Assign { var, value } => value.uses_var(*var),
        _ => false,
    })
}

fn unroll_block(b: &Block, factor: u32, changed: &mut bool) -> Block {
    unroll_block_filtered(b, factor, changed, false)
}

fn unroll_block_filtered(b: &Block, factor: u32, changed: &mut bool, skip_accum: bool) -> Block {
    let mut out = Vec::with_capacity(b.0.len());
    for s in &b.0 {
        match s {
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } if *step >= 1 && !has_inner_loop(body) && !(skip_accum && body_accumulates(body)) => {
                *changed = true;
                let f = factor as i64;
                let s = *step;
                // iters = (hi - lo + s - 1) / s; main covers
                // (iters / F) * F iterations, i.e. advances by s each.
                let span = Expr::bin(BinOp::Sub, hi.clone(), lo.clone());
                let iters = Expr::bin(
                    BinOp::Div,
                    Expr::bin(BinOp::Add, span, Expr::iconst(s - 1)),
                    Expr::iconst(s),
                );
                let main_iters = Expr::bin(
                    BinOp::Mul,
                    Expr::bin(BinOp::Div, iters, Expr::iconst(f)),
                    Expr::iconst(f),
                );
                // main_hi = lo + main_iters * s
                let main_hi = Expr::bin(
                    BinOp::Add,
                    lo.clone(),
                    Expr::bin(BinOp::Mul, main_iters, Expr::iconst(s)),
                );
                let mut unrolled = Vec::new();
                for u in 0..factor {
                    let shifted = if u == 0 {
                        body.clone()
                    } else {
                        body.subst_var(
                            *var,
                            &Expr::bin(BinOp::Add, Expr::var(*var), Expr::iconst(u as i64 * s)),
                        )
                    };
                    unrolled.extend(shifted.0);
                }
                out.push(Stmt::For {
                    var: *var,
                    lo: lo.clone(),
                    hi: main_hi.clone(),
                    step: s * f,
                    body: Block::new(unrolled),
                });
                // Remainder.
                out.push(Stmt::For {
                    var: *var,
                    lo: main_hi,
                    hi: hi.clone(),
                    step: s,
                    body: body.clone(),
                });
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => out.push(Stmt::For {
                var: *var,
                lo: lo.clone(),
                hi: hi.clone(),
                step: *step,
                body: unroll_block_filtered(body, factor, changed, skip_accum),
            }),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_blk: unroll_block_filtered(then_blk, factor, changed, skip_accum),
                else_blk: unroll_block_filtered(else_blk, factor, changed, skip_accum),
            }),
            other => out.push(other.clone()),
        }
    }
    Block::new(out)
}

/// Move the parallel loops below `keep` into the kernel body as
/// sequential `For` statements — how PGI serializes the inner loops of
/// a nest it distributes one-dimensionally ("[128,1] … to execute the
/// outer loop in parallel and the inner loop sequentially").
///
/// Making the serialization explicit in the IR lets `-Munroll` operate
/// on exactly the loop PGI unrolls in the paper's Gaussian-elimination
/// experiment.
pub fn serialize_inner_loops(k: &mut Kernel, keep: usize) -> bool {
    if k.loops.len() <= keep || keep == 0 {
        return false;
    }
    // A region reduction samples its value once per *parallel*
    // iteration; folding parallel loops into the body would change
    // which iterations contribute. Leave such kernels alone (the
    // lowering serializes the extra loops itself, correctly).
    if k.region_reduction.is_some() {
        return false;
    }
    let KernelBody::Simple(body) = &k.body else {
        return false;
    };
    let mut inner = body.clone();
    for lp in k.loops[keep..].iter().rev() {
        inner = Block::new(vec![Stmt::For {
            var: lp.var,
            lo: lp.lo.clone(),
            hi: lp.hi.clone(),
            step: 1,
            body: inner,
        }]);
    }
    k.loops.truncate(keep);
    k.body = KernelBody::Simple(inner);
    paccport_trace::add("transforms.serialize_inner_loops", 1);
    true
}

/// Unroll the strided accumulation loops inside a grouped (reduction)
/// body — what CAPS's OpenCL back end managed on Back Propagation
/// while its CUDA back end did not (Section V-D1).
pub fn unroll_grouped_phases(k: &mut Kernel, factor: u32, env: &KindEnv) -> bool {
    let KernelBody::Grouped(g) = &mut k.body else {
        return false;
    };
    let mut changed = false;
    for phase in &mut g.phases {
        *phase = unroll_block(phase, factor, &mut changed);
    }
    if changed {
        simplify_kernel_in(k, env);
        paccport_trace::add("transforms.unroll_grouped_phases", 1);
    }
    changed
}

/// Strip-mine a rank-1, flat-body kernel into a 2-D nest of tiles —
/// CAPS's `tile` implementation: the loop is reshaped so 2-D gridify
/// applies, but **no shared-memory staging is generated** (the paper:
/// "tiling in CAPS did not use shared memory in GPU because no
/// ld.shared or st.shared instructions have been found").
///
/// Returns whether the kernel was transformed.
pub fn strip_mine(k: &mut Kernel, tile: u32, va: &mut VarAlloc<'_>, env: &KindEnv) -> bool {
    if k.loops.len() != 1 {
        return false;
    }
    // A region reduction combines its value once per parallel
    // iteration — including the guard-padded iterations strip-mining
    // introduces when the range does not divide by the tile size,
    // which would corrupt the reduced result (and can read the guard
    // variable out of bounds). Refuse, as serialize_inner_loops does.
    if k.region_reduction.is_some() {
        return false;
    }
    let KernelBody::Simple(body) = &k.body else {
        return false;
    };
    let body = body.clone();
    let old = k.loops[0].clone();
    let t = tile as i64;
    let span = Expr::bin(BinOp::Sub, old.hi.clone(), old.lo.clone());
    let n_tiles = Expr::bin(
        BinOp::Div,
        Expr::bin(BinOp::Add, span, Expr::iconst(t - 1)),
        Expr::iconst(t),
    );
    let ii = va.fresh("tile_i");
    let tt = va.fresh("tile_t");
    let reconstructed = Expr::bin(
        BinOp::Add,
        old.lo.clone(),
        Expr::bin(
            BinOp::Add,
            Expr::bin(BinOp::Mul, Expr::var(ii), Expr::iconst(t)),
            Expr::var(tt),
        ),
    );
    let guarded = Block::new(vec![
        Stmt::Let {
            var: old.var,
            ty: Scalar::I32,
            init: reconstructed,
        },
        Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::var(old.var), old.hi.clone()),
            then_blk: body,
            else_blk: Block::default(),
        },
    ]);
    let mut outer = ParallelLoop::new(ii, Expr::iconst(0), n_tiles);
    outer.clauses = old.clauses.clone();
    outer.clauses.tile = None;
    let mut inner = ParallelLoop::new(tt, Expr::iconst(0), Expr::iconst(t));
    inner.clauses.independent = old.clauses.independent;
    k.loops = vec![outer, inner];
    k.body = KernelBody::Simple(guarded);
    simplify_kernel_in(k, env);
    paccport_trace::add("transforms.strip_mine", 1);
    true
}

/// Recognize `let acc = init; for k in lo..hi { acc = acc + e }; rest`
/// and rewrite it as a work-group tree reduction with shared memory
/// and barriers (the paper's Fig. 13 pattern; emitted by both CAPS and
/// PGI for the `reduction` directive, producing the observed
/// `st.shared`/`ld.shared` instructions).
///
/// Returns whether the kernel was transformed.
pub fn reduction_to_grouped(k: &mut Kernel, group_size: u32, va: &mut VarAlloc<'_>) -> bool {
    assert!(group_size.is_power_of_two(), "group size must be 2^k");
    let KernelBody::Simple(body) = &k.body else {
        return false;
    };
    if k.loops.len() != 1 || body.0.len() < 2 {
        return false;
    }
    // Match the accumulation prefix.
    let (acc, acc_ty, init) = match &body.0[0] {
        Stmt::Let { var, ty, init } => (*var, *ty, init.clone()),
        _ => return false,
    };
    let (kvar, lo, hi, term) = match &body.0[1] {
        Stmt::For {
            var,
            lo,
            hi,
            step: 1,
            body: fb,
        } if fb.0.len() == 1 => match &fb.0[0] {
            Stmt::Assign { var: a, value } if *a == acc => {
                let term = match value {
                    Expr::Bin(BinOp::Add, l, r) => {
                        if **l == Expr::var(acc) {
                            (**r).clone()
                        } else if **r == Expr::var(acc) {
                            (**l).clone()
                        } else {
                            return false;
                        }
                    }
                    Expr::Fma(a1, b1, c1) if **c1 == Expr::var(acc) => {
                        Expr::bin(BinOp::Mul, (**a1).clone(), (**b1).clone())
                    }
                    _ => return false,
                };
                (*var, lo.clone(), hi.clone(), term)
            }
            _ => return false,
        },
        _ => return false,
    };
    let rest: Vec<Stmt> = body.0[2..].to_vec();

    let sdata = ArrayId(0); // local table slot 0
    let tid = va.fresh("tid");
    let g = group_size as i64;

    // Phase 1: strided partial accumulation + store to shared.
    let phase1 = Block::new(vec![
        Stmt::Let {
            var: tid,
            ty: Scalar::I32,
            init: Expr::Special(SpecialVar::LocalId(0)),
        },
        Stmt::Let {
            var: acc,
            ty: acc_ty,
            init,
        },
        Stmt::For {
            var: kvar,
            lo: Expr::bin(BinOp::Add, lo, Expr::var(tid)),
            hi,
            step: g,
            body: Block::new(vec![Stmt::Assign {
                var: acc,
                value: Expr::bin(BinOp::Add, Expr::var(acc), term),
            }]),
        },
        Stmt::Store {
            space: paccport_ir::MemSpace::Local,
            array: sdata,
            index: Expr::var(tid),
            value: Expr::var(acc),
        },
    ]);

    // Tree phases: s = 1, 2, 4, … (Fig. 13's loop, one phase per step
    // so a barrier separates them).
    let mut phases = vec![phase1];
    let mut s = 1i64;
    while s < g {
        let cond = Expr::cmp(
            CmpOp::Eq,
            Expr::bin(BinOp::Rem, Expr::var(tid), Expr::iconst(2 * s)),
            Expr::iconst(0),
        );
        phases.push(Block::new(vec![Stmt::If {
            cond,
            then_blk: Block::new(vec![Stmt::Store {
                space: paccport_ir::MemSpace::Local,
                array: sdata,
                index: Expr::var(tid),
                value: Expr::bin(
                    BinOp::Add,
                    Expr::load_local(sdata, Expr::var(tid)),
                    Expr::load_local(
                        sdata,
                        Expr::bin(BinOp::Add, Expr::var(tid), Expr::iconst(s)),
                    ),
                ),
            }]),
            else_blk: Block::default(),
        }]));
        s *= 2;
    }

    // Final phase: thread 0 re-reads the total and runs the epilogue.
    let mut fin = vec![Stmt::Assign {
        var: acc,
        value: Expr::load_local(sdata, Expr::iconst(0)),
    }];
    fin.extend(rest);
    phases.push(Block::new(vec![Stmt::If {
        cond: Expr::cmp(CmpOp::Eq, Expr::var(tid), Expr::iconst(0)),
        then_blk: Block::new(fin),
        else_blk: Block::default(),
    }]));

    k.body = KernelBody::Grouped(GroupedBody {
        group_size,
        locals: vec![LocalArrayDecl {
            name: "sdata".into(),
            // The shared buffer must carry the accumulator's type: an
            // F32 buffer under an I32 (or F64) accumulator silently
            // coerces every partial sum.
            elem: acc_ty,
            len: group_size as usize,
        }],
        phases,
    });
    paccport_trace::add("transforms.reduction_to_grouped", 1);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{assign, for_, ld, let_, st, ProgramBuilder, E};
    use paccport_ir::{HostStmt, Intent, ParamId};

    fn accum_kernel() -> (paccport_ir::Program, Kernel) {
        // out[j] = sum_k in[k] * w[k*n + j]
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let m = b.iparam("m");
        let input = b.array("in", Scalar::F32, n, Intent::In);
        let w = b.array("w", Scalar::F32, E::from(n) * m, Intent::In);
        let out = b.array("out", Scalar::F32, m, Intent::Out);
        let j = b.var("j");
        let kv = b.var("k");
        let sum = b.var("sum");
        let k = Kernel::simple(
            "forward",
            vec![ParallelLoop::new(j, Expr::iconst(0), Expr::param(m))],
            Block::new(vec![
                let_(sum, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(
                        sum,
                        E::from(sum) + ld(input, kv) * ld(w, E::from(kv) * m + j),
                    )],
                ),
                st(out, j, E::from(sum)),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        (p, k)
    }

    #[test]
    fn unroll_duplicates_innermost_body() {
        let (_p, mut k) = accum_kernel();
        assert!(unroll_inner_loops(&mut k, 4, &KindEnv::new()));
        let body = k.simple_body().unwrap();
        // Two loops now: main (step 4) and remainder (step 1).
        let fors: Vec<_> = body
            .0
            .iter()
            .filter_map(|s| match s {
                Stmt::For { step, body, .. } => Some((*step, body.0.len())),
                _ => None,
            })
            .collect();
        assert_eq!(fors.len(), 2);
        assert_eq!(fors[0], (4, 4)); // 4 copies of the 1-stmt body
        assert_eq!(fors[1], (1, 1));
    }

    #[test]
    fn unroll_skips_kernels_without_inner_loops() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = Kernel::simple(
            "flat",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        assert!(!unroll_inner_loops(&mut k, 8, &KindEnv::new()));
    }

    #[test]
    fn strip_mine_creates_guarded_2d_nest() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = Kernel::simple(
            "flat",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        let mut p = b.finish(vec![]);
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(strip_mine(&mut k, 32, &mut va, &KindEnv::new()));
        assert_eq!(k.loops.len(), 2);
        // Guard present.
        let body = k.simple_body().unwrap();
        assert!(matches!(body.0[1], Stmt::If { .. }));
    }

    #[test]
    fn strip_mine_declines_nested_kernels() {
        let (mut p, mut k) = accum_kernel();
        let mut va = VarAlloc::new(&mut p.var_names);
        // Rank-1 but let's check the rank-2 refusal too.
        let j2 = va.fresh("j2");
        k.loops.push(ParallelLoop::new(
            j2,
            Expr::iconst(0),
            Expr::param(ParamId(0)),
        ));
        assert!(!strip_mine(&mut k, 32, &mut va, &KindEnv::new()));
    }

    #[test]
    fn reduction_transform_builds_tree_phases() {
        let (mut p, mut k) = accum_kernel();
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(reduction_to_grouped(&mut k, 128, &mut va));
        match &k.body {
            KernelBody::Grouped(g) => {
                assert_eq!(g.group_size, 128);
                // 1 accumulate + log2(128)=7 tree + 1 final.
                assert_eq!(g.phases.len(), 1 + 7 + 1);
                assert_eq!(g.locals.len(), 1);
                assert_eq!(g.locals[0].len, 128);
            }
            _ => panic!("expected grouped body"),
        }
    }

    #[test]
    fn reduction_transform_keeps_accumulator_type_for_sdata() {
        // Regression: the shared buffer was hardcoded to F32, so an
        // I32 accumulator had its partial sums coerced through float
        // on every round trip to local memory.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let m = b.iparam("m");
        let input = b.array("in", Scalar::I32, n, Intent::In);
        let out = b.array("out", Scalar::I32, m, Intent::Out);
        let j = b.var("j");
        let kv = b.var("k");
        let sum = b.var("sum");
        let mut k = Kernel::simple(
            "count",
            vec![ParallelLoop::new(j, Expr::iconst(0), Expr::param(m))],
            Block::new(vec![
                let_(sum, Scalar::I32, 0i64),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(sum, E::from(sum) + ld(input, kv))],
                ),
                st(out, j, E::from(sum)),
            ]),
        );
        let mut p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(reduction_to_grouped(&mut k, 8, &mut va));
        match &k.body {
            KernelBody::Grouped(g) => {
                assert_eq!(g.locals[0].elem, Scalar::I32, "sdata must carry acc_ty");
            }
            _ => panic!("expected grouped body"),
        }
    }

    #[test]
    fn reduction_transform_rejects_non_matching_bodies() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut k = Kernel::simple(
            "flat",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        let mut p = b.finish(vec![]);
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(!reduction_to_grouped(&mut k, 128, &mut va));
    }

    #[test]
    fn accumulation_detection() {
        let (_p, k) = accum_kernel();
        assert!(has_scalar_accumulation(k.simple_body().unwrap()));
        assert!(has_inner_loop(k.simple_body().unwrap()));
    }
}
