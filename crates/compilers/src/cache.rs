//! Content-addressed memoization of compilation results.
//!
//! The experiment matrix in `paccport-core` compiles the same
//! (program, compiler, options) triple many times — e.g. the LUD
//! ThreadDist variant is compiled for fig. 3, again for the fig. 4
//! sweeps, and again for the fig. 6 PTX histograms. [`ArtifactCache`]
//! collapses those into a single compile per unique key, which is what
//! makes the parallel engine cheap enough to fan the whole paper out.
//!
//! Keys are content hashes, not identities: two structurally identical
//! programs built by different call sites share an entry, and mutating
//! a single clause (say `independent` on one loop) changes the key.
//! The fingerprint is computed from the program's `Debug` rendering,
//! which in this IR is a complete structural dump.
//!
//! Concurrency: each key maps to a [`OnceLock`] slot, so when several
//! workers race on the same key, exactly one runs the compiler and the
//! rest block until the result is published (singleflight). Hits and
//! misses are counted and mirrored to `paccport-trace` counters
//! (`cache.hit` / `cache.miss`) when tracing is on.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use paccport_ir::Program;

use crate::artifact::{CompileError, CompiledProgram};
use crate::options::{CompileOptions, CompilerId};

/// Cache key: compiler personality + full option set + program content.
///
/// Options are keyed by their `Debug` form — `CompileOptions` derives
/// `Debug` over every field (backend, target, host compiler, flags,
/// quirks), so any option change is a different key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    compiler: CompilerId,
    options: String,
    program: u128,
}

impl CacheKey {
    pub fn new(compiler: CompilerId, program: &Program, options: &CompileOptions) -> Self {
        CacheKey {
            compiler,
            options: format!("{options:?}"),
            program: fingerprint(program),
        }
    }

    /// Filesystem-safe entry name for a backing [`ArtifactStore`]:
    /// compiler tag + option hash + program fingerprint, all content-
    /// derived, so the same key names the same file across processes.
    pub fn storage_name(&self) -> String {
        format!(
            "{}-{:016x}-{:032x}",
            crate::diskfmt::compiler_tag(self.compiler),
            fnv1a64(self.options.as_bytes(), 0xcbf2_9ce4_8422_2325),
            self.program
        )
    }
}

/// A durable backing tier for [`ArtifactCache`]: entries are the
/// [`crate::diskfmt`] records of compiled artifacts, keyed by
/// [`CacheKey::storage_name`]. Implementations live outside this
/// crate (the persist layer's checksummed file store); the trait
/// keeps this crate ignorant of filesystems.
///
/// Contract: `load` returns whatever bytes were last stored (or
/// `None`), with any transport-level integrity checking already done;
/// the cache still decodes defensively and treats undecodable
/// payloads as absent, evicting them.
pub trait ArtifactStore: Send + Sync {
    fn load(&self, name: &str) -> Option<String>;
    fn store(&self, name: &str, payload: &str);
    fn evict(&self, name: &str);
}

/// 128-bit content fingerprint of a program: two independent FNV-1a-64
/// passes over the structural `Debug` dump. FNV is not cryptographic,
/// but 128 bits over a few-KB input makes accidental collisions across
/// an experiment matrix of dozens of programs a non-concern.
pub fn fingerprint(program: &Program) -> u128 {
    let text = format!("{program:?}");
    let lo = fnv1a64(text.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let hi = fnv1a64(text.as_bytes(), 0x6c62_272e_07bb_0142);
    ((hi as u128) << 64) | lo as u128
}

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Content checksum of an artifact — same FNV construction as the key
/// fingerprint, over the artifact's structural dump. Stored when an
/// entry is built, re-verified on every read.
pub fn artifact_checksum(c: &CompiledProgram) -> u64 {
    fnv1a64(format!("{c:?}").as_bytes(), 0xcbf2_9ce4_8422_2325)
}

/// One cache entry: a singleflight slot plus the checksum recorded
/// when the artifact was built. `stored_sum` is written inside the
/// slot's initializer (so the `OnceLock`'s release/acquire ordering
/// publishes it); the `corrupt-cache` fault flips it *at write time*
/// to simulate an artifact going stale on disk, and every read
/// re-verifies it.
struct Entry {
    slot: OnceLock<Result<Arc<CompiledProgram>, CompileError>>,
    stored_sum: AtomicU64,
    /// Bumped per *key* on every (re)insertion, so fault decisions
    /// about "this physical copy" are keyed per generation — and,
    /// because the counter is per key rather than global, the decision
    /// sequence is identical no matter how worker threads interleave.
    generation: u64,
    /// Resident size (the artifact's durable encoding length); written
    /// inside the slot initializer, `0` for error entries.
    bytes: AtomicU64,
    /// LRU stamp from the cache's use-clock, refreshed on every lookup.
    last_use: AtomicU64,
    /// Whether this entry's bytes are currently counted against the
    /// cache totals (set once on insert, cleared once on eviction —
    /// guards against double accounting under racing evictors).
    accounted: AtomicBool,
    /// The tenant whose compile inserted the entry (see
    /// [`tenant_scope`]); its bytes count against that tenant's quota.
    tenant: Mutex<Option<String>>,
}

impl Entry {
    fn new(generation: u64) -> Self {
        Entry {
            slot: OnceLock::new(),
            stored_sum: AtomicU64::new(0),
            generation,
            bytes: AtomicU64::new(0),
            last_use: AtomicU64::new(0),
            accounted: AtomicBool::new(false),
            tenant: Mutex::new(None),
        }
    }
}

thread_local! {
    static CURRENT_TENANT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The tenant new cache entries are attributed to on this thread
/// (`None` — the default — is the anonymous tenant, exempt from
/// quotas). The serving layer sets it per request from the `X-Tenant`
/// header via [`tenant_scope`].
pub fn current_tenant() -> Option<String> {
    CURRENT_TENANT.with(|c| c.borrow().clone())
}

/// Attribute cache inserts on this thread to `tenant` until the
/// returned guard drops (which restores the previous attribution).
pub fn tenant_scope(tenant: Option<String>) -> TenantScope {
    let prev = CURRENT_TENANT.with(|c| c.replace(tenant));
    TenantScope { prev }
}

/// Guard from [`tenant_scope`]; restores the prior tenant on drop.
pub struct TenantScope {
    prev: Option<String>,
}

impl Drop for TenantScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_TENANT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Capacity limits, both off by default. `byte_cap` bounds the whole
/// cache; `tenant_quota` bounds each named tenant's share.
#[derive(Default, Clone, Copy)]
struct Limits {
    byte_cap: Option<u64>,
    tenant_quota: Option<u64>,
}

/// Byte accounting: resident total plus each named tenant's share.
#[derive(Default)]
struct Acct {
    total: u64,
    tenants: HashMap<String, u64>,
}

/// Bounded evict-and-recompile rounds before a persistently faulty
/// key is given up on. Each round rolls fresh fault decisions (the
/// generation advances), so with realistic injection rates a key
/// recovers in one or two rounds; exhausting all of them needs rates
/// near 1.
const MAX_CORRUPT_ROUNDS: usize = 4;

/// Thread-safe, singleflight compile cache with read-side integrity
/// verification: every hit re-checksums the artifact against the sum
/// recorded at build time, and a mismatch evicts and recompiles
/// instead of serving the poisoned entry.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<CacheKey, Arc<Entry>>>,
    /// Next generation number per key (kept across evictions).
    generations: Mutex<HashMap<CacheKey, u64>>,
    /// Optional durable backing tier (see [`ArtifactStore`]).
    disk: Mutex<Option<Arc<dyn ArtifactStore>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone use-clock behind the entries' LRU stamps.
    clock: AtomicU64,
    limits: Mutex<Limits>,
    acct: Mutex<Acct>,
    lru_evictions: AtomicU64,
}

impl ArtifactCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a durable backing store. Compiles first consult it
    /// (decoded entries skip the compiler entirely) and publish fresh
    /// artifacts back to it.
    pub fn set_store(&self, store: Arc<dyn ArtifactStore>) {
        *self.disk.lock().unwrap() = Some(store);
    }

    fn disk(&self) -> Option<Arc<dyn ArtifactStore>> {
        self.disk.lock().unwrap().clone()
    }

    /// Compile through the cache. The first caller for a key runs
    /// [`crate::compile`] and every later (or concurrent) caller gets
    /// the shared artifact. Genuine errors are cached the same way,
    /// since a deterministic compiler fails identically on retry.
    ///
    /// Injected faults are recovered *inside* the cache: a transient
    /// compile failure or a corrupted artifact evicts the entry and
    /// rolls a fresh round, with the fault-decision attempt pinned to
    /// the entry's per-key generation. That makes the cache's outcome
    /// for a key a pure function of (key, fault seed) — which thread
    /// warms the cache, or how many jobs race on it, cannot change
    /// what anyone is served. Read-side integrity is still verified on
    /// every hit via [`artifact_checksum`].
    pub fn compile(
        &self,
        id: CompilerId,
        program: &Program,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let saved = paccport_faults::current_attempt();
        let r = self.compile_rounds(id, program, options);
        paccport_faults::set_attempt(saved);
        r
    }

    fn compile_rounds(
        &self,
        id: CompilerId,
        program: &Program,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let key = CacheKey::new(id, program, options);
        let mut last_injected: Option<CompileError> = None;
        for _ in 0..MAX_CORRUPT_ROUNDS {
            let entry = self.entry(&key);
            let mut fresh = false;
            let result = entry.slot.get_or_init(|| {
                fresh = true;
                // Fault decisions made while compiling (compile-fail,
                // slow-compile, write-time corruption) are keyed by
                // the entry's generation, not the calling job's retry
                // attempt: the compiler runs once per generation no
                // matter who triggers it.
                paccport_faults::set_attempt(entry.generation as u32);
                // Durable tier first: a decoded disk entry skips the
                // compiler (and with it the compile-time fault sites —
                // the entry was verified when first built; its
                // integrity is the disk format's own checksums).
                let disk = self.disk();
                if let Some(store) = &disk {
                    let name = key.storage_name();
                    if let Some(payload) = store.load(&name) {
                        match crate::diskfmt::decode_artifact(&payload) {
                            Ok(c) => {
                                paccport_trace::metrics::counter_add(
                                    "disk_cache_hit_total",
                                    &[],
                                    1,
                                );
                                let c = Arc::new(c);
                                entry
                                    .stored_sum
                                    .store(artifact_checksum(&c), Ordering::Relaxed);
                                entry.bytes.store(payload.len() as u64, Ordering::Relaxed);
                                *entry.tenant.lock().unwrap() = current_tenant();
                                return Ok(c);
                            }
                            Err(_) => {
                                // Transport said intact but the record
                                // does not decode (version skew, codec
                                // drift): treat as absent.
                                store.evict(&name);
                                paccport_trace::metrics::counter_add(
                                    "disk_cache_evict_total",
                                    &[],
                                    1,
                                );
                            }
                        }
                    }
                    paccport_trace::metrics::counter_add("disk_cache_miss_total", &[], 1);
                }
                let r = crate::compile(id, program, options).map(Arc::new);
                if let Ok(c) = &r {
                    let mut sum = artifact_checksum(c);
                    // The corrupt-cache fault strikes the physical
                    // copy as it is written; readers detect the
                    // mismatch below and evict.
                    let fault_key = format!("cache:{:#034x}:gen{}", key.program, entry.generation);
                    let corrupted = paccport_faults::inject(
                        paccport_faults::FaultKind::CorruptCache,
                        &fault_key,
                    );
                    if corrupted {
                        sum = !sum;
                    }
                    entry.stored_sum.store(sum, Ordering::Relaxed);
                    let encoded = crate::diskfmt::encode_artifact(c);
                    entry.bytes.store(encoded.len() as u64, Ordering::Relaxed);
                    *entry.tenant.lock().unwrap() = current_tenant();
                    // Publish clean builds to the durable tier. A
                    // corrupt-cache generation is not published: the
                    // in-memory evict-and-recompile round must play
                    // out exactly as without a store.
                    if !corrupted {
                        if let Some(store) = &disk {
                            store.store(&key.storage_name(), &encoded);
                        }
                    }
                }
                r
            });
            entry.last_use.store(
                self.clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
            if fresh {
                self.misses.fetch_add(1, Ordering::Relaxed);
                paccport_trace::add("cache.miss", 1);
                if result.is_ok() {
                    self.account_insert(&entry);
                    self.enforce_caps();
                }
            } else {
                self.hits.fetch_add(1, Ordering::Relaxed);
                paccport_trace::add("cache.hit", 1);
            }
            match result {
                Ok(c) => {
                    if artifact_checksum(c) == entry.stored_sum.load(Ordering::Relaxed) {
                        return Ok(Arc::clone(c));
                    }
                    // Integrity failure: never serve the entry — evict
                    // and recompile under the next generation.
                    paccport_trace::add("cache.corrupt_evicted", 1);
                    self.evict(&key, &entry);
                }
                Err(e) if paccport_faults::is_injected(&e.message) => {
                    // Transient by construction: evict so the next
                    // round recompiles under a fresh generation.
                    self.evict(&key, &entry);
                    last_injected = Some(e.clone());
                }
                Err(e) => return Err(e.clone()),
            }
        }
        Err(last_injected.unwrap_or_else(|| CompileError {
            compiler: id,
            message: format!(
                "{} persistent artifact corruption for `{}` ({MAX_CORRUPT_ROUNDS} rebuilds discarded)",
                paccport_faults::INJECTED,
                program.name
            ),
        }))
    }

    /// The live entry for `key`, inserted fresh (with the key's next
    /// generation) if absent.
    fn entry(&self, key: &CacheKey) -> Arc<Entry> {
        let mut entries = self.entries.lock().unwrap();
        Arc::clone(entries.entry(key.clone()).or_insert_with(|| {
            let mut gens = self.generations.lock().unwrap();
            let g = gens.entry(key.clone()).or_insert(0);
            let this = *g;
            *g += 1;
            Arc::new(Entry::new(this))
        }))
    }

    /// Remove `key` iff it still maps to this exact entry (a racing
    /// evictor may already have replaced it).
    fn evict(&self, key: &CacheKey, entry: &Arc<Entry>) {
        {
            let mut entries = self.entries.lock().unwrap();
            if entries.get(key).is_some_and(|cur| Arc::ptr_eq(cur, entry)) {
                entries.remove(key);
            }
        }
        self.deduct(entry);
    }

    /// Count a freshly built entry's bytes against the cache totals
    /// (once — the `accounted` flag makes this idempotent).
    fn account_insert(&self, entry: &Arc<Entry>) {
        let bytes = entry.bytes.load(Ordering::Relaxed);
        if bytes == 0 || entry.accounted.swap(true, Ordering::Relaxed) {
            return;
        }
        let tenant = entry.tenant.lock().unwrap().clone();
        let mut acct = self.acct.lock().unwrap();
        acct.total += bytes;
        if let Some(t) = tenant {
            *acct.tenants.entry(t).or_insert(0) += bytes;
        }
    }

    /// Undo [`Self::account_insert`] for an entry leaving the map.
    fn deduct(&self, entry: &Entry) {
        if !entry.accounted.swap(false, Ordering::Relaxed) {
            return;
        }
        let bytes = entry.bytes.load(Ordering::Relaxed);
        let tenant = entry.tenant.lock().unwrap().clone();
        let mut acct = self.acct.lock().unwrap();
        acct.total = acct.total.saturating_sub(bytes);
        if let Some(t) = tenant {
            if let Some(b) = acct.tenants.get_mut(&t) {
                *b = b.saturating_sub(bytes);
                if *b == 0 {
                    acct.tenants.remove(&t);
                }
            }
        }
    }

    /// Evict least-recently-used entries until the resident total is
    /// within the byte cap and every tenant within its quota. The
    /// just-inserted entry is eligible too (it carries the newest LRU
    /// stamp, so it only goes when it is the last one standing — i.e.
    /// when it alone exceeds the cap): `total_bytes() <= cap` holds
    /// unconditionally after every insert.
    fn enforce_caps(&self) {
        let limits = *self.limits.lock().unwrap();
        if limits.byte_cap.is_none() && limits.tenant_quota.is_none() {
            return;
        }
        loop {
            let (reason, tenant_filter): (&'static str, Option<String>) = {
                let acct = self.acct.lock().unwrap();
                let over_cap = limits.byte_cap.is_some_and(|cap| acct.total > cap);
                // Deterministic tenant pick: the lexicographically
                // first tenant over quota.
                let over_tenant: Option<String> = limits.tenant_quota.and_then(|q| {
                    acct.tenants
                        .iter()
                        .filter(|(_, b)| **b > q)
                        .map(|(t, _)| t.clone())
                        .min()
                });
                if over_cap {
                    ("byte-cap", None)
                } else if let Some(t) = over_tenant {
                    ("tenant-quota", Some(t))
                } else {
                    break;
                }
            };
            let victim: Option<(CacheKey, Arc<Entry>, &'static str)> = {
                let entries = self.entries.lock().unwrap();
                entries
                    .iter()
                    .filter(|(_, e)| e.accounted.load(Ordering::Relaxed))
                    .filter(|(_, e)| match &tenant_filter {
                        Some(t) => e.tenant.lock().unwrap().as_deref() == Some(t.as_str()),
                        None => true,
                    })
                    .min_by_key(|(_, e)| e.last_use.load(Ordering::Relaxed))
                    .map(|(k, e)| (k.clone(), Arc::clone(e), reason))
            };
            match victim {
                Some((key, entry, reason)) => {
                    self.lru_evictions.fetch_add(1, Ordering::Relaxed);
                    paccport_trace::metrics::counter_add(
                        "cache_evict_total",
                        &[("reason", reason)],
                        1,
                    );
                    paccport_trace::add("cache.lru_evicted", 1);
                    self.evict(&key, &entry);
                }
                // Over budget but nothing accounted is left to shed —
                // cannot happen while the invariants hold, but never
                // spin on it.
                None => break,
            }
        }
    }

    /// Bound the cache's resident bytes (`None` lifts the bound).
    /// Enforced eagerly: setting a smaller cap evicts immediately.
    pub fn set_byte_cap(&self, cap: Option<u64>) {
        self.limits.lock().unwrap().byte_cap = cap;
        self.enforce_caps();
    }

    /// Bound each named tenant's resident bytes (`None` lifts it).
    /// Anonymous inserts (no [`tenant_scope`]) are exempt.
    pub fn set_tenant_quota(&self, quota: Option<u64>) {
        self.limits.lock().unwrap().tenant_quota = quota;
        self.enforce_caps();
    }

    /// Resident bytes across all cached artifacts.
    pub fn total_bytes(&self) -> u64 {
        self.acct.lock().unwrap().total
    }

    /// Resident bytes attributed to `tenant`.
    pub fn tenant_bytes(&self, tenant: &str) -> u64 {
        self.acct
            .lock()
            .unwrap()
            .tenants
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Entries evicted by the byte cap or a tenant quota (not counting
    /// integrity evictions).
    pub fn lru_evictions(&self) -> u64 {
        self.lru_evictions.load(Ordering::Relaxed)
    }

    /// Flip the stored checksum of an existing entry — the test
    /// handle simulating a truncated/poisoned artifact on disk.
    /// Returns whether the entry existed.
    pub fn poison(&self, id: CompilerId, program: &Program, options: &CompileOptions) -> bool {
        let key = CacheKey::new(id, program, options);
        let entry = {
            let entries = self.entries.lock().unwrap();
            entries.get(&key).cloned()
        };
        match entry {
            Some(e) => {
                let sum = e.stored_sum.load(Ordering::Relaxed);
                e.stored_sum.store(!sum, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Lookups that found an existing artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the compiler (== number of unique keys seen,
    /// i.e. each unique (program, options, device) compiled exactly once).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct artifacts currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Drop all entries and zero the counters and byte accounting.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        let mut acct = self.acct.lock().unwrap();
        acct.total = 0;
        acct.tenants.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
    };

    fn saxpy(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name);
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn identical_requests_compile_once() {
        let cache = ArtifactCache::new();
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let a = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        let b = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structurally_equal_programs_share_an_entry() {
        let cache = ArtifactCache::new();
        let opts = CompileOptions::gpu();
        let a = cache
            .compile(CompilerId::Caps, &saxpy("saxpy"), &opts)
            .unwrap();
        let b = cache
            .compile(CompilerId::Caps, &saxpy("saxpy"), &opts)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_compiler_options_or_program_miss() {
        let cache = ArtifactCache::new();
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        cache.compile(CompilerId::Pgi, &p, &opts).unwrap();
        cache
            .compile(CompilerId::Caps, &p, &CompileOptions::mic())
            .unwrap();
        cache
            .compile(CompilerId::Caps, &saxpy("saxpy2"), &opts)
            .unwrap();
        assert_eq!((cache.misses(), cache.hits()), (4, 0));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn poisoned_entry_is_evicted_and_recompiled() {
        let cache = ArtifactCache::new();
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let a = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert!(cache.poison(CompilerId::Caps, &p, &opts));
        let b = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert_eq!(a, b, "recompiled artifact is byte-identical");
        assert!(!Arc::ptr_eq(&a, &b), "the poisoned copy was not served");
        assert_eq!(cache.misses(), 2, "eviction forced a recompile");
        let c = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert!(Arc::ptr_eq(&b, &c), "the fresh copy verifies clean");
    }

    /// In-memory [`ArtifactStore`] with call accounting.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<String, String>>,
        loads: AtomicU64,
        stores: AtomicU64,
    }

    impl ArtifactStore for MapStore {
        fn load(&self, name: &str) -> Option<String> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            self.map.lock().unwrap().get(name).cloned()
        }
        fn store(&self, name: &str, payload: &str) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert(name.to_string(), payload.to_string());
        }
        fn evict(&self, name: &str) {
            self.map.lock().unwrap().remove(name);
        }
    }

    #[test]
    fn fresh_compiles_publish_to_the_store() {
        let cache = ArtifactCache::new();
        let store = Arc::new(MapStore::default());
        cache.set_store(Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let a = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert_eq!(store.stores.load(Ordering::Relaxed), 1);
        let name = CacheKey::new(CompilerId::Caps, &p, &opts).storage_name();
        let payload = store
            .map
            .lock()
            .unwrap()
            .get(&name)
            .cloned()
            .expect("entry stored");
        assert_eq!(&crate::diskfmt::decode_artifact(&payload).unwrap(), &*a);
    }

    #[test]
    fn a_warm_store_skips_the_compiler() {
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let store = Arc::new(MapStore::default());
        // First process life: compile and publish.
        let first = ArtifactCache::new();
        first.set_store(Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let a = first.compile(CompilerId::Caps, &p, &opts).unwrap();
        // Second process life: cold memory, warm disk.
        let second = ArtifactCache::new();
        second.set_store(Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let b = second.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert_eq!(a, b, "disk round trip must reproduce the artifact exactly");
        assert_eq!(store.stores.load(Ordering::Relaxed), 1, "no second publish");
    }

    #[test]
    fn an_undecodable_store_entry_is_evicted_and_recompiled() {
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let name = CacheKey::new(CompilerId::Caps, &p, &opts).storage_name();
        let store = Arc::new(MapStore::default());
        store
            .map
            .lock()
            .unwrap()
            .insert(name.clone(), "not an artifact record".to_string());
        let cache = ArtifactCache::new();
        cache.set_store(Arc::clone(&store) as Arc<dyn ArtifactStore>);
        let a = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        // The garbage was replaced by the freshly compiled record.
        let payload = store.map.lock().unwrap().get(&name).cloned().unwrap();
        assert_eq!(&crate::diskfmt::decode_artifact(&payload).unwrap(), &*a);
    }

    #[test]
    fn storage_names_are_filesystem_safe_and_distinct() {
        let p = saxpy("saxpy");
        let gpu = CacheKey::new(CompilerId::Caps, &p, &CompileOptions::gpu());
        let mic = CacheKey::new(CompilerId::Caps, &p, &CompileOptions::mic());
        let pgi = CacheKey::new(CompilerId::Pgi, &p, &CompileOptions::gpu());
        let names = [gpu.storage_name(), mic.storage_name(), pgi.storage_name()];
        for n in &names {
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
                "{n}"
            );
        }
        assert_ne!(names[0], names[1]);
        assert_ne!(names[0], names[2]);
        // Stable across processes: derived from content only.
        assert_eq!(
            gpu.storage_name(),
            CacheKey::new(CompilerId::Caps, &p, &CompileOptions::gpu()).storage_name()
        );
    }

    #[test]
    fn poisoning_an_absent_key_reports_false() {
        let cache = ArtifactCache::new();
        assert!(!cache.poison(CompilerId::Caps, &saxpy("saxpy"), &CompileOptions::gpu()));
    }

    #[test]
    fn checksum_distinguishes_artifacts() {
        let opts = CompileOptions::gpu();
        let a = crate::compile(CompilerId::Caps, &saxpy("a"), &opts).unwrap();
        let b = crate::compile(CompilerId::Caps, &saxpy("b"), &opts).unwrap();
        assert_eq!(artifact_checksum(&a), artifact_checksum(&a));
        assert_ne!(artifact_checksum(&a), artifact_checksum(&b));
    }

    #[test]
    fn byte_cap_evicts_least_recently_used_first() {
        let cache = ArtifactCache::new();
        let opts = CompileOptions::gpu();
        let a = saxpy("a");
        let b = saxpy("b");
        cache.compile(CompilerId::Caps, &a, &opts).unwrap();
        let per_entry = cache.total_bytes();
        assert!(per_entry > 0, "entries are sized");
        cache.compile(CompilerId::Caps, &b, &opts).unwrap();
        // Touch `a` so `b` is the LRU entry, then cap to one entry.
        cache.compile(CompilerId::Caps, &a, &opts).unwrap();
        cache.set_byte_cap(Some(per_entry + per_entry / 2));
        assert_eq!(cache.len(), 1);
        assert!(cache.total_bytes() <= per_entry + per_entry / 2);
        assert_eq!(cache.lru_evictions(), 1);
        // `a` survived: compiling it again is a hit, `b` a miss.
        let hits = cache.hits();
        cache.compile(CompilerId::Caps, &a, &opts).unwrap();
        assert_eq!(cache.hits(), hits + 1, "the recently used entry survived");
        let misses = cache.misses();
        let b1 = cache.compile(CompilerId::Caps, &b, &opts).unwrap();
        assert_eq!(cache.misses(), misses + 1, "the LRU entry was evicted");
        // Evict→recompile round-trips bitwise.
        cache.set_byte_cap(None);
        let b2 = crate::compile(CompilerId::Caps, &b, &opts).unwrap();
        assert_eq!(*b1, b2);
    }

    #[test]
    fn an_entry_larger_than_the_cap_is_not_retained() {
        let cache = ArtifactCache::new();
        cache.set_byte_cap(Some(1));
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        // Still served to the caller…
        cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        // …but not kept resident: the invariant holds even then.
        assert_eq!(cache.total_bytes(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn tenant_quota_isolates_tenants() {
        let cache = ArtifactCache::new();
        let opts = CompileOptions::gpu();
        let probe = {
            let c = ArtifactCache::new();
            c.compile(CompilerId::Caps, &saxpy("a"), &opts).unwrap();
            c.total_bytes()
        };
        // Quota admits one entry per tenant but not two.
        cache.set_tenant_quota(Some(probe + probe / 2));
        {
            let _t = tenant_scope(Some("alice".into()));
            cache.compile(CompilerId::Caps, &saxpy("a"), &opts).unwrap();
            cache.compile(CompilerId::Caps, &saxpy("b"), &opts).unwrap();
        }
        {
            let _t = tenant_scope(Some("bob".into()));
            cache.compile(CompilerId::Caps, &saxpy("c"), &opts).unwrap();
        }
        assert!(cache.tenant_bytes("alice") <= probe + probe / 2);
        assert_eq!(
            cache.tenant_bytes("bob"),
            probe,
            "bob is untouched by alice's overflow"
        );
        assert_eq!(cache.lru_evictions(), 1);
        // Anonymous inserts are quota-exempt.
        cache.compile(CompilerId::Caps, &saxpy("d"), &opts).unwrap();
        cache.compile(CompilerId::Caps, &saxpy("e"), &opts).unwrap();
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn tenant_scope_nests_and_restores() {
        assert_eq!(current_tenant(), None);
        {
            let _a = tenant_scope(Some("outer".into()));
            assert_eq!(current_tenant().as_deref(), Some("outer"));
            {
                let _b = tenant_scope(Some("inner".into()));
                assert_eq!(current_tenant().as_deref(), Some("inner"));
            }
            assert_eq!(current_tenant().as_deref(), Some("outer"));
        }
        assert_eq!(current_tenant(), None);
    }

    #[test]
    fn concurrent_same_key_is_singleflight() {
        let cache = Arc::new(ArtifactCache::new());
        let p = Arc::new(saxpy("saxpy"));
        let opts = CompileOptions::gpu();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let p = Arc::clone(&p);
                let opts = opts.clone();
                s.spawn(move || {
                    cache.compile(CompilerId::Caps, &p, &opts).unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
