//! Content-addressed memoization of compilation results.
//!
//! The experiment matrix in `paccport-core` compiles the same
//! (program, compiler, options) triple many times — e.g. the LUD
//! ThreadDist variant is compiled for fig. 3, again for the fig. 4
//! sweeps, and again for the fig. 6 PTX histograms. [`ArtifactCache`]
//! collapses those into a single compile per unique key, which is what
//! makes the parallel engine cheap enough to fan the whole paper out.
//!
//! Keys are content hashes, not identities: two structurally identical
//! programs built by different call sites share an entry, and mutating
//! a single clause (say `independent` on one loop) changes the key.
//! The fingerprint is computed from the program's `Debug` rendering,
//! which in this IR is a complete structural dump.
//!
//! Concurrency: each key maps to a [`OnceLock`] slot, so when several
//! workers race on the same key, exactly one runs the compiler and the
//! rest block until the result is published (singleflight). Hits and
//! misses are counted and mirrored to `paccport-trace` counters
//! (`cache.hit` / `cache.miss`) when tracing is on.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use paccport_ir::Program;

use crate::artifact::{CompileError, CompiledProgram};
use crate::options::{CompileOptions, CompilerId};

/// Cache key: compiler personality + full option set + program content.
///
/// Options are keyed by their `Debug` form — `CompileOptions` derives
/// `Debug` over every field (backend, target, host compiler, flags,
/// quirks), so any option change is a different key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    compiler: CompilerId,
    options: String,
    program: u128,
}

impl CacheKey {
    pub fn new(compiler: CompilerId, program: &Program, options: &CompileOptions) -> Self {
        CacheKey {
            compiler,
            options: format!("{options:?}"),
            program: fingerprint(program),
        }
    }
}

/// 128-bit content fingerprint of a program: two independent FNV-1a-64
/// passes over the structural `Debug` dump. FNV is not cryptographic,
/// but 128 bits over a few-KB input makes accidental collisions across
/// an experiment matrix of dozens of programs a non-concern.
pub fn fingerprint(program: &Program) -> u128 {
    let text = format!("{program:?}");
    let lo = fnv1a64(text.as_bytes(), 0xcbf2_9ce4_8422_2325);
    let hi = fnv1a64(text.as_bytes(), 0x6c62_272e_07bb_0142);
    ((hi as u128) << 64) | lo as u128
}

fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

type Slot = Arc<OnceLock<Result<Arc<CompiledProgram>, CompileError>>>;

/// Thread-safe, singleflight compile cache.
#[derive(Default)]
pub struct ArtifactCache {
    entries: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile through the cache. The first caller for a key runs
    /// [`crate::compile`] and every later (or concurrent) caller gets
    /// the shared artifact; errors are cached the same way, since a
    /// deterministic compiler fails identically on retry.
    pub fn compile(
        &self,
        id: CompilerId,
        program: &Program,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let key = CacheKey::new(id, program, options);
        let slot: Slot = {
            let mut entries = self.entries.lock().unwrap();
            Arc::clone(entries.entry(key).or_default())
        };
        let mut fresh = false;
        let result = slot.get_or_init(|| {
            fresh = true;
            crate::compile(id, program, options).map(Arc::new)
        });
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
            paccport_trace::add("cache.miss", 1);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
            paccport_trace::add("cache.hit", 1);
        }
        result.clone()
    }

    /// Lookups that found an existing artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran the compiler (== number of unique keys seen,
    /// i.e. each unique (program, options, device) compiled exactly once).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct artifacts currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().unwrap().is_empty()
    }

    /// Drop all entries and zero the counters.
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
    };

    fn saxpy(name: &str) -> Program {
        let mut b = ProgramBuilder::new(name);
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn identical_requests_compile_once() {
        let cache = ArtifactCache::new();
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        let a = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        let b = cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structurally_equal_programs_share_an_entry() {
        let cache = ArtifactCache::new();
        let opts = CompileOptions::gpu();
        let a = cache
            .compile(CompilerId::Caps, &saxpy("saxpy"), &opts)
            .unwrap();
        let b = cache
            .compile(CompilerId::Caps, &saxpy("saxpy"), &opts)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn different_compiler_options_or_program_miss() {
        let cache = ArtifactCache::new();
        let p = saxpy("saxpy");
        let opts = CompileOptions::gpu();
        cache.compile(CompilerId::Caps, &p, &opts).unwrap();
        cache.compile(CompilerId::Pgi, &p, &opts).unwrap();
        cache
            .compile(CompilerId::Caps, &p, &CompileOptions::mic())
            .unwrap();
        cache
            .compile(CompilerId::Caps, &saxpy("saxpy2"), &opts)
            .unwrap();
        assert_eq!((cache.misses(), cache.hits()), (4, 0));
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn concurrent_same_key_is_singleflight() {
        let cache = Arc::new(ArtifactCache::new());
        let p = Arc::new(saxpy("saxpy"));
        let opts = CompileOptions::gpu();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let p = Arc::clone(&p);
                let opts = opts.clone();
                s.spawn(move || {
                    cache.compile(CompilerId::Caps, &p, &opts).unwrap();
                });
            }
        });
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }
}
