//! The OpenARC personality — the paper's planned *future* research
//! vehicle (Section VII: "We plan to explore the possibility of
//! adopting the OpenARC compiler … since the CAPS compiler had been
//! stopped developing").
//!
//! OpenARC (Oak Ridge) is a C-based source-to-source framework on the
//! Cetus infrastructure supporting NVIDIA GPUs, AMD GPUs and Intel
//! MIC. Two properties distinguish it from the 2014 commercial
//! compilers in this reproduction:
//!
//! * it carries **none of the CAPS/PGI quirks** (it was a research
//!   compiler in closed beta — we model its intended behaviour);
//! * it is the vehicle for **auto-tuning** (Sabne et al., LCPC 2014;
//!   the contrast the paper draws against its own hand-written
//!   method). The search itself lives in `paccport-core::autotune`,
//!   which measures candidate distributions through the device model;
//!   this personality accepts the chosen configuration like CAPS's
//!   gang mode and gridifies by default.

use crate::artifact::{CompileError, CompiledProgram};
use crate::caps;
use crate::options::{CompileOptions, CompilerId, QuirkSet};
use paccport_ir::Program;

/// Compile with the OpenARC personality: CAPS-compatible directive
/// handling (gang mode, gridify, tile, reduction) minus every modeled
/// bug.
pub fn compile(
    program: &Program,
    options: &CompileOptions,
) -> Result<CompiledProgram, CompileError> {
    let mut opts = options.clone();
    opts.quirks = QuirkSet::none();
    let mut out = caps::compile(program, &opts)?;
    out.compiler = CompilerId::OpenArc;
    out.module.producer = format!(
        "OpenARC (beta) ({:?} -> {})",
        options.backend,
        options.target.label()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{DistSpec, ExecStrategy};
    use paccport_ir::{
        ld, st, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar,
    };

    fn simple(independent: bool) -> Program {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = independent;
        let k = Kernel::simple(
            "k",
            vec![lp],
            paccport_ir::Block::new(vec![st(a, i, ld(a, i) + 1.0)]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn no_gang1_bug() {
        // The CAPS default-distribution bug does not exist here: the
        // baseline parallelizes with the advertised 192×256.
        let c = compile(&simple(false), &CompileOptions::gpu()).unwrap();
        let plan = c.plan("k").unwrap();
        assert_eq!(plan.exec, ExecStrategy::DeviceParallel);
        assert_eq!(
            plan.dist,
            DistSpec::GangWorker {
                gang: 192,
                worker: 256
            }
        );
        assert_eq!(c.compiler, CompilerId::OpenArc);
        assert!(c.module.producer.contains("OpenARC"));
    }

    #[test]
    fn gridify_with_independent_and_mic_support() {
        let c = compile(&simple(true), &CompileOptions::gpu()).unwrap();
        assert_eq!(
            c.plan("k").unwrap().dist,
            DistSpec::Gridify1D { bx: 32, by: 4 }
        );
        // Unlike PGI, OpenARC targets the MIC.
        assert!(compile(&simple(true), &CompileOptions::mic()).is_ok());
    }
}
