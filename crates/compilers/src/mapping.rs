//! Table III: the parallelism vocabulary across programming models.

/// One row of Table III ("Parallelism defined in OpenACC and
/// implemented by the compilers").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelismRow {
    pub openacc: &'static str,
    pub caps: &'static str,
    pub pgi: &'static str,
    pub cuda: &'static str,
    pub opencl: &'static str,
}

/// Table III.
pub fn table3() -> Vec<ParallelismRow> {
    vec![
        ParallelismRow {
            openacc: "Gang",
            caps: "Gang",
            pgi: "Gang",
            cuda: "Thread block",
            opencl: "Global work",
        },
        ParallelismRow {
            openacc: "Worker",
            caps: "Worker",
            pgi: "-",
            cuda: "Thread",
            opencl: "Local work",
        },
        ParallelismRow {
            openacc: "Vector",
            caps: "-",
            pgi: "Vector",
            cuda: "-",
            opencl: "-",
        },
    ]
}

/// One row of Table VI ("Default thread distributions of the different
/// compilers"), parameterized on the input size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultDistRow {
    pub compiler: &'static str,
    pub mode: &'static str,
    pub grid: String,
    pub block: String,
}

/// Table VI, with the symbolic sizes substituted for `input_size`.
pub fn table6(input_size: u64) -> Vec<DefaultDistRow> {
    let n = input_size;
    vec![
        DefaultDistRow {
            compiler: "CAPS",
            mode: "Gang mode",
            grid: "[192,1,1]".into(),
            block: "[1,256,1]".into(),
        },
        DefaultDistRow {
            compiler: "CAPS",
            mode: "Gridify 1D",
            grid: format!("[{},1,1]", n.div_ceil(32 * 4)),
            block: "[32,4,1]".into(),
        },
        DefaultDistRow {
            compiler: "CAPS",
            mode: "Gridify 2D",
            grid: format!("[{},{},1]", n.div_ceil(32), n.div_ceil(4)),
            block: "[32,4,1]".into(),
        },
        DefaultDistRow {
            compiler: "PGI",
            mode: "Gang mode",
            grid: "[depending on the loop,1,1]".into(),
            block: "[128,1,1]".into(),
        },
        DefaultDistRow {
            compiler: "PGI",
            mode: "Parallel 1D",
            grid: format!("[1..{},1,1]", n.div_ceil(128)),
            block: "[128,1,1]".into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::DistSpec;

    #[test]
    fn table3_matches_the_paper() {
        let t = table3();
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].cuda, "Thread block");
        assert_eq!(t[1].opencl, "Local work");
        assert_eq!(t[2].pgi, "Vector");
    }

    #[test]
    fn table6_rows_agree_with_dist_spec_math() {
        let n = 4096u64;
        let rows = table6(n);
        // Gridify 1D row must equal DistSpec's computation.
        let d = DistSpec::Gridify1D { bx: 32, by: 4 };
        let l = d.launch_dims(&[n]);
        assert_eq!(rows[1].grid, format!("[{},1,1]", l.grid[0]));
        // Gridify 2D row.
        let d = DistSpec::Gridify2D { bx: 32, by: 4 };
        let l = d.launch_dims(&[n, n]);
        assert_eq!(rows[2].grid, format!("[{},{},1]", l.grid[0], l.grid[1]));
    }
}
