//! Compiler identities, targets, flags (Table I) and quirk toggles.

use serde::{Deserialize, Serialize};

/// The three "compilers" of the study.
///
/// `OpenClHand` is not a directive compiler: it stands for the
/// hand-written OpenCL versions of the benchmarks, which we route
/// through the same lowering machinery so their PTX can be counted and
/// compared (the paper compares OpenACC-generated PTX against the
/// OpenCL versions' PTX in Figures 9 and 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompilerId {
    /// CAPS 3.4.1 — source-to-source, CUDA and OpenCL back ends,
    /// targets NVIDIA GPU, AMD GPU and Intel MIC.
    Caps,
    /// PGI 14.9 — CUDA back end only, NVIDIA GPU only.
    Pgi,
    /// Hand-written OpenCL (Rodinia / Hydro OpenCL versions).
    OpenClHand,
    /// OpenARC (Oak Ridge, closed beta in 2014) — the paper's planned
    /// future research vehicle; modeled as a bug-free CAPS-compatible
    /// compiler and the substrate for auto-tuning.
    OpenArc,
}

impl CompilerId {
    pub fn label(self) -> &'static str {
        match self {
            CompilerId::Caps => "CAPS 3.4.1",
            CompilerId::Pgi => "PGI 14.9",
            CompilerId::OpenClHand => "OpenCL (hand-written)",
            CompilerId::OpenArc => "OpenARC (beta)",
        }
    }
}

/// Code-generation back end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    Cuda,
    OpenCl,
}

/// Compilation / execution target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Kepler K40 (the paper's GPU node).
    GpuK40,
    /// AMD FirePro-class GPU (CAPS and PGI both targeted AMD,
    /// Section II-C; exercised by the `device_type` clause).
    AmdGpu,
    /// Intel Xeon Phi 5110P (the paper's MIC node).
    Mic5110P,
    /// The Sandy Bridge host CPU (fallback execution, Hydro's host
    /// portions).
    HostCpu,
}

impl DeviceKind {
    /// The OpenACC `device_type` name this target answers to.
    pub fn acc_device_type(self) -> Option<paccport_ir::AccDeviceType> {
        match self {
            DeviceKind::GpuK40 => Some(paccport_ir::AccDeviceType::Nvidia),
            DeviceKind::AmdGpu => Some(paccport_ir::AccDeviceType::Radeon),
            DeviceKind::Mic5110P => Some(paccport_ir::AccDeviceType::XeonPhi),
            DeviceKind::HostCpu => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::GpuK40 => "K40",
            DeviceKind::AmdGpu => "FirePro",
            DeviceKind::Mic5110P => "5110P",
            DeviceKind::HostCpu => "host CPU",
        }
    }
}

/// Host-side C compiler used for the CPU portions (Figure 15 shows
/// Hydro speeding up when GCC is swapped for the Intel compiler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostCompiler {
    Gcc,
    Intel,
}

/// Command-line flags from Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Flag {
    /// `-O4` (PGI) — optimization level.
    O4,
    /// `-fast` (PGI) — fast math library.
    Fast,
    /// `-Mvect` (PGI) — vectorization.
    Mvect,
    /// `-Munroll` (PGI) — ILP unrolling.
    Munroll,
    /// `-Msafeptr` (PGI) — assert no pointer aliasing.
    Msafeptr,
    /// `-fastmath` (CUDA C) — fast math library.
    FastMath,
    /// `-prec-div=false` (CUDA C).
    PrecDivFalse,
    /// `-code=sm_35` (CUDA C).
    CodeSm35,
    /// `-arch=compute_35` (CUDA C).
    ArchCompute35,
    /// `-Xhmppcg -grid-block-size,BXxBY` (CAPS) — gridify block shape.
    GridBlockSize(u32, u32),
}

/// Behavioural quirks of the 2014-era toolchains, reconstructed from
/// the paper's observations. Each quirk is independently togglable so
/// the ablation benches can show which finding each one produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuirkSet {
    /// CAPS: with no explicit gang/worker clauses and no `independent`
    /// directive, the compilation log claims `gangs(192)/workers(256)`
    /// but the generated codelet actually runs `gang(1), worker(1)` —
    /// the bug behind LUD's 1000× baseline gap (Section V-A2).
    pub caps_default_gang1: bool,
    /// CAPS: `unroll(n), jam` on a kernel with no plain inner loop
    /// reports success but leaves the PTX unchanged — the "fake
    /// successful message" of Section V-B3.
    pub caps_fake_unroll_success: bool,
    /// CAPS (CUDA back end only): unroll-and-jam fails on inner loops
    /// that accumulate into a scalar inside kernels that also carry a
    /// `reduction`-style pattern — observed on Back Propagation, where
    /// the OpenCL back end *did* unroll (Section V-D1).
    pub caps_cuda_unroll_fails_on_accum: bool,
    /// CAPS: the `tile` clause silently no-ops on kernels whose body
    /// contains an inner sequential loop (LUD), while flat-body
    /// kernels are strip-mined without any shared-memory staging
    /// (Sections III-D, V-A3, V-B3).
    pub caps_tile_silent_on_nested: bool,
    /// CAPS: the `reduction` directive generates `ld.shared`/
    /// `st.shared` but fails to actually speed up the GPU execution
    /// (Section V-D2).
    pub caps_reduction_perf_bug: bool,
    /// CAPS: the `reduction` directive produces wrong results on MIC
    /// (Section V-D2).
    pub caps_reduction_wrong_on_mic: bool,
    /// CAPS: no data region is kept live across a dynamically-bounded
    /// host loop, so BFS re-transfers per frontier iteration
    /// (Table VII: 3 transfers per iteration).
    pub caps_retransfer_in_dynamic_loops: bool,
    /// PGI: `independent` on loops with indirect (non-affine) accesses
    /// is ignored; the kernel is kept on the host — the BFS finding
    /// discovered via `PGI_ACC_TIME`/nvprof (Section V-C1).
    pub pgi_conservative_indirection: bool,
    /// PGI: once `independent` is present, explicit gang/worker
    /// clauses are ignored; PGI picks its own `[128,1]` distribution
    /// (Sections III-A, V-A2).
    pub pgi_locks_distribution: bool,
    /// PGI: `-Munroll` duplicates arithmetic/data-movement PTX without
    /// improving time (Section V-B3). (The duplication itself is real
    /// unrolling; the quirk models that PGI does not re-schedule, so
    /// no speedup materialises.)
    pub pgi_unroll_no_speedup: bool,
    /// PGI: refuses to compile pointer-heavy sources (Hydro's headers)
    /// (Section V-E).
    pub pgi_pointer_alias_sensitivity: bool,
}

impl QuirkSet {
    /// Everything on — the faithful 2014 reproduction.
    pub fn faithful() -> Self {
        QuirkSet {
            caps_default_gang1: true,
            caps_fake_unroll_success: true,
            caps_cuda_unroll_fails_on_accum: true,
            caps_tile_silent_on_nested: true,
            caps_reduction_perf_bug: true,
            caps_reduction_wrong_on_mic: true,
            caps_retransfer_in_dynamic_loops: true,
            pgi_conservative_indirection: true,
            pgi_locks_distribution: true,
            pgi_unroll_no_speedup: true,
            pgi_pointer_alias_sensitivity: true,
        }
    }

    /// Everything off — an idealized bug-free toolchain, used by the
    /// ablation benches.
    pub fn none() -> Self {
        QuirkSet {
            caps_default_gang1: false,
            caps_fake_unroll_success: false,
            caps_cuda_unroll_fails_on_accum: false,
            caps_tile_silent_on_nested: false,
            caps_reduction_perf_bug: false,
            caps_reduction_wrong_on_mic: false,
            caps_retransfer_in_dynamic_loops: false,
            pgi_conservative_indirection: false,
            pgi_locks_distribution: false,
            pgi_unroll_no_speedup: false,
            pgi_pointer_alias_sensitivity: false,
        }
    }
}

impl Default for QuirkSet {
    fn default() -> Self {
        QuirkSet::faithful()
    }
}

/// Full compile configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompileOptions {
    pub backend: Backend,
    pub target: DeviceKind,
    pub host_compiler: HostCompiler,
    pub flags: Vec<Flag>,
    pub quirks: QuirkSet,
}

impl CompileOptions {
    pub fn gpu() -> Self {
        CompileOptions {
            backend: Backend::Cuda,
            target: DeviceKind::GpuK40,
            host_compiler: HostCompiler::Gcc,
            flags: vec![Flag::ArchCompute35, Flag::CodeSm35],
            quirks: QuirkSet::faithful(),
        }
    }

    /// Target the AMD GPU via the OpenCL back end.
    pub fn amd() -> Self {
        CompileOptions {
            backend: Backend::OpenCl,
            target: DeviceKind::AmdGpu,
            host_compiler: HostCompiler::Gcc,
            flags: vec![],
            quirks: QuirkSet::faithful(),
        }
    }

    pub fn mic() -> Self {
        CompileOptions {
            backend: Backend::OpenCl,
            target: DeviceKind::Mic5110P,
            host_compiler: HostCompiler::Gcc,
            flags: vec![],
            quirks: QuirkSet::faithful(),
        }
    }

    pub fn with_flag(mut self, f: Flag) -> Self {
        self.flags.push(f);
        self
    }

    pub fn with_host_compiler(mut self, hc: HostCompiler) -> Self {
        self.host_compiler = hc;
        self
    }

    pub fn has_flag(&self, f: &Flag) -> bool {
        self.flags.contains(f)
    }

    /// The gridify block shape: the `-Xhmppcg -grid-block-size` flag
    /// if given, else CAPS's 32×4 default (Table VI).
    pub fn grid_block_size(&self) -> (u32, u32) {
        for f in &self.flags {
            if let Flag::GridBlockSize(x, y) = f {
                return (*x, *y);
            }
        }
        (32, 4)
    }

    /// Whether PGI-style `-Munroll` unrolling was requested.
    pub fn munroll(&self) -> bool {
        self.has_flag(&Flag::Munroll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_gridify_shape_is_32x4() {
        let o = CompileOptions::gpu();
        assert_eq!(o.grid_block_size(), (32, 4));
        let o = o.with_flag(Flag::GridBlockSize(64, 2));
        assert_eq!(o.grid_block_size(), (64, 2));
    }

    #[test]
    fn quirk_presets() {
        assert!(QuirkSet::faithful().caps_default_gang1);
        assert!(!QuirkSet::none().caps_default_gang1);
        assert_eq!(QuirkSet::default(), QuirkSet::faithful());
    }

    #[test]
    fn flag_lookup() {
        let o = CompileOptions::gpu().with_flag(Flag::Munroll);
        assert!(o.munroll());
        assert!(!CompileOptions::mic().munroll());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CompilerId::Caps.label(), "CAPS 3.4.1");
        assert_eq!(DeviceKind::Mic5110P.label(), "5110P");
    }
}
