//! The compiler-flag registry of Table I.

use crate::options::Flag;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlagRow {
    pub flag: &'static str,
    pub compiler: &'static str,
    pub usage: &'static str,
}

/// Table I: "Compiler flags used in the method".
pub fn table1() -> Vec<FlagRow> {
    vec![
        FlagRow {
            flag: "-O4",
            compiler: "PGI",
            usage: "Specifying optimization level",
        },
        FlagRow {
            flag: "-fast",
            compiler: "PGI",
            usage: "Using fast math library",
        },
        FlagRow {
            flag: "-Mvect",
            compiler: "PGI",
            usage: "Using vectorization",
        },
        FlagRow {
            flag: "-Munroll",
            compiler: "PGI",
            usage: "Using ILP unrolling optimization",
        },
        FlagRow {
            flag: "-Msafeptr",
            compiler: "PGI",
            usage: "Specifying no pointer aliasing",
        },
        FlagRow {
            flag: "-fastmath",
            compiler: "CUDA C",
            usage: "Using fast math library",
        },
        FlagRow {
            flag: "-prec-div=false",
            compiler: "CUDA C",
            usage: "Using fast math library",
        },
        FlagRow {
            flag: "-code=sm_35",
            compiler: "CUDA C",
            usage: "Specifying architecture",
        },
        FlagRow {
            flag: "-arch=compute_35",
            compiler: "CUDA C",
            usage: "Specifying architecture",
        },
        FlagRow {
            flag: "-Xhmppcg -grid-block-size,32x4",
            compiler: "CAPS",
            usage: "Changing numbers of gridify mode",
        },
    ]
}

/// Parse a Table-I command-line spelling into a [`Flag`].
pub fn parse_flag(s: &str) -> Option<Flag> {
    match s {
        "-O4" => Some(Flag::O4),
        "-fast" => Some(Flag::Fast),
        "-Mvect" => Some(Flag::Mvect),
        "-Munroll" => Some(Flag::Munroll),
        "-Msafeptr" => Some(Flag::Msafeptr),
        "-fastmath" => Some(Flag::FastMath),
        "-prec-div=false" => Some(Flag::PrecDivFalse),
        "-code=sm_35" => Some(Flag::CodeSm35),
        "-arch=compute_35" => Some(Flag::ArchCompute35),
        _ => {
            // -Xhmppcg -grid-block-size,BXxBY
            let rest = s.strip_prefix("-Xhmppcg -grid-block-size,")?;
            let (bx, by) = rest.split_once('x')?;
            Some(Flag::GridBlockSize(bx.parse().ok()?, by.parse().ok()?))
        }
    }
}

/// Render a [`Flag`] back to its Table-I spelling.
pub fn flag_spelling(f: &Flag) -> String {
    match f {
        Flag::O4 => "-O4".into(),
        Flag::Fast => "-fast".into(),
        Flag::Mvect => "-Mvect".into(),
        Flag::Munroll => "-Munroll".into(),
        Flag::Msafeptr => "-Msafeptr".into(),
        Flag::FastMath => "-fastmath".into(),
        Flag::PrecDivFalse => "-prec-div=false".into(),
        Flag::CodeSm35 => "-code=sm_35".into(),
        Flag::ArchCompute35 => "-arch=compute_35".into(),
        Flag::GridBlockSize(x, y) => format!("-Xhmppcg -grid-block-size,{x}x{y}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_rows() {
        assert_eq!(table1().len(), 10);
    }

    #[test]
    fn flags_round_trip_through_spelling() {
        for row in table1() {
            let f = parse_flag(row.flag).expect(row.flag);
            assert_eq!(flag_spelling(&f), row.flag);
        }
    }

    #[test]
    fn grid_block_size_parses_shapes() {
        assert_eq!(
            parse_flag("-Xhmppcg -grid-block-size,64x2"),
            Some(Flag::GridBlockSize(64, 2))
        );
        assert_eq!(parse_flag("-bogus"), None);
    }
}
