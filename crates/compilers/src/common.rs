//! Analysis helpers and plan assembly shared by the three compiler
//! personalities.

use crate::artifact::{
    CompiledProgram, Correctness, Diagnostic, DistSpec, ExecStrategy, KernelPlan, TransferPolicy,
};
use crate::lower::{lower_kernel, lower_stub, LoweringStyle};
use crate::options::{CompileOptions, CompilerId};
use paccport_ir::expr::{to_affine, Expr};
use paccport_ir::kernel::{Kernel, KernelBody};
use paccport_ir::stmt::Stmt;
use paccport_ir::types::MemSpace;
use paccport_ir::Program;
use paccport_ptx::PtxModule;

/// Does the kernel body contain an indirect (data-dependent) global
/// access — a load/store whose index is itself non-affine because it
/// reads another array (`cost[edges[i]]`)? This is the structural
/// property that makes PGI refuse to offload BFS.
pub fn has_indirect_access(k: &Kernel) -> bool {
    // Taint pass: locals initialized (directly or transitively) from
    // memory are data-dependent indices (`int id = edges[e]; …
    // cost[id] = …` in Rodinia's BFS).
    let mut tainted: std::collections::BTreeSet<paccport_ir::VarId> = Default::default();
    let collect_taint =
        |b: &paccport_ir::Block, tainted: &mut std::collections::BTreeSet<paccport_ir::VarId>| {
            // Iterate to a fixed point (bodies are tiny).
            loop {
                let before = tainted.len();
                b.walk(&mut |s| {
                    if let Stmt::Let { var, init, .. } | Stmt::Assign { var, value: init } = s {
                        let mut dep = init.reads_global();
                        init.walk(&mut |e| {
                            if let Expr::Var(v) = e {
                                if tainted.contains(v) {
                                    dep = true;
                                }
                            }
                        });
                        if dep {
                            tainted.insert(*var);
                        }
                    }
                });
                if tainted.len() == before {
                    break;
                }
            }
        };
    let index_is_indirect =
        |idx: &Expr, tainted: &std::collections::BTreeSet<paccport_ir::VarId>| {
            if to_affine(idx).is_some() {
                // Affine in program variables — but a tainted variable is
                // itself data-dependent.
                let mut hit = false;
                idx.walk(&mut |e| {
                    if let Expr::Var(v) = e {
                        if tainted.contains(v) {
                            hit = true;
                        }
                    }
                });
                hit
            } else {
                idx.reads_global()
            }
        };
    let mut found = false;
    let mut scan = |b: &paccport_ir::Block| {
        collect_taint(b, &mut tainted);
        b.walk(&mut |s| {
            if let Stmt::Store { index, .. } = s {
                if index_is_indirect(index, &tainted) {
                    found = true;
                }
            }
            s.for_each_expr(&mut |e| {
                e.walk(&mut |e| {
                    if let Expr::Load { index, .. } = e {
                        if index_is_indirect(index, &tainted) {
                            found = true;
                        }
                    }
                })
            });
        });
    };
    match &k.body {
        KernelBody::Simple(b) => scan(b),
        KernelBody::Grouped(g) => {
            for p in &g.phases {
                scan(p);
            }
        }
    }
    found
}

/// Does the body store to a location that does not move with *any* of
/// the parallel loop variables (e.g. BFS kernel 2's `stop[0] = 1`)?
/// A conservative compiler treats this as a reason not to offload.
pub fn has_invariant_store(k: &Kernel) -> bool {
    let KernelBody::Simple(b) = &k.body else {
        return false;
    };
    let mut stores = Vec::new();
    b.collect_stores(&mut stores);
    let par_vars: Vec<_> = k.loops.iter().map(|l| l.var).collect();
    stores.iter().any(|(space, _, idx)| {
        *space == MemSpace::Global && par_vars.iter().all(|v| !idx.uses_var(*v))
    })
}

/// Are all parallel-loop bounds expressions over parameters and
/// constants only (a rectangular, launch-invariant nest)?
pub fn rectangular_bounds(k: &Kernel) -> bool {
    k.loops.iter().all(|l| {
        let mut ok = true;
        let mut check = |e: &Expr| {
            e.walk(&mut |e| {
                if matches!(e, Expr::Var(_) | Expr::Load { .. } | Expr::Special(_)) {
                    ok = false;
                }
            })
        };
        check(&l.lo);
        check(&l.hi);
        ok
    })
}

/// How many loops of the nest a distribution spreads across threads.
pub fn dist_rank_of(dist: &DistSpec, rank: usize) -> usize {
    match dist {
        DistSpec::Sequential => 0,
        DistSpec::GangWorker { .. } => rank.min(2),
        DistSpec::Gridify1D { .. } => 1,
        DistSpec::Gridify2D { .. } => rank.min(2),
        DistSpec::PgiAuto { .. } => 1,
        DistSpec::NdRange { two_d, .. } => {
            if *two_d {
                rank.min(2)
            } else {
                1
            }
        }
        DistSpec::Grouped { .. } | DistSpec::GroupedPerIter { .. } => 1,
    }
}

/// Figure-caption thread-configuration label for a distribution.
pub fn config_label(dist: &DistSpec) -> String {
    match dist {
        DistSpec::Sequential => "1x1".into(),
        DistSpec::GangWorker { gang, worker } => format!("{gang}x{worker}"),
        DistSpec::Gridify1D { bx, by } | DistSpec::Gridify2D { bx, by } => format!("{bx}x{by}"),
        DistSpec::PgiAuto { vector } => format!("{vector}x1"),
        DistSpec::NdRange { lx, ly, .. } => format!("{lx}x{ly}"),
        DistSpec::Grouped { group_size } | DistSpec::GroupedPerIter { group_size } => {
            format!("{group_size}x1")
        }
    }
}

/// Per-kernel compilation decision handed back by a personality.
pub struct KernelDecision {
    pub dist: DistSpec,
    pub exec: ExecStrategy,
    pub correctness: Correctness,
    pub perf_penalty: f64,
    pub diagnostics: Vec<String>,
}

/// Assemble a [`CompiledProgram`] by lowering every kernel of the
/// (already transformed) program according to its decision.
pub fn assemble(
    compiler: CompilerId,
    options: &CompileOptions,
    program: Program,
    style: &LoweringStyle,
    decide: impl Fn(&Kernel) -> KernelDecision,
    transfers: TransferPolicy,
) -> CompiledProgram {
    let mut module = PtxModule {
        producer: format!(
            "{} ({:?} -> {})",
            compiler.label(),
            options.backend,
            options.target.label()
        ),
        kernels: Vec::new(),
    };
    let mut plans = Vec::new();
    let mut diagnostics = Vec::new();
    for k in program.kernels() {
        let d = decide(k);
        for msg in d.diagnostics {
            diagnostics.push(Diagnostic {
                kernel: k.name.clone(),
                message: msg,
            });
        }
        let (ptx, prologue, cost) = match d.exec {
            ExecStrategy::HostSequential => {
                // The module carries a stub (the paper's "few PTX
                // instructions" on PGI's BFS), but the host-execution
                // time model still needs the real per-nest cost, so
                // lower the whole nest serialized (rank 0).
                let lk = lower_kernel(&program, k, 0, style);
                (lower_stub(&program, k), Default::default(), lk.cost)
            }
            ExecStrategy::DeviceSequential => {
                // The generated codelet is the same as the parallel
                // one — only the launch configuration differs (the
                // paper: "the optimized thread distribution version
                // does not change PTX"). The cost tree, however, must
                // cover the whole serialized nest.
                let shaped = lower_kernel(&program, k, k.rank().min(2), style);
                let serial = lower_kernel(&program, k, 0, style);
                (shaped.ptx, serial.prologue, serial.cost)
            }
            ExecStrategy::DeviceParallel => {
                let rank = dist_rank_of(&d.dist, k.rank());
                let lk = lower_kernel(&program, k, rank, style);
                (lk.ptx, lk.prologue, lk.cost)
            }
        };
        module.kernels.push(ptx);
        plans.push(KernelPlan {
            kernel: k.name.clone(),
            exec: d.exec,
            dist: d.dist,
            prologue,
            cost,
            correctness: d.correctness,
            config_label: config_label(&d.dist),
            perf_penalty: d.perf_penalty,
        });
    }
    CompiledProgram {
        compiler,
        options: options.clone(),
        program,
        module,
        plans,
        diagnostics,
        transfers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{ld, st, Intent, ParallelLoop, ProgramBuilder, Scalar, E};

    #[test]
    fn indirect_access_detection() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let edges = b.array("edges", Scalar::I32, n, Intent::In);
        let cost = b.array("cost", Scalar::I32, n, Intent::InOut);
        let i = b.var("i");
        // cost[edges[i]] = 1 — indirect.
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(cost, ld(edges, i), 1i64)]),
        );
        assert!(has_indirect_access(&k));
        // cost[i] = edges[i] — affine.
        let k2 = Kernel::simple(
            "k2",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(cost, i, ld(edges, i))]),
        );
        assert!(!has_indirect_access(&k2));
    }

    #[test]
    fn invariant_store_detection() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let stop = b.array("stop", Scalar::I32, 1i64, Intent::InOut);
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(stop, 0i64, 1i64)]),
        );
        assert!(has_invariant_store(&k));
        let k2 = Kernel::simple(
            "k2",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(a, i, 0.0)]),
        );
        assert!(!has_invariant_store(&k2));
    }

    #[test]
    fn rectangularity() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let t = b.var("t");
        let k = Kernel::simple(
            "k",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(a, i, 0.0)]),
        );
        assert!(rectangular_bounds(&k));
        let k2 = Kernel::simple(
            "k2",
            vec![ParallelLoop::new(
                i,
                (E::from(t) + 1i64).expr(),
                Expr::param(n),
            )],
            paccport_ir::Block::new(vec![st(a, i, 0.0)]),
        );
        assert!(!rectangular_bounds(&k2));
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(config_label(&DistSpec::Sequential), "1x1");
        assert_eq!(config_label(&DistSpec::Gridify1D { bx: 32, by: 4 }), "32x4");
        assert_eq!(config_label(&DistSpec::PgiAuto { vector: 128 }), "128x1");
        assert_eq!(
            config_label(&DistSpec::GangWorker {
                gang: 256,
                worker: 16
            }),
            "256x16"
        );
    }
}
