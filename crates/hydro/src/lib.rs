//! # paccport-hydro — the Hydro mini-application
//!
//! Hydro (Lavallée et al., PRACE; derived from the RAMSES
//! astrophysics code) is the paper's mini-application: a 2-D
//! compressible-hydrodynamics solver whose OpenACC version comprises
//! 22 nested loops. This crate reimplements the solver from scratch:
//!
//! * [`solver`] — the reference Rust implementation (dimensionally
//!   split MUSCL/Godunov with Rusanov fluxes), validated on the Sod
//!   shock tube;
//! * [`acc`] — the same pipeline as directive-annotated IR kernels
//!   (baseline, optimized and hand-written-OpenCL variants), executed
//!   on the simulated devices and compared element-wise against the
//!   reference.
//!
//! Paper findings reproduced (Fig. 15 and Section V-E):
//! * PGI cannot compile Hydro at all (pointer-heavy headers);
//! * `independent` + gridify transforms MIC performance and improves
//!   the GPU too;
//! * swapping GCC for the Intel compiler shrinks the host share;
//! * the optimized OpenACC version approaches the OpenCL version.

pub mod acc;
pub mod solver;

pub use acc::{program, HydroVariant};
pub use solver::{run as run_reference, State};

use paccport_compilers::CompiledProgram;
use paccport_devsim::{Buffer, RunConfig, RunResult};
use paccport_kernels::common::Validation;

/// Functional run configuration for an `nx × ny` Sod problem over
/// `nsteps` steps, with inputs taken from [`State::sod`].
pub fn sod_run_config(nx: usize, ny: usize, nsteps: usize) -> RunConfig {
    let s = State::sod(nx, ny);
    RunConfig::functional(vec![
        ("nx".into(), nx as f64),
        ("ny".into(), ny as f64),
        ("dx".into(), s.dx as f64),
        ("nsteps".into(), nsteps as f64),
    ])
    .with_input("rho", Buffer::F32(s.rho.clone()))
    .with_input("rhou", Buffer::F32(s.rhou.clone()))
    .with_input("rhov", Buffer::F32(s.rhov.clone()))
    .with_input("e", Buffer::F32(s.e.clone()))
}

/// Timing-only run configuration at an arbitrary scale.
pub fn timing_run_config(nx: usize, ny: usize, nsteps: usize) -> RunConfig {
    RunConfig::timing(
        vec![
            ("nx".into(), nx as f64),
            ("ny".into(), ny as f64),
            ("dx".into(), 1.0 / nx as f64),
            ("nsteps".into(), nsteps as f64),
        ],
        1,
    )
}

/// Compare a finished run's conservative fields against the reference
/// solver advanced the same number of steps.
pub fn validate_against_reference(
    r: &RunResult,
    c: &CompiledProgram,
    nx: usize,
    ny: usize,
    nsteps: usize,
    tol: f64,
) -> Validation {
    let mut want = State::sod(nx, ny);
    solver::run(&mut want, nsteps);
    let fields = [
        ("rho", &want.rho),
        ("rhou", &want.rhou),
        ("rhov", &want.rhov),
        ("e", &want.e),
    ];
    let mut max_err = 0.0f64;
    let mut checked = 0usize;
    for (name, want_v) in fields {
        let got = r.buffer(c, name).expect(name).as_f32();
        for (g, w) in got.iter().zip(want_v.iter()) {
            let denom = 1.0f64.max(w.abs() as f64);
            let err = ((*g as f64) - (*w as f64)).abs() / denom;
            if err > max_err {
                max_err = err;
            }
            checked += 1;
        }
    }
    if max_err <= tol {
        Validation::pass(max_err, checked)
    } else {
        Validation::fail(
            max_err,
            checked,
            "hydro fields diverge from the reference solver",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_compilers::{compile, CompileOptions, CompilerId, HostCompiler};
    use paccport_devsim::run;

    const NX: usize = 32;
    const NY: usize = 8;
    const STEPS: usize = 10;

    #[test]
    fn optimized_acc_matches_reference_on_gpu() {
        let p = program(HydroVariant::Optimized);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let r = run(&c, &sod_run_config(NX, NY, STEPS)).unwrap();
        let v = validate_against_reference(&r, &c, NX, NY, STEPS, 1e-4);
        assert!(v.passed, "max err {} — {}", v.max_abs_err, v.detail);
        assert!(r.kernel_stats.iter().all(|s| s.ran_on_device));
    }

    #[test]
    fn baseline_acc_matches_reference_but_runs_sequentially() {
        let p = program(HydroVariant::Baseline);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let r = run(&c, &sod_run_config(NX, NY, STEPS)).unwrap();
        let v = validate_against_reference(&r, &c, NX, NY, STEPS, 1e-4);
        assert!(v.passed, "max err {}", v.max_abs_err);
        assert!(r.kernel_stats.iter().all(|s| s.config_label == "1x1"));
    }

    #[test]
    fn opencl_matches_reference() {
        let p = program(HydroVariant::OpenCl);
        let c = compile(CompilerId::OpenClHand, &p, &CompileOptions::gpu()).unwrap();
        let r = run(&c, &sod_run_config(NX, NY, STEPS)).unwrap();
        let v = validate_against_reference(&r, &c, NX, NY, STEPS, 1e-4);
        assert!(v.passed, "max err {}", v.max_abs_err);
    }

    #[test]
    fn mic_run_matches_reference() {
        let p = program(HydroVariant::Optimized);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::mic()).unwrap();
        let r = run(&c, &sod_run_config(NX, NY, STEPS)).unwrap();
        let v = validate_against_reference(&r, &c, NX, NY, STEPS, 1e-4);
        assert!(v.passed, "max err {}", v.max_abs_err);
    }

    #[test]
    fn fig15_shape_holds_at_scale() {
        // Optimization helps on both devices (hugely on MIC); the
        // optimized GPU beats the optimized MIC; ICC beats GCC.
        let base = program(HydroVariant::Baseline);
        let opt = program(HydroVariant::Optimized);
        let ocl = program(HydroVariant::OpenCl);
        let rc = timing_run_config(1024, 1024, 2);
        let t = |id, p: &paccport_ir::Program, o: &CompileOptions| {
            run(&compile(id, p, o).unwrap(), &rc).unwrap().elapsed
        };
        let g = CompileOptions::gpu();
        let m = CompileOptions::mic();
        let bg = t(CompilerId::Caps, &base, &g);
        let og = t(CompilerId::Caps, &opt, &g);
        let bm = t(CompilerId::Caps, &base, &m);
        let om = t(CompilerId::Caps, &opt, &m);
        assert!(og < bg / 10.0, "GPU optimization: {bg} -> {og}");
        assert!(om < bm / 10.0, "MIC optimization: {bm} -> {om}");
        assert!(og < om, "optimized GPU {og} must beat MIC {om}");
        // OpenCL baseline beats the broken OpenACC baseline.
        let oclg = t(CompilerId::OpenClHand, &ocl, &g);
        assert!(oclg < bg, "OpenCL {oclg} vs OpenACC baseline {bg}");
        // Host-compiler effect.
        let gi = g.clone().with_host_compiler(HostCompiler::Intel);
        let og_icc = t(CompilerId::Caps, &opt, &gi);
        assert!(og_icc < og, "ICC {og_icc} must beat GCC {og}");
    }
}
