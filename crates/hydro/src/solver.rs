//! Reference 2-D compressible-Euler solver (the Hydro mini-app's
//! numerical pipeline, reimplemented in Rust).
//!
//! Dimensionally-split MUSCL/Godunov scheme with a Rusanov
//! (local Lax–Friedrichs) interface flux:
//!
//! 1. reflective boundaries;
//! 2. `constoprim` — conservative → primitive;
//! 3. `eos` — ideal-gas pressure and sound speed;
//! 4. `slope` — minmod-limited slopes of the primitives;
//! 5. `trace` — per-cell left/right extrapolated states;
//! 6. `qleftright` — interface state gathering;
//! 7. `riemann` — interface wave speed (the approximate solver);
//! 8. `cmpflx` — Rusanov fluxes;
//! 9. `update` — conservative update;
//!
//! plus a global `courant` reduction for the time step.
//!
//! Every stage is written in f32 with exactly the operation order the
//! IR kernels use, so the simulated device runs are compared
//! element-wise against this solver.

/// Physical and numerical constants (Hydro's defaults).
pub const GAMMA: f32 = 1.4;
pub const SMALLR: f32 = 1e-10;
pub const SMALLP: f32 = 1e-10;
pub const CFL: f32 = 0.4;
/// Ghost cells per side.
pub const NG: usize = 2;

/// The full simulation state: conservative variables on an
/// `(nx + 4) × (ny + 4)` grid (2 ghost cells per side), row-major
/// with `x` contiguous.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    pub nx: usize,
    pub ny: usize,
    pub dx: f32,
    pub rho: Vec<f32>,
    pub rhou: Vec<f32>,
    pub rhov: Vec<f32>,
    pub e: Vec<f32>,
}

impl State {
    pub fn nxt(&self) -> usize {
        self.nx + 2 * NG
    }

    pub fn nyt(&self) -> usize {
        self.ny + 2 * NG
    }

    pub fn idx(&self, i: usize, j: usize) -> usize {
        j * self.nxt() + i
    }

    /// Sod shock tube along x: high-pressure left half, low right.
    pub fn sod(nx: usize, ny: usize) -> State {
        let dx = 1.0 / nx as f32;
        let nxt = nx + 2 * NG;
        let nyt = ny + 2 * NG;
        let mut s = State {
            nx,
            ny,
            dx,
            rho: vec![0.0; nxt * nyt],
            rhou: vec![0.0; nxt * nyt],
            rhov: vec![0.0; nxt * nyt],
            e: vec![0.0; nxt * nyt],
        };
        for j in 0..nyt {
            for i in 0..nxt {
                let x = (i as f32 - NG as f32 + 0.5) * dx;
                let (rho, p) = if x < 0.5 { (1.0, 1.0) } else { (0.125, 0.1) };
                let k = j * nxt + i;
                s.rho[k] = rho;
                s.e[k] = p / (GAMMA - 1.0); // zero velocity
            }
        }
        s
    }

    /// Total mass over the interior (conserved by the scheme).
    pub fn total_mass(&self) -> f64 {
        let mut m = 0.0f64;
        for j in NG..NG + self.ny {
            for i in NG..NG + self.nx {
                m += self.rho[self.idx(i, j)] as f64;
            }
        }
        m
    }
}

/// Primitive variables and sound speed (scratch for one step).
pub struct Prim {
    pub rho: Vec<f32>,
    pub u: Vec<f32>,
    pub v: Vec<f32>,
    pub eint: Vec<f32>,
    pub p: Vec<f32>,
    pub c: Vec<f32>,
}

/// The Courant reduction: `max(|u| + c, |v| + c)` over the interior.
pub fn courant(s: &State) -> f32 {
    let mut cmax = 0.0f32;
    for j in NG..NG + s.ny {
        for i in NG..NG + s.nx {
            let k = s.idx(i, j);
            let rho = s.rho[k].max(SMALLR);
            let u = s.rhou[k] / rho;
            let v = s.rhov[k] / rho;
            let eint = s.e[k] / rho - 0.5 * (u * u + v * v);
            let p = ((GAMMA - 1.0) * rho * eint).max(SMALLP);
            let c = (GAMMA * p / rho).sqrt();
            cmax = cmax.max((u.abs() + c).max(v.abs() + c));
        }
    }
    cmax
}

/// CFL time step.
pub fn time_step(s: &State) -> f32 {
    CFL * s.dx / courant(s).max(1e-20)
}

/// Reflective boundary fill for one direction (0 = x, 1 = y).
pub fn make_boundary(s: &mut State, dir: usize) {
    let nxt = s.nxt();
    let nyt = s.nyt();
    if dir == 0 {
        for j in 0..nyt {
            for g in 0..NG {
                // Low side: ghost g mirrors interior NG + (NG-1-g).
                let src = s.idx(2 * NG - 1 - g, j);
                let dst = s.idx(g, j);
                mirror(s, dst, src, true);
                // High side.
                let src = s.idx(nxt - 2 * NG + g, j);
                let dst = s.idx(nxt - 1 - g, j);
                mirror(s, dst, src, true);
            }
        }
    } else {
        for i in 0..nxt {
            for g in 0..NG {
                let src = s.idx(i, 2 * NG - 1 - g);
                let dst = s.idx(i, g);
                mirror(s, dst, src, false);
                let src = s.idx(i, nyt - 2 * NG + g);
                let dst = s.idx(i, nyt - 1 - g);
                mirror(s, dst, src, false);
            }
        }
    }
}

fn mirror(s: &mut State, dst: usize, src: usize, flip_u: bool) {
    s.rho[dst] = s.rho[src];
    s.e[dst] = s.e[src];
    if flip_u {
        s.rhou[dst] = -s.rhou[src];
        s.rhov[dst] = s.rhov[src];
    } else {
        s.rhou[dst] = s.rhou[src];
        s.rhov[dst] = -s.rhov[src];
    }
}

/// `constoprim` + `eos` over the full (ghost-included) grid.
pub fn constoprim_eos(s: &State) -> Prim {
    let n = s.nxt() * s.nyt();
    let mut p = Prim {
        rho: vec![0.0; n],
        u: vec![0.0; n],
        v: vec![0.0; n],
        eint: vec![0.0; n],
        p: vec![0.0; n],
        c: vec![0.0; n],
    };
    for k in 0..n {
        let rho = s.rho[k].max(SMALLR);
        let u = s.rhou[k] / rho;
        let v = s.rhov[k] / rho;
        let eint = s.e[k] / rho - 0.5 * (u * u + v * v);
        p.rho[k] = rho;
        p.u[k] = u;
        p.v[k] = v;
        p.eint[k] = eint;
        p.p[k] = ((GAMMA - 1.0) * rho * eint).max(SMALLP);
        p.c[k] = (GAMMA * p.p[k] / rho).sqrt();
    }
    p
}

/// Minmod limiter, written exactly as the IR kernel's `select` chain.
pub fn minmod(a: f32, b: f32) -> f32 {
    if a * b > 0.0 {
        if a.abs() < b.abs() {
            a
        } else {
            b
        }
    } else {
        0.0
    }
}

/// One dimensionally-split sweep along `dir` with time step `dt`.
/// Mirrors the kernel pipeline stage by stage.
pub fn sweep(s: &mut State, dir: usize, dt: f32) {
    make_boundary(s, dir);
    let prim = constoprim_eos(s);
    let nxt = s.nxt();
    let nyt = s.nyt();
    let n = nxt * nyt;
    let stride = if dir == 0 { 1usize } else { nxt };

    // slope: limited slopes of (rho, un, ut, p) along dir.
    // un = normal velocity, ut = transverse.
    let (un, ut): (&[f32], &[f32]) = if dir == 0 {
        (&prim.u, &prim.v)
    } else {
        (&prim.v, &prim.u)
    };
    let mut drho = vec![0.0f32; n];
    let mut dun = vec![0.0f32; n];
    let mut dut = vec![0.0f32; n];
    let mut dp = vec![0.0f32; n];
    let interior = |i: usize, j: usize| -> bool {
        // One ring beyond the interior so traces exist at boundaries.
        if dir == 0 {
            i >= 1 && i + 1 < nxt && j < nyt
        } else {
            j >= 1 && j + 1 < nyt && i < nxt
        }
    };
    for j in 0..nyt {
        for i in 0..nxt {
            if !interior(i, j) {
                continue;
            }
            let k = j * nxt + i;
            drho[k] = minmod(
                prim.rho[k] - prim.rho[k - stride],
                prim.rho[k + stride] - prim.rho[k],
            );
            dun[k] = minmod(un[k] - un[k - stride], un[k + stride] - un[k]);
            dut[k] = minmod(ut[k] - ut[k - stride], ut[k + stride] - ut[k]);
            dp[k] = minmod(
                prim.p[k] - prim.p[k - stride],
                prim.p[k + stride] - prim.p[k],
            );
        }
    }

    // trace: per-cell plus/minus extrapolated states.
    let mut qm = vec![[0.0f32; 4]; n]; // state at the cell's minus face
    let mut qp = vec![[0.0f32; 4]; n]; // state at the cell's plus face
    for k in 0..n {
        qm[k] = [
            prim.rho[k] - 0.5 * drho[k],
            un[k] - 0.5 * dun[k],
            ut[k] - 0.5 * dut[k],
            prim.p[k] - 0.5 * dp[k],
        ];
        qp[k] = [
            prim.rho[k] + 0.5 * drho[k],
            un[k] + 0.5 * dun[k],
            ut[k] + 0.5 * dut[k],
            prim.p[k] + 0.5 * dp[k],
        ];
    }

    // qleftright: interface f sits between cells k and k+stride;
    // left state = plus face of k, right state = minus face of k+s.
    // riemann: Rusanov wave speed per interface.
    // cmpflx: Rusanov flux per interface.
    let mut flux = vec![[0.0f32; 4]; n];
    let iface_ok = |i: usize, j: usize| -> bool {
        if dir == 0 {
            (1..nxt - 2).contains(&i) && j < nyt
        } else {
            (1..nyt - 2).contains(&j) && i < nxt
        }
    };
    for j in 0..nyt {
        for i in 0..nxt {
            if !iface_ok(i, j) {
                continue;
            }
            let k = j * nxt + i;
            let ql = qp[k];
            let qr = qm[k + stride];
            flux[k] = rusanov_flux(ql, qr);
        }
    }

    // update: interior cells only.
    let dtdx = dt / s.dx;
    for j in NG..NG + s.ny {
        for i in NG..NG + s.nx {
            let k = j * nxt + i;
            let fm = flux[k - stride];
            let fp = flux[k];
            s.rho[k] += dtdx * (fm[0] - fp[0]);
            let (fu, fv) = if dir == 0 { (1, 2) } else { (2, 1) };
            s.rhou[k] += dtdx * (fm[fu] - fp[fu]);
            s.rhov[k] += dtdx * (fm[fv] - fp[fv]);
            s.e[k] += dtdx * (fm[3] - fp[3]);
        }
    }
}

/// Rusanov flux between primitive states `(rho, un, ut, p)`; returns
/// fluxes of `(rho, rho·un, rho·ut, E)`.
pub fn rusanov_flux(ql: [f32; 4], qr: [f32; 4]) -> [f32; 4] {
    let f = |q: [f32; 4]| -> ([f32; 4], [f32; 4], f32) {
        let rho = q[0].max(SMALLR);
        let un = q[1];
        let ut = q[2];
        let p = q[3].max(SMALLP);
        let ek = 0.5 * (un * un + ut * ut);
        let e = rho * ek + p / (GAMMA - 1.0);
        let cons = [rho, rho * un, rho * ut, e];
        let flux = [rho * un, rho * un * un + p, rho * un * ut, (e + p) * un];
        let c = (GAMMA * p / rho).sqrt();
        (cons, flux, un.abs() + c)
    };
    let (ul, fl, sl) = f(ql);
    let (ur, fr, sr) = f(qr);
    let smax = sl.max(sr);
    let mut out = [0.0f32; 4];
    for m in 0..4 {
        out[m] = 0.5 * (fl[m] + fr[m]) - 0.5 * smax * (ur[m] - ul[m]);
    }
    out
}

/// Advance `steps` full time steps (x sweep then y sweep each).
pub fn run(s: &mut State, steps: usize) -> f32 {
    let mut t = 0.0f32;
    for _ in 0..steps {
        let dt = time_step(s);
        sweep(s, 0, dt);
        sweep(s, 1, dt);
        t += dt;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sod_tube_initial_state() {
        let s = State::sod(32, 8);
        assert_eq!(s.nxt(), 36);
        // Pressure jump encoded in energy.
        let left = s.e[s.idx(NG + 2, NG + 2)];
        let right = s.e[s.idx(NG + 28, NG + 2)];
        assert!(left > right * 5.0);
    }

    #[test]
    fn courant_sees_sound_speed() {
        let s = State::sod(32, 8);
        let c = courant(&s);
        // Sound speed of the left state: sqrt(1.4 * 1.0 / 1.0).
        let expect = (GAMMA_f64() * 1.0f64).sqrt() as f32;
        assert!((c - expect).abs() < 1e-3, "{c} vs {expect}");
    }

    fn GAMMA_f64() -> f64 {
        GAMMA as f64
    }

    #[test]
    fn mass_is_conserved() {
        let mut s = State::sod(64, 8);
        let m0 = s.total_mass();
        run(&mut s, 20);
        let m1 = s.total_mass();
        assert!(((m1 - m0) / m0).abs() < 1e-4, "mass drift: {m0} -> {m1}");
    }

    #[test]
    fn shock_moves_right_and_state_stays_physical() {
        let mut s = State::sod(64, 8);
        run(&mut s, 30);
        let j = NG + 4;
        // Density bounded and monotone-ish endpoints.
        for i in NG..NG + 64 {
            let r = s.rho[s.idx(i, j)];
            assert!(r > 0.05 && r < 1.2, "rho[{i}] = {r}");
        }
        let left = s.rho[s.idx(NG + 2, j)];
        let right = s.rho[s.idx(NG + 61, j)];
        assert!(left > 0.9, "left state still ~1.0, got {left}");
        assert!(right < 0.2, "right state still ~0.125, got {right}");
        // Rarefaction/contact structure: some intermediate density.
        let mid = s.rho[s.idx(NG + 32, j)];
        assert!(mid < left && mid > right);
    }

    #[test]
    fn y_symmetry_is_preserved() {
        // A Sod tube in x should remain uniform along y.
        let mut s = State::sod(32, 16);
        run(&mut s, 15);
        for i in NG..NG + 32 {
            let base = s.rho[s.idx(i, NG)];
            for j in NG..NG + 16 {
                let v = s.rho[s.idx(i, j)];
                assert!((v - base).abs() < 1e-5, "rho[{i},{j}]: {v} vs {base}");
            }
        }
    }

    #[test]
    fn minmod_limits_correctly() {
        assert_eq!(minmod(1.0, 2.0), 1.0);
        assert_eq!(minmod(2.0, 1.0), 1.0);
        assert_eq!(minmod(-1.0, -3.0), -1.0);
        assert_eq!(minmod(1.0, -1.0), 0.0);
        assert_eq!(minmod(0.0, 5.0), 0.0);
    }

    #[test]
    fn rusanov_is_consistent() {
        // F(q, q) must equal the exact flux of q.
        let q = [1.0f32, 0.3, -0.1, 0.7];
        let f = rusanov_flux(q, q);
        let rho = q[0];
        let e = rho * 0.5 * (q[1] * q[1] + q[2] * q[2]) + q[3] / (GAMMA - 1.0);
        assert!((f[0] - rho * q[1]).abs() < 1e-6);
        assert!((f[1] - (rho * q[1] * q[1] + q[3])).abs() < 1e-6);
        assert!((f[3] - (e + q[3]) * q[1]).abs() < 1e-5);
    }

    #[test]
    fn reflective_boundaries_flip_normal_velocity() {
        let mut s = State::sod(8, 8);
        for k in 0..s.rhou.len() {
            s.rhou[k] = 0.5;
        }
        make_boundary(&mut s, 0);
        let j = NG + 1;
        assert_eq!(s.rhou[s.idx(0, j)], -0.5);
        assert_eq!(s.rhou[s.idx(1, j)], -0.5);
        assert_eq!(s.rhov[s.idx(0, j)], s.rhov[s.idx(3, j)]);
    }
}
