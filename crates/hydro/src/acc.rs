//! The directive-annotated (OpenACC) version of Hydro: the same
//! pipeline as [`crate::solver`], expressed as IR kernels — 9 nests
//! per sweep direction plus the Courant reduction, launched from a
//! host time loop inside one data region. This mirrors the structure
//! the paper describes ("22 nested loops distributed into 22 OpenCL
//! or CUDA kernels"); our reconstruction has 19 nests (one boundary
//! kernel per direction instead of Hydro's four, and `constoprim`
//! fused per sweep), which is recorded in EXPERIMENTS.md.

use crate::solver::{CFL, GAMMA, NG, SMALLP, SMALLR};
use paccport_ir::{
    ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, LaunchHint, ParallelLoop, ProgramBuilder,
    ReduceOp, RegionReduction, Scalar, Stmt, VarId, E,
};

/// Which build of the Hydro source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HydroVariant {
    /// Unoptimized directives: no `independent`, default distribution
    /// (hits CAPS's gang(1) default bug).
    Baseline,
    /// The paper's optimization: `independent` everywhere + gridify
    /// thread distribution.
    Optimized,
    /// The hand-written OpenCL version (explicit 16×16 / 256×1
    /// NDRanges).
    OpenCl,
}

/// Per-direction index arithmetic.
struct Dim {
    /// Flattened index `j·nxt + i` (loop vars bound at build time).
    suffix: &'static str,
    stride_is_x: bool,
}

/// All arrays of the Hydro program.
#[allow(clippy::struct_field_names)]
struct Arrays {
    rho: paccport_ir::ArrayId,
    rhou: paccport_ir::ArrayId,
    rhov: paccport_ir::ArrayId,
    e: paccport_ir::ArrayId,
    prho: paccport_ir::ArrayId,
    pu: paccport_ir::ArrayId,
    pv: paccport_ir::ArrayId,
    peint: paccport_ir::ArrayId,
    pp: paccport_ir::ArrayId,
    pc: paccport_ir::ArrayId,
    drho: paccport_ir::ArrayId,
    dun: paccport_ir::ArrayId,
    dut: paccport_ir::ArrayId,
    dp: paccport_ir::ArrayId,
    qm: [paccport_ir::ArrayId; 4],
    qp: [paccport_ir::ArrayId; 4],
    ql: [paccport_ir::ArrayId; 4],
    qr: [paccport_ir::ArrayId; 4],
    sl: paccport_ir::ArrayId,
    flux: [paccport_ir::ArrayId; 4],
    courant_out: paccport_ir::ArrayId,
}

/// Build the Hydro program (`nsteps` full x+y steps).
pub fn program(variant: HydroVariant) -> paccport_ir::Program {
    let mut b = ProgramBuilder::new(match variant {
        HydroVariant::Baseline => "hydro",
        HydroVariant::Optimized => "hydro_opt",
        HydroVariant::OpenCl => "hydro_ocl",
    });
    // PGI cannot compile Hydro (pointer-heavy headers) — Section V-E.
    b.tag("pointer-heavy-headers");

    let nx = b.iparam("nx");
    let ny = b.iparam("ny");
    let dx = b.param("dx", Scalar::F32);
    let nsteps = b.iparam("nsteps");
    let nxt = || E::from(nx) + (2 * NG) as i64;
    let nyt = || E::from(ny) + (2 * NG) as i64;
    let total = nxt() * nyt();

    let mk = |b: &mut ProgramBuilder, name: &str, intent| {
        b.array(name, Scalar::F32, nxt() * nyt(), intent)
    };
    let arr = Arrays {
        rho: mk(&mut b, "rho", Intent::InOut),
        rhou: mk(&mut b, "rhou", Intent::InOut),
        rhov: mk(&mut b, "rhov", Intent::InOut),
        e: mk(&mut b, "e", Intent::InOut),
        prho: mk(&mut b, "prho", Intent::Scratch),
        pu: mk(&mut b, "pu", Intent::Scratch),
        pv: mk(&mut b, "pv", Intent::Scratch),
        peint: mk(&mut b, "peint", Intent::Scratch),
        pp: mk(&mut b, "pp", Intent::Scratch),
        pc: mk(&mut b, "pc", Intent::Scratch),
        drho: mk(&mut b, "drho", Intent::Scratch),
        dun: mk(&mut b, "dun", Intent::Scratch),
        dut: mk(&mut b, "dut", Intent::Scratch),
        dp: mk(&mut b, "dp", Intent::Scratch),
        qm: [
            mk(&mut b, "qm_rho", Intent::Scratch),
            mk(&mut b, "qm_un", Intent::Scratch),
            mk(&mut b, "qm_ut", Intent::Scratch),
            mk(&mut b, "qm_p", Intent::Scratch),
        ],
        qp: [
            mk(&mut b, "qp_rho", Intent::Scratch),
            mk(&mut b, "qp_un", Intent::Scratch),
            mk(&mut b, "qp_ut", Intent::Scratch),
            mk(&mut b, "qp_p", Intent::Scratch),
        ],
        ql: [
            mk(&mut b, "ql_rho", Intent::Scratch),
            mk(&mut b, "ql_un", Intent::Scratch),
            mk(&mut b, "ql_ut", Intent::Scratch),
            mk(&mut b, "ql_p", Intent::Scratch),
        ],
        qr: [
            mk(&mut b, "qr_rho", Intent::Scratch),
            mk(&mut b, "qr_un", Intent::Scratch),
            mk(&mut b, "qr_ut", Intent::Scratch),
            mk(&mut b, "qr_p", Intent::Scratch),
        ],
        sl: mk(&mut b, "sl", Intent::Scratch),
        flux: [
            mk(&mut b, "f_rho", Intent::Scratch),
            mk(&mut b, "f_un", Intent::Scratch),
            mk(&mut b, "f_ut", Intent::Scratch),
            mk(&mut b, "f_e", Intent::Scratch),
        ],
        courant_out: b.array("courant_out", Scalar::F32, 1i64, Intent::Out),
    };
    let _ = total;

    let step = b.var("step");
    let cmax = b.var("cmax");
    let dt = b.var("dt");
    let dtdx = b.var("dtdx");

    let mut kernels_per_step: Vec<HostStmt> = Vec::new();

    // ---------------- Courant reduction ----------------
    {
        let j = b.var("cr_j");
        let i = b.var("cr_i");
        let r = b.var("cr_rho");
        let u = b.var("cr_u");
        let v = b.var("cr_v");
        let eint = b.var("cr_eint");
        let pr = b.var("cr_p");
        let c = b.var("cr_c");
        let k = idx_expr(nx, &E::from(i), &E::from(j));
        let mut kern = Kernel::simple(
            "courant",
            vec![
                ParallelLoop::new(j, Expr::iconst(NG as i64), (E::from(ny) + NG as i64).expr()),
                ParallelLoop::new(i, Expr::iconst(NG as i64), (E::from(nx) + NG as i64).expr()),
            ],
            Block::new(vec![
                let_(r, Scalar::F32, ld(arr.rho, k.clone()).max(SMALLR as f64)),
                let_(u, Scalar::F32, ld(arr.rhou, k.clone()) / E::from(r)),
                let_(v, Scalar::F32, ld(arr.rhov, k.clone()) / E::from(r)),
                let_(
                    eint,
                    Scalar::F32,
                    ld(arr.e, k.clone()) / E::from(r)
                        - E::from(0.5) * (E::from(u) * u + E::from(v) * v),
                ),
                let_(
                    pr,
                    Scalar::F32,
                    (E::from((GAMMA - 1.0) as f64) * E::from(r) * eint).max(SMALLP as f64),
                ),
                let_(
                    c,
                    Scalar::F32,
                    (E::from(GAMMA as f64) * pr / E::from(r)).sqrt(),
                ),
            ]),
        );
        kern.region_reduction = Some(RegionReduction {
            op: ReduceOp::Max,
            value: (E::from(u).abs() + c)
                .max(E::from(v).abs() + E::from(c))
                .expr(),
            dest: arr.courant_out,
        });
        apply_variant(&mut kern, variant);
        kernels_per_step.push(HostStmt::Launch(kern));
    }
    kernels_per_step.push(HostStmt::Update {
        array: arr.courant_out,
        dir: paccport_ir::Dir::ToHost,
    });
    kernels_per_step.push(HostStmt::HostAssign {
        var: cmax,
        ty: Scalar::F32,
        value: ld(arr.courant_out, 0i64).max(1e-20).expr(),
    });
    kernels_per_step.push(HostStmt::HostAssign {
        var: dt,
        ty: Scalar::F32,
        value: (E::from(CFL as f64) * E::from(dx) / E::from(cmax)).expr(),
    });
    kernels_per_step.push(HostStmt::HostAssign {
        var: dtdx,
        ty: Scalar::F32,
        value: (E::from(dt) / E::from(dx)).expr(),
    });

    // ---------------- Per-direction sweeps ----------------
    for dir in [0usize, 1] {
        let dim = Dim {
            suffix: if dir == 0 { "x" } else { "y" },
            stride_is_x: dir == 0,
        };
        build_sweep(
            &mut b,
            &arr,
            nx,
            ny,
            dtdx,
            &dim,
            variant,
            &mut kernels_per_step,
        );
    }

    // Host bookkeeping per step (the GCC vs ICC lever of Fig. 15).
    kernels_per_step.push(HostStmt::HostCompute {
        label: "host boundary bookkeeping".into(),
        instr: ((nxt() + nyt()) * 400i64).expr(),
    });

    let mut region_arrays = vec![arr.rho, arr.rhou, arr.rhov, arr.e, arr.courant_out];
    region_arrays.extend([
        arr.prho, arr.pu, arr.pv, arr.peint, arr.pp, arr.pc, arr.drho, arr.dun, arr.dut, arr.dp,
        arr.sl,
    ]);
    region_arrays.extend(arr.qm);
    region_arrays.extend(arr.qp);
    region_arrays.extend(arr.ql);
    region_arrays.extend(arr.qr);
    region_arrays.extend(arr.flux);

    b.finish(vec![HostStmt::DataRegion {
        arrays: region_arrays,
        body: vec![HostStmt::HostLoop {
            var: step,
            lo: Expr::iconst(0),
            hi: Expr::param(nsteps),
            body: kernels_per_step,
        }],
    }])
}

/// `j·nxt + i` with `nxt = nx + 2·NG`.
fn idx_expr(nx: paccport_ir::ParamId, i: &E, j: &E) -> E {
    j.clone() * (E::from(nx) + (2 * NG) as i64) + i.clone()
}

fn apply_variant(k: &mut Kernel, variant: HydroVariant) {
    match variant {
        HydroVariant::Baseline => {}
        HydroVariant::Optimized => {
            for lp in &mut k.loops {
                lp.clauses.independent = true;
            }
        }
        HydroVariant::OpenCl => {
            for lp in &mut k.loops {
                lp.clauses.independent = true;
            }
            k.launch_hint = Some(if k.rank() >= 2 {
                LaunchHint {
                    local: (16, 16),
                    two_d: true,
                    group_per_iter: false,
                }
            } else {
                LaunchHint {
                    local: (256, 1),
                    two_d: false,
                    group_per_iter: false,
                }
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_sweep(
    b: &mut ProgramBuilder,
    arr: &Arrays,
    nx: paccport_ir::ParamId,
    ny: paccport_ir::ParamId,
    dtdx: VarId,
    dim: &Dim,
    variant: HydroVariant,
    out: &mut Vec<HostStmt>,
) {
    let sfx = dim.suffix;
    let nxt = || E::from(nx) + (2 * NG) as i64;
    let nyt = || E::from(ny) + (2 * NG) as i64;
    // Normal / transverse momentum arrays for this direction.
    let (m_un, m_ut) = if dim.stride_is_x {
        (arr.rhou, arr.rhov)
    } else {
        (arr.rhov, arr.rhou)
    };
    // Primitive normal / transverse velocity.
    let (p_un, p_ut) = if dim.stride_is_x {
        (arr.pu, arr.pv)
    } else {
        (arr.pv, arr.pu)
    };
    // ±1 cell along the sweep direction.
    let shift = |i: &E, j: &E, d: i64| -> E {
        if dim.stride_is_x {
            idx_expr(nx, &(i.clone() + d), j)
        } else {
            idx_expr(nx, i, &(j.clone() + d))
        }
    };
    let gamma = || E::from(GAMMA as f64);
    let g1 = || E::from((GAMMA - 1.0) as f64);

    let mut push = |mut k: Kernel| {
        apply_variant(&mut k, variant);
        out.push(HostStmt::Launch(k));
    };

    // -------- boundary: reflective ghosts, rank-1 over the
    // perpendicular axis, both sides unrolled (flat body). --------
    {
        let jv = b.var(&format!("bd_{sfx}_j"));
        let (lim_perp, lim_par) = if dim.stride_is_x {
            (nyt(), nxt())
        } else {
            (nxt(), nyt())
        };
        let mut stmts: Vec<Stmt> = Vec::new();
        // Cell coordinate helpers: `pos` along sweep axis, jv across.
        let cell = |pos: E, jv: VarId| -> E {
            if dim.stride_is_x {
                idx_expr(nx, &pos, &E::from(jv))
            } else {
                idx_expr(nx, &E::from(jv), &pos)
            }
        };
        for g in 0..NG as i64 {
            // Low side: ghost g mirrors cell 2·NG-1-g.
            let pairs = [
                (E::from(g), E::from(2 * NG as i64 - 1 - g)),
                (
                    lim_par.clone() - 1i64 - g,
                    lim_par.clone() - (2 * NG as i64) + g,
                ),
            ];
            for (dst, src) in pairs {
                let d = cell(dst, jv);
                let s = cell(src, jv);
                stmts.push(st(arr.rho, d.clone(), ld(arr.rho, s.clone())));
                stmts.push(st(arr.e, d.clone(), ld(arr.e, s.clone())));
                stmts.push(st(m_un, d.clone(), -ld(m_un, s.clone())));
                stmts.push(st(m_ut, d, ld(m_ut, s)));
            }
        }
        push(Kernel::simple(
            format!("boundary_{sfx}"),
            vec![ParallelLoop::new(jv, Expr::iconst(0), lim_perp.expr())],
            Block::new(stmts),
        ));
    }

    // -------- constoprim --------
    {
        let j = b.var(&format!("cp_{sfx}_j"));
        let i = b.var(&format!("cp_{sfx}_i"));
        let r = b.var(&format!("cp_{sfx}_r"));
        let u = b.var(&format!("cp_{sfx}_u"));
        let v = b.var(&format!("cp_{sfx}_v"));
        let k = idx_expr(nx, &E::from(i), &E::from(j));
        push(Kernel::simple(
            format!("constoprim_{sfx}"),
            vec![
                ParallelLoop::new(j, Expr::iconst(0), nyt().expr()),
                ParallelLoop::new(i, Expr::iconst(0), nxt().expr()),
            ],
            Block::new(vec![
                let_(r, Scalar::F32, ld(arr.rho, k.clone()).max(SMALLR as f64)),
                let_(u, Scalar::F32, ld(arr.rhou, k.clone()) / E::from(r)),
                let_(v, Scalar::F32, ld(arr.rhov, k.clone()) / E::from(r)),
                st(arr.prho, k.clone(), E::from(r)),
                st(arr.pu, k.clone(), E::from(u)),
                st(arr.pv, k.clone(), E::from(v)),
                st(
                    arr.peint,
                    k.clone(),
                    ld(arr.e, k.clone()) / E::from(r)
                        - E::from(0.5) * (E::from(u) * u + E::from(v) * v),
                ),
            ]),
        ));
    }

    // -------- eos --------
    {
        let j = b.var(&format!("eos_{sfx}_j"));
        let i = b.var(&format!("eos_{sfx}_i"));
        let p = b.var(&format!("eos_{sfx}_p"));
        let k = idx_expr(nx, &E::from(i), &E::from(j));
        push(Kernel::simple(
            format!("eos_{sfx}"),
            vec![
                ParallelLoop::new(j, Expr::iconst(0), nyt().expr()),
                ParallelLoop::new(i, Expr::iconst(0), nxt().expr()),
            ],
            Block::new(vec![
                let_(
                    p,
                    Scalar::F32,
                    (g1() * ld(arr.prho, k.clone()) * ld(arr.peint, k.clone())).max(SMALLP as f64),
                ),
                st(arr.pp, k.clone(), E::from(p)),
                st(
                    arr.pc,
                    k.clone(),
                    (gamma() * E::from(p) / ld(arr.prho, k.clone())).sqrt(),
                ),
            ]),
        ));
    }

    // Minmod as a select chain (identical to solver::minmod).
    let minmod = |a: E, b: E| -> E {
        (a.clone() * b.clone())
            .gt(0.0)
            .select(a.clone().abs().lt(b.clone().abs()).select(a, b), 0.0)
    };

    // -------- slope --------
    {
        let j = b.var(&format!("sl_{sfx}_j"));
        let i = b.var(&format!("sl_{sfx}_i"));
        let (jr, ir): (E, E) = if dim.stride_is_x {
            (E::from(j), E::from(i))
        } else {
            (E::from(i), E::from(j))
        };
        // Loop ranges: sweep axis 1..lim-1, perpendicular full.
        let (outer_hi, inner_lo, inner_hi) = if dim.stride_is_x {
            (nyt(), 1i64, nxt() - 1i64)
        } else {
            (nxt(), 1, nyt() - 1i64)
        };
        let k = idx_expr(nx, &ir, &jr);
        let km = shift(&ir, &jr, -1);
        let kp = shift(&ir, &jr, 1);
        let d = |arr_q: paccport_ir::ArrayId| -> E {
            minmod(
                ld(arr_q, k.clone()) - ld(arr_q, km.clone()),
                ld(arr_q, kp.clone()) - ld(arr_q, k.clone()),
            )
        };
        push(Kernel::simple(
            format!("slope_{sfx}"),
            vec![
                ParallelLoop::new(j, Expr::iconst(0), outer_hi.expr()),
                ParallelLoop::new(i, Expr::iconst(inner_lo), inner_hi.expr()),
            ],
            Block::new(vec![
                st(arr.drho, k.clone(), d(arr.prho)),
                st(arr.dun, k.clone(), d(p_un)),
                st(arr.dut, k.clone(), d(p_ut)),
                st(arr.dp, k.clone(), d(arr.pp)),
            ]),
        ));
    }

    // -------- trace --------
    {
        let j = b.var(&format!("tr_{sfx}_j"));
        let i = b.var(&format!("tr_{sfx}_i"));
        let (jr, ir): (E, E) = if dim.stride_is_x {
            (E::from(j), E::from(i))
        } else {
            (E::from(i), E::from(j))
        };
        let (outer_hi, inner_lo, inner_hi) = if dim.stride_is_x {
            (nyt(), 1i64, nxt() - 1i64)
        } else {
            (nxt(), 1, nyt() - 1i64)
        };
        let k = idx_expr(nx, &ir, &jr);
        let mut stmts = Vec::new();
        let srcs = [arr.prho, p_un, p_ut, arr.pp];
        let dqs = [arr.drho, arr.dun, arr.dut, arr.dp];
        for m in 0..4 {
            stmts.push(st(
                arr.qm[m],
                k.clone(),
                ld(srcs[m], k.clone()) - E::from(0.5) * ld(dqs[m], k.clone()),
            ));
            stmts.push(st(
                arr.qp[m],
                k.clone(),
                ld(srcs[m], k.clone()) + E::from(0.5) * ld(dqs[m], k.clone()),
            ));
        }
        push(Kernel::simple(
            format!("trace_{sfx}"),
            vec![
                ParallelLoop::new(j, Expr::iconst(0), outer_hi.expr()),
                ParallelLoop::new(i, Expr::iconst(inner_lo), inner_hi.expr()),
            ],
            Block::new(stmts),
        ));
    }

    // Interface ranges: sweep axis 1..lim-2, perpendicular full.
    let iface_loops = |b: &mut ProgramBuilder, tag: &str| -> (VarId, VarId, Vec<ParallelLoop>) {
        let j = b.var(&format!("{tag}_{sfx}_j"));
        let i = b.var(&format!("{tag}_{sfx}_i"));
        let (outer_hi, inner_lo, inner_hi) = if dim.stride_is_x {
            (nyt(), 1i64, nxt() - 2i64)
        } else {
            (nxt(), 1, nyt() - 2i64)
        };
        (
            j,
            i,
            vec![
                ParallelLoop::new(j, Expr::iconst(0), outer_hi.expr()),
                ParallelLoop::new(i, Expr::iconst(inner_lo), inner_hi.expr()),
            ],
        )
    };
    let coords = |i: VarId, j: VarId| -> (E, E) {
        if dim.stride_is_x {
            (E::from(i), E::from(j))
        } else {
            (E::from(j), E::from(i))
        }
    };

    // -------- qleftright --------
    {
        let (j, i, loops) = iface_loops(b, "qlr");
        let (ir, jr) = coords(i, j);
        let k = idx_expr(nx, &ir, &jr);
        let kp = shift(&ir, &jr, 1);
        let mut stmts = Vec::new();
        for m in 0..4 {
            stmts.push(st(arr.ql[m], k.clone(), ld(arr.qp[m], k.clone())));
            stmts.push(st(arr.qr[m], k.clone(), ld(arr.qm[m], kp.clone())));
        }
        push(Kernel::simple(
            format!("qleftright_{sfx}"),
            loops,
            Block::new(stmts),
        ));
    }

    // -------- riemann: interface wave speed --------
    {
        let (j, i, loops) = iface_loops(b, "rm");
        let (ir, jr) = coords(i, j);
        let k = idx_expr(nx, &ir, &jr);
        let cl = b.var(&format!("rm_{sfx}_cl"));
        let cr = b.var(&format!("rm_{sfx}_cr"));
        let sound = |rho: E, p: E| -> E {
            (gamma() * p.max(SMALLP as f64) / rho.max(SMALLR as f64)).sqrt()
        };
        push(Kernel::simple(
            format!("riemann_{sfx}"),
            loops,
            Block::new(vec![
                let_(
                    cl,
                    Scalar::F32,
                    sound(ld(arr.ql[0], k.clone()), ld(arr.ql[3], k.clone())),
                ),
                let_(
                    cr,
                    Scalar::F32,
                    sound(ld(arr.qr[0], k.clone()), ld(arr.qr[3], k.clone())),
                ),
                st(
                    arr.sl,
                    k.clone(),
                    (ld(arr.ql[1], k.clone()).abs() + cl)
                        .max(ld(arr.qr[1], k.clone()).abs() + E::from(cr)),
                ),
            ]),
        ));
    }

    // -------- cmpflx: Rusanov fluxes --------
    {
        let (j, i, loops) = iface_loops(b, "fx");
        let (ir, jr) = coords(i, j);
        let k = idx_expr(nx, &ir, &jr);
        // Per-side locals.
        let mut stmts = Vec::new();
        let mut side = |tag: &str, q: &[paccport_ir::ArrayId; 4]| -> ([VarId; 4], [VarId; 4]) {
            // cons = (rho, rho·un, rho·ut, E); f = fluxes.
            let rho = b.var(&format!("fx_{sfx}_{tag}_rho"));
            let un = b.var(&format!("fx_{sfx}_{tag}_un"));
            let ut = b.var(&format!("fx_{sfx}_{tag}_ut"));
            let p = b.var(&format!("fx_{sfx}_{tag}_p"));
            let en = b.var(&format!("fx_{sfx}_{tag}_e"));
            let f0 = b.var(&format!("fx_{sfx}_{tag}_f0"));
            let f1 = b.var(&format!("fx_{sfx}_{tag}_f1"));
            let f2 = b.var(&format!("fx_{sfx}_{tag}_f2"));
            let f3 = b.var(&format!("fx_{sfx}_{tag}_f3"));
            stmts.push(let_(
                rho,
                Scalar::F32,
                ld(q[0], k.clone()).max(SMALLR as f64),
            ));
            stmts.push(let_(un, Scalar::F32, ld(q[1], k.clone())));
            stmts.push(let_(ut, Scalar::F32, ld(q[2], k.clone())));
            stmts.push(let_(p, Scalar::F32, ld(q[3], k.clone()).max(SMALLP as f64)));
            stmts.push(let_(
                en,
                Scalar::F32,
                E::from(rho) * (E::from(0.5) * (E::from(un) * un + E::from(ut) * ut))
                    + E::from(p) / g1(),
            ));
            stmts.push(let_(f0, Scalar::F32, E::from(rho) * un));
            stmts.push(let_(f1, Scalar::F32, E::from(rho) * un * un + E::from(p)));
            stmts.push(let_(f2, Scalar::F32, E::from(rho) * un * ut));
            stmts.push(let_(f3, Scalar::F32, (E::from(en) + p) * un));
            ([rho, un, ut, p], [f0, f1, f2, f3])
            // cons components are (rho, rho·un, rho·ut, en) — rebuilt
            // below from the locals to avoid yet more variables.
        };
        let (l_prim, l_f) = side("l", &arr.ql);
        let (r_prim, r_f) = side("r", &arr.qr);
        let cons = |p: &[VarId; 4],
                    tag: &str,
                    stmts: &mut Vec<Stmt>,
                    b: &mut ProgramBuilder|
         -> [VarId; 4] {
            let c1 = b.var(&format!("fx_{sfx}_{tag}_c1"));
            let c2 = b.var(&format!("fx_{sfx}_{tag}_c2"));
            let c3 = b.var(&format!("fx_{sfx}_{tag}_c3"));
            stmts.push(let_(c1, Scalar::F32, E::from(p[0]) * p[1]));
            stmts.push(let_(c2, Scalar::F32, E::from(p[0]) * p[2]));
            stmts.push(let_(
                c3,
                Scalar::F32,
                E::from(p[0]) * (E::from(0.5) * (E::from(p[1]) * p[1] + E::from(p[2]) * p[2]))
                    + E::from(p[3]) / g1(),
            ));
            [p[0], c1, c2, c3]
        };
        let l_c = cons(&l_prim, "l", &mut stmts, b);
        let r_c = cons(&r_prim, "r", &mut stmts, b);
        let smax = b.var(&format!("fx_{sfx}_smax"));
        stmts.push(let_(smax, Scalar::F32, ld(arr.sl, k.clone())));
        for m in 0..4 {
            stmts.push(st(
                arr.flux[m],
                k.clone(),
                E::from(0.5) * (E::from(l_f[m]) + r_f[m])
                    - E::from(0.5) * E::from(smax) * (E::from(r_c[m]) - l_c[m]),
            ));
        }
        push(Kernel::simple(
            format!("cmpflx_{sfx}"),
            loops,
            Block::new(stmts),
        ));
    }

    // -------- update --------
    {
        let j = b.var(&format!("up_{sfx}_j"));
        let i = b.var(&format!("up_{sfx}_i"));
        let k = idx_expr(nx, &E::from(i), &E::from(j));
        let (ir, jr): (E, E) = (E::from(i), E::from(j));
        let km = if dim.stride_is_x {
            idx_expr(nx, &(ir.clone() - 1i64), &jr)
        } else {
            idx_expr(nx, &ir, &(jr.clone() - 1i64))
        };
        let upd = |dst: paccport_ir::ArrayId, m: usize| -> Stmt {
            st(
                dst,
                k.clone(),
                ld(dst, k.clone())
                    + E::from(dtdx) * (ld(arr.flux[m], km.clone()) - ld(arr.flux[m], k.clone())),
            )
        };
        push(Kernel::simple(
            format!("update_{sfx}"),
            vec![
                ParallelLoop::new(j, Expr::iconst(NG as i64), (E::from(ny) + NG as i64).expr()),
                ParallelLoop::new(i, Expr::iconst(NG as i64), (E::from(nx) + NG as i64).expr()),
            ],
            Block::new(vec![
                upd(arr.rho, 0),
                upd(m_un, 1),
                upd(m_ut, 2),
                upd(arr.e, 3),
            ]),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::validate;

    #[test]
    fn all_variants_are_well_formed() {
        for v in [
            HydroVariant::Baseline,
            HydroVariant::Optimized,
            HydroVariant::OpenCl,
        ] {
            let p = program(v);
            validate(&p).unwrap_or_else(|e| panic!("{v:?}: {e:?}"));
        }
    }

    #[test]
    fn kernel_inventory() {
        let p = program(HydroVariant::Optimized);
        // courant + 9 per direction = 19 nests.
        assert_eq!(p.kernel_count(), 19);
        for name in [
            "courant",
            "boundary_x",
            "constoprim_x",
            "eos_x",
            "slope_x",
            "trace_x",
            "qleftright_x",
            "riemann_x",
            "cmpflx_x",
            "update_x",
            "update_y",
        ] {
            assert!(p.kernel(name).is_some(), "missing kernel {name}");
        }
    }

    #[test]
    fn pgi_rejects_hydro() {
        use paccport_compilers::{compile, CompileOptions, CompilerId};
        let p = program(HydroVariant::Optimized);
        let err = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap_err();
        assert!(err.message.contains("pointer"));
    }
}
