//! The conformance oracle against the reference solver.
//!
//! Two fully independent implementations of the Hydro step exist in
//! this workspace: the hand-written Rust solver in
//! `paccport_hydro::solver` and the directive-annotated IR pipeline in
//! `paccport_hydro::acc`, which the conformance oracle can execute
//! directly — no compiler personality, no simulated device, no
//! lowering. Agreement here pins the IR program itself as a faithful
//! transcription of the numerics, so any downstream divergence is the
//! toolchain's fault, not the program's.

use paccport_conformance::run_oracle;
use paccport_devsim::Buffer;
use paccport_hydro::{program, run_reference, HydroVariant, State};
use paccport_ir::Program;

const NX: usize = 12;
const NY: usize = 6;
const STEPS: usize = 3;

const FIELDS: [&str; 4] = ["rho", "rhou", "rhov", "e"];

fn oracle_fields(p: &Program) -> Vec<(&'static str, Vec<f32>)> {
    let s = State::sod(NX, NY);
    let params = vec![
        ("nx".to_string(), NX as f64),
        ("ny".to_string(), NY as f64),
        ("dx".to_string(), s.dx as f64),
        ("nsteps".to_string(), STEPS as f64),
    ];
    let inputs = vec![
        ("rho".to_string(), Buffer::F32(s.rho.clone())),
        ("rhou".to_string(), Buffer::F32(s.rhou.clone())),
        ("rhov".to_string(), Buffer::F32(s.rhov.clone())),
        ("e".to_string(), Buffer::F32(s.e.clone())),
    ];
    let out = run_oracle(p, &params, &inputs).expect("oracle must execute the hydro program");
    FIELDS
        .iter()
        .map(|name| {
            let idx = p
                .arrays
                .iter()
                .position(|a| a.name == *name)
                .unwrap_or_else(|| panic!("hydro program declares no array `{name}`"));
            (*name, out.arrays[idx].as_f32().to_vec())
        })
        .collect()
}

fn max_rel_err(got: &[f32], want: &[f32]) -> f64 {
    assert_eq!(got.len(), want.len());
    got.iter()
        .zip(want)
        .map(|(g, w)| ((*g as f64) - (*w as f64)).abs() / 1.0f64.max(w.abs() as f64))
        .fold(0.0, f64::max)
}

#[test]
fn oracle_matches_reference_solver_on_tiny_grid() {
    let mut want = State::sod(NX, NY);
    run_reference(&mut want, STEPS);
    let refs: [(&str, &[f32]); 4] = [
        ("rho", &want.rho),
        ("rhou", &want.rhou),
        ("rhov", &want.rhov),
        ("e", &want.e),
    ];
    let got = oracle_fields(&program(HydroVariant::Optimized));
    for ((name, g), (_, w)) in got.iter().zip(refs) {
        let err = max_rel_err(g, w);
        assert!(
            err <= 1e-4,
            "{name}: oracle diverges from reference solver, max rel err {err}"
        );
    }
}

#[test]
fn oracle_is_clause_blind_across_hydro_variants() {
    // Baseline / Optimized / OpenCl differ only in directives and
    // thread distribution — semantics-neutral by definition. The
    // oracle ignores all of it, so the three variants must agree
    // *bitwise*, not merely within tolerance.
    let base = oracle_fields(&program(HydroVariant::Baseline));
    let opt = oracle_fields(&program(HydroVariant::Optimized));
    let ocl = oracle_fields(&program(HydroVariant::OpenCl));
    for i in 0..FIELDS.len() {
        assert_eq!(
            base[i], opt[i],
            "{}: baseline vs optimized differ under the oracle",
            FIELDS[i]
        );
        assert_eq!(
            opt[i], ocl[i],
            "{}: optimized vs opencl differ under the oracle",
            FIELDS[i]
        );
    }
}
