//! Property tests for the bytecode execution tier.
//!
//! Three families, each driven by a seeded structural generator that
//! builds small but gnarly kernels (nested sequential loops, branches,
//! selects, mixed f32/f64/int arithmetic, region reductions):
//!
//! 1. **Disassembler fixpoint** — `parse(disassemble(code)) == code`,
//!    so the textual form is a lossless round-trip of the instruction
//!    stream (including jump targets and the charge-stripped twin,
//!    which the parser re-derives).
//! 2. **Slot allocation** — variable register slots are injective per
//!    kernel, stay below `n_regs`, and `n_vars` matches the program
//!    environment, so the flat register file can never alias two
//!    distinct IR variables.
//! 3. **Tier bit-equality** — executing the same kernel under the
//!    tree-walker and the bytecode VM produces bitwise-identical
//!    output buffers (f64 bit patterns) and identical final variable
//!    environments.

use paccport_devsim::bytecode::{compile_kernel, disassemble, parse};
use paccport_devsim::interp::KernelFidelity;
use paccport_devsim::{exec_kernel, exec_kernel_tiered, fresh_vars, Buffer, ExecTier, V};
use paccport_ir::{
    assign, for_, if_, ld, let_, st, Block, Expr, HostStmt, Intent, Kernel, ParallelLoop, Program,
    ProgramBuilder, ReduceOp, RegionReduction, Scalar, Stmt, VarId, E,
};
use proptest::prelude::*;

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    /// Small float with an exact binary representation, occasionally
    /// zero or negative, so division/rcp/sqrt hit their edge cases.
    fn f(&mut self) -> f64 {
        (self.below(65) as f64 - 32.0) * 0.25
    }
}

/// A generated test case: program + its single kernel + inputs.
struct Case {
    p: Program,
    params: Vec<V>,
    bufs: Vec<Buffer>,
}

/// Context threaded through expression generation.
struct Gen {
    rng: Rng,
    /// Float-typed variables currently in scope.
    fvars: Vec<VarId>,
    /// Int-typed variables currently in scope (loop counters).
    ivars: Vec<VarId>,
    /// Data arrays safe to `ld` at the flat index.
    arrays: Vec<paccport_ir::ArrayId>,
    /// Expression that indexes within bounds at any program point.
    idx: Expr,
}

impl Gen {
    fn iexpr(&mut self, depth: u32) -> E {
        if depth == 0 || self.rng.below(3) == 0 {
            return match self.rng.below(3) {
                0 => E::from(Expr::iconst(self.rng.below(7) as i64 - 3)),
                1 => E::from(self.idx.clone()),
                _ => {
                    if self.ivars.is_empty() {
                        E::from(Expr::iconst(self.rng.below(5) as i64))
                    } else {
                        let v = self.ivars[self.rng.below(self.ivars.len() as u64) as usize];
                        E::from(Expr::var(v))
                    }
                }
            };
        }
        let a = self.iexpr(depth - 1);
        match self.rng.below(7) {
            0 => a + self.iexpr(depth - 1),
            1 => a - self.iexpr(depth - 1),
            2 => a * E::from(self.rng.below(5) as i64 - 2),
            // Non-zero constant divisors only: both tiers panic on a
            // zero divisor, which the bit-equality harness does not
            // model (the conformance driver's tier leg covers panics).
            3 => a / E::from(self.rng.below(4) as i64 + 1),
            4 => a % E::from(self.rng.below(4) as i64 + 2),
            5 => a.min(self.iexpr(depth - 1)),
            _ => a.max(self.iexpr(depth - 1)),
        }
    }

    fn cond(&mut self, depth: u32) -> E {
        let d = depth.saturating_sub(1);
        match self.rng.below(4) {
            0 => self.fexpr(d).lt(self.fexpr(d)),
            1 => self.fexpr(d).ge(self.fexpr(d)),
            2 => self.iexpr(d).eq_(self.iexpr(d)),
            _ => self.iexpr(d).le(self.iexpr(d)),
        }
    }

    fn fexpr(&mut self, depth: u32) -> E {
        if depth == 0 || self.rng.below(4) == 0 {
            return match self.rng.below(4) {
                0 => E::from(self.rng.f()),
                1 => {
                    let a = self.arrays[self.rng.below(self.arrays.len() as u64) as usize];
                    ld(a, E::from(self.idx.clone()))
                }
                2 => {
                    if self.fvars.is_empty() {
                        E::from(self.rng.f())
                    } else {
                        let v = self.fvars[self.rng.below(self.fvars.len() as u64) as usize];
                        E::from(Expr::var(v))
                    }
                }
                _ => self.iexpr(1).cast(Scalar::F64),
            };
        }
        let d = depth - 1;
        let a = self.fexpr(d);
        match self.rng.below(11) {
            0 => a + self.fexpr(d),
            1 => a - self.fexpr(d),
            2 => a * self.fexpr(d),
            3 => a / self.fexpr(d),
            4 => a.min(self.fexpr(d)),
            5 => a.max(self.fexpr(d)),
            6 => -a,
            7 => a.abs().sqrt(),
            8 => a.fma(self.fexpr(d), self.fexpr(d)),
            9 => {
                let c = self.cond(d);
                c.select(a, self.fexpr(d))
            }
            _ => a.cast(if self.rng.below(2) == 0 {
                Scalar::F32
            } else {
                Scalar::F64
            }),
        }
    }

    /// Straight-line or lightly structured statement list writing into
    /// already-declared float variables.
    fn stmts(&mut self, b: &mut ProgramBuilder, depth: u32) -> Vec<Stmt> {
        let mut out = Vec::new();
        let n = 1 + self.rng.below(3);
        for s in 0..n {
            match self.rng.below(if depth > 0 { 5 } else { 3 }) {
                0 | 1 => {
                    let ty = if self.rng.below(2) == 0 {
                        Scalar::F32
                    } else {
                        Scalar::F64
                    };
                    let v = b.var(&format!("t{}_{}", depth, s));
                    let init = self.fexpr(2);
                    out.push(let_(v, ty, init));
                    self.fvars.push(v);
                }
                2 => {
                    if let Some(&v) = self.fvars.last() {
                        let e = self.fexpr(2);
                        out.push(assign(v, e));
                    }
                }
                3 => {
                    // Variables declared inside the branch may never
                    // be defined at runtime; scope them to the block.
                    let c = self.cond(1);
                    let mark = self.fvars.len();
                    let then = self.stmts(b, depth - 1);
                    self.fvars.truncate(mark);
                    if !then.is_empty() {
                        out.push(if_(c, then));
                    }
                }
                _ => {
                    // Sequential inner loop with its own counter; the
                    // counter (and any body-local lets — the loop may
                    // be zero-trip) is only referenced inside the body.
                    let j = b.var(&format!("j{}_{}", depth, s));
                    self.ivars.push(j);
                    let mark = self.fvars.len();
                    let body = self.stmts(b, depth - 1);
                    self.fvars.truncate(mark);
                    self.ivars.pop();
                    let hi = self.rng.below(4) as i64; // 0 => zero-trip
                    if !body.is_empty() {
                        out.push(for_(j, 0i64, hi, body));
                    }
                }
            }
        }
        out
    }
}

/// Build one random program: a 1-D or 2-D simple kernel over two input
/// arrays and one output array, sometimes carrying a region reduction.
fn gen_case(seed: u64) -> Case {
    let mut rng = Rng::new(seed);
    let n: i64 = 4 + rng.below(3) as i64; // 4..=6
    let two_d = rng.below(2) == 0;
    let len = (n * n) as usize;

    let mut b = ProgramBuilder::new(format!("prop_{seed}"));
    let np = b.iparam("n");
    let a = b.array("a", Scalar::F32, E::from(np) * E::from(np), Intent::In);
    let c = b.array("c", Scalar::F64, E::from(np) * E::from(np), Intent::In);
    let out_elem = if rng.below(2) == 0 {
        Scalar::F32
    } else {
        Scalar::F64
    };
    let o = b.array("o", out_elem, E::from(np) * E::from(np), Intent::Out);
    let red = b.array("red", Scalar::F64, 1i64, Intent::Out);

    let iv = b.var("i");
    let jv = b.var("j");
    let (loops, idx) = if two_d {
        (
            vec![
                ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np)),
                ParallelLoop::new(jv, Expr::iconst(0), Expr::param(np)),
            ],
            (E::from(Expr::var(iv)) * E::from(np) + E::from(Expr::var(jv))).expr(),
        )
    } else {
        (
            vec![ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np))],
            Expr::var(iv),
        )
    };

    let mut g = Gen {
        rng,
        fvars: Vec::new(),
        ivars: Vec::new(),
        arrays: vec![a, c],
        idx: idx.clone(),
    };
    let mut body = g.stmts(&mut b, 2);
    let val = g.fexpr(3);
    body.push(st(o, E::from(idx.clone()), val));

    let mut k = Kernel::simple(format!("k{seed}"), loops, Block::new(body));
    if g.rng.below(3) == 0 {
        let op = match g.rng.below(3) {
            0 => ReduceOp::Add,
            1 => ReduceOp::Max,
            _ => ReduceOp::Min,
        };
        let value = g.fexpr(2).expr();
        k.region_reduction = Some(RegionReduction {
            op,
            value,
            dest: red,
        });
    }

    let mut rng = g.rng;
    let af: Vec<f32> = (0..len).map(|_| rng.f() as f32).collect();
    let cf: Vec<f64> = (0..len).map(|_| rng.f()).collect();
    let p = b.finish(vec![HostStmt::Launch(k)]);
    let bufs = vec![
        Buffer::F32(af),
        Buffer::F64(cf),
        Buffer::zeroed(out_elem, len),
        Buffer::zeroed(Scalar::F64, 1),
    ];
    Case {
        p,
        params: vec![V::I(n)],
        bufs,
    }
}

fn bits(v: Option<V>) -> Option<(u8, u64)> {
    v.map(|v| match v {
        V::I(i) => (0u8, i as u64),
        V::F(f) => (1u8, f.to_bits()),
        V::B(b) => (2u8, b as u64),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// compile → disassemble → parse is the identity on `KernelCode`.
    #[test]
    fn disassembly_fixpoint(seed in 0u64..600) {
        let case = gen_case(seed);
        for k in case.p.kernels() {
            let code = compile_kernel(&case.p, k);
            let text = disassemble(&code);
            let back = parse(&text)
                .unwrap_or_else(|e| panic!("parse failed for seed {seed}: {e}\n{text}"));
            prop_assert_eq!(&back, &code, "round-trip mismatch for seed {}", seed);
        }
    }

    /// Variable slots are injective and in range; the register file is
    /// large enough for every program variable.
    #[test]
    fn slot_allocation_injective(seed in 0u64..600) {
        let case = gen_case(seed);
        for k in case.p.kernels() {
            let code = compile_kernel(&case.p, k);
            prop_assert_eq!(code.n_vars as usize, case.p.var_names.len());
            let mut seen = std::collections::BTreeSet::new();
            for v in 0..case.p.var_names.len() {
                let slot = code.var_slot(VarId(v as u32));
                prop_assert!(slot < code.n_regs, "slot {} out of range", slot);
                prop_assert!(seen.insert(slot), "slot {} assigned twice", slot);
            }
        }
    }

    /// Tree-walker and bytecode VM agree bit-for-bit on every output
    /// buffer and on the final variable environment.
    #[test]
    fn tiers_bitwise_equal(seed in 0u64..600) {
        let case = gen_case(seed);
        let k = case.p.kernels()[0];

        let mut tree_bufs = case.bufs.clone();
        let mut tree_vars = fresh_vars(&case.p);
        exec_kernel(&case.p, &case.params, k, &mut tree_vars, &mut tree_bufs,
                    KernelFidelity::Exact);

        let mut bc_bufs = case.bufs.clone();
        let mut bc_vars = fresh_vars(&case.p);
        exec_kernel_tiered(&case.p, &case.params, k, &mut bc_vars, &mut bc_bufs,
                           KernelFidelity::Exact, None, ExecTier::Bytecode);

        for (bi, (tb, bb)) in tree_bufs.iter().zip(bc_bufs.iter()).enumerate() {
            prop_assert_eq!(tb.len(), bb.len());
            for i in 0..tb.len() {
                prop_assert_eq!(
                    tb.get(i).to_bits(), bb.get(i).to_bits(),
                    "seed {} buffer {} element {}: tree {} vs bytecode {}",
                    seed, bi, i, tb.get(i), bb.get(i)
                );
            }
        }
        for (vi, (tv, bv)) in tree_vars.iter().zip(bc_vars.iter()).enumerate() {
            prop_assert_eq!(
                bits(*tv), bits(*bv),
                "seed {} variable {} ({}) diverged", seed, vi, case.p.var_names[vi]
            );
        }
    }
}
