//! Typed buffers and the host/device memory pair with its transfer
//! ledger.

use paccport_ir::{ArrayDecl, MemSpace, Scalar};
use serde::{Deserialize, Serialize};

/// Identity of one memory cell as seen by the race detector's shadow
/// log. Global arrays are shared by every simulated thread, so their
/// cells are identified by (array, index) alone; work-group local
/// arrays are instantiated per group, so the group id is part of the
/// location (lanes of different groups can never touch the same local
/// cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemLoc {
    pub space: MemSpace,
    pub array: u32,
    /// Owning group for `MemSpace::Local` cells; `-1` for global.
    pub group: i64,
    pub index: i64,
}

impl MemLoc {
    pub fn global(array: u32, index: i64) -> MemLoc {
        MemLoc {
            space: MemSpace::Global,
            array,
            group: -1,
            index,
        }
    }

    pub fn local(array: u32, group: i64, index: i64) -> MemLoc {
        MemLoc {
            space: MemSpace::Local,
            array,
            group,
            index,
        }
    }
}

/// A typed, 1-D data buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Buffer {
    F32(Vec<f32>),
    F64(Vec<f64>),
    I32(Vec<i32>),
    U32(Vec<u32>),
    Bool(Vec<u8>),
}

impl Buffer {
    /// Zero-initialized buffer of the given element type.
    pub fn zeroed(elem: Scalar, len: usize) -> Buffer {
        match elem {
            Scalar::F32 => Buffer::F32(vec![0.0; len]),
            Scalar::F64 => Buffer::F64(vec![0.0; len]),
            Scalar::I32 => Buffer::I32(vec![0; len]),
            Scalar::U32 => Buffer::U32(vec![0; len]),
            Scalar::Bool => Buffer::Bool(vec![0; len]),
        }
    }

    pub fn from_f32(v: Vec<f32>) -> Buffer {
        Buffer::F32(v)
    }

    pub fn from_i32(v: Vec<i32>) -> Buffer {
        Buffer::I32(v)
    }

    pub fn elem(&self) -> Scalar {
        match self {
            Buffer::F32(_) => Scalar::F32,
            Buffer::F64(_) => Scalar::F64,
            Buffer::I32(_) => Scalar::I32,
            Buffer::U32(_) => Scalar::U32,
            Buffer::Bool(_) => Scalar::Bool,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::U32(v) => v.len(),
            Buffer::Bool(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn bytes(&self) -> u64 {
        (self.len() * self.elem().size_bytes()) as u64
    }

    /// Read element `i` as f64 (integers are converted).
    pub fn get(&self, i: usize) -> f64 {
        match self {
            Buffer::F32(v) => v[i] as f64,
            Buffer::F64(v) => v[i],
            Buffer::I32(v) => v[i] as f64,
            Buffer::U32(v) => v[i] as f64,
            Buffer::Bool(v) => v[i] as f64,
        }
    }

    /// Write element `i` from an f64 (narrowed per the element type).
    pub fn set(&mut self, i: usize, val: f64) {
        match self {
            Buffer::F32(v) => v[i] = val as f32,
            Buffer::F64(v) => v[i] = val,
            Buffer::I32(v) => v[i] = val as i32,
            Buffer::U32(v) => v[i] = val as u32,
            Buffer::Bool(v) => v[i] = (val != 0.0) as u8,
        }
    }

    /// f32 view (panics on other types) — handy in validators.
    pub fn as_f32(&self) -> &[f32] {
        match self {
            Buffer::F32(v) => v,
            other => panic!("expected F32 buffer, got {:?}", other.elem()),
        }
    }

    /// i32 view (panics on other types).
    pub fn as_i32(&self) -> &[i32] {
        match self {
            Buffer::I32(v) => v,
            other => panic!("expected I32 buffer, got {:?}", other.elem()),
        }
    }

    /// Bit-exact element fingerprints. The conformance harness compares
    /// buffers through this rather than `PartialEq`: float `==` treats
    /// `NaN != NaN` and `-0.0 == 0.0`, both of which would mask (or
    /// fake) real divergence between execution paths.
    pub fn bits(&self) -> Vec<u64> {
        match self {
            Buffer::F32(v) => v.iter().map(|x| x.to_bits() as u64).collect(),
            Buffer::F64(v) => v.iter().map(|x| x.to_bits()).collect(),
            Buffer::I32(v) => v.iter().map(|x| *x as u32 as u64).collect(),
            Buffer::U32(v) => v.iter().map(|x| *x as u64).collect(),
            Buffer::Bool(v) => v.iter().map(|x| *x as u64).collect(),
        }
    }
}

/// Direction-tagged transfer ledger — what `nvprof` would show, and
/// the evidence behind Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TransferLedger {
    pub h2d_count: u64,
    pub d2h_count: u64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
}

impl TransferLedger {
    pub fn total_count(&self) -> u64 {
        self.h2d_count + self.d2h_count
    }

    pub fn total_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes
    }

    pub fn record_h2d(&mut self, bytes: u64) {
        self.h2d_count += 1;
        self.h2d_bytes += bytes;
    }

    pub fn record_d2h(&mut self, bytes: u64) {
        self.d2h_count += 1;
        self.d2h_bytes += bytes;
    }
}

/// Instantiate zeroed buffers for every array of a program, given the
/// evaluated lengths.
pub fn alloc_buffers(decls: &[ArrayDecl], lens: &[usize]) -> Vec<Buffer> {
    decls
        .iter()
        .zip(lens)
        .map(|(d, l)| Buffer::zeroed(d.elem, *l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_all_types() {
        for elem in [
            Scalar::F32,
            Scalar::F64,
            Scalar::I32,
            Scalar::U32,
            Scalar::Bool,
        ] {
            let mut b = Buffer::zeroed(elem, 4);
            b.set(2, 1.0);
            assert_eq!(b.get(2), 1.0, "{elem:?}");
            assert_eq!(b.get(0), 0.0);
            assert_eq!(b.len(), 4);
        }
    }

    #[test]
    fn bits_distinguish_what_float_eq_cannot() {
        let a = Buffer::F32(vec![f32::NAN, 0.0]);
        let b = Buffer::F32(vec![f32::NAN, -0.0]);
        // NaN is bitwise-stable under `bits`…
        assert_eq!(a.bits()[0], b.bits()[0]);
        // …and signed zeros are told apart, unlike float `==`.
        assert_ne!(a.bits()[1], b.bits()[1]);
        assert_eq!(Buffer::I32(vec![-1]).bits(), vec![u32::MAX as u64]);
    }

    #[test]
    fn byte_accounting_respects_element_size() {
        assert_eq!(Buffer::zeroed(Scalar::F32, 10).bytes(), 40);
        assert_eq!(Buffer::zeroed(Scalar::F64, 10).bytes(), 80);
        assert_eq!(Buffer::zeroed(Scalar::Bool, 10).bytes(), 10);
    }

    #[test]
    fn ledger_tracks_both_directions() {
        let mut l = TransferLedger::default();
        l.record_h2d(100);
        l.record_h2d(50);
        l.record_d2h(25);
        assert_eq!(l.total_count(), 3);
        assert_eq!(l.total_bytes(), 175);
        assert_eq!(l.h2d_count, 2);
    }

    #[test]
    fn integer_narrowing_on_set() {
        let mut b = Buffer::zeroed(Scalar::I32, 1);
        b.set(0, 3.9);
        assert_eq!(b.as_i32()[0], 3);
    }
}
