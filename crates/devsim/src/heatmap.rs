//! The Figure-4 machinery: sweep gang × worker (or the equivalent)
//! thread-distribution configurations, recording modeled elapsed time
//! for each cell. Cells are independent, so the sweep is parallelized
//! with rayon.

use crate::runner::{run, RunConfig};
use paccport_compilers::{compile, CompileError, CompileOptions, CompilerId};
use paccport_ir::Program;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One heat map: rows = gang counts, columns = worker counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeatMap {
    pub title: String,
    pub gangs: Vec<u32>,
    pub workers: Vec<u32>,
    /// `cells[gi][wi]` = elapsed seconds (NaN for failed cells).
    pub cells: Vec<Vec<f64>>,
}

impl HeatMap {
    /// Coordinates and value of the fastest cell.
    pub fn best(&self) -> (u32, u32, f64) {
        let mut best = (self.gangs[0], self.workers[0], f64::INFINITY);
        for (gi, g) in self.gangs.iter().enumerate() {
            for (wi, w) in self.workers.iter().enumerate() {
                let v = self.cells[gi][wi];
                if v.is_finite() && v < best.2 {
                    best = (*g, *w, v);
                }
            }
        }
        best
    }

    /// Elapsed time at a specific configuration.
    pub fn at(&self, gang: u32, worker: u32) -> Option<f64> {
        let gi = self.gangs.iter().position(|g| *g == gang)?;
        let wi = self.workers.iter().position(|w| *w == worker)?;
        Some(self.cells[gi][wi])
    }

    /// ASCII rendering, brightest (fastest) to darkest, like Fig. 4.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}  (elapsed seconds; * = best)", self.title);
        let (bg, bw, _) = self.best();
        let _ = write!(out, "{:>8}", "gang\\wkr");
        for w in &self.workers {
            let _ = write!(out, "{w:>10}");
        }
        out.push('\n');
        for (gi, g) in self.gangs.iter().enumerate() {
            let _ = write!(out, "{g:>8}");
            for (wi, w) in self.workers.iter().enumerate() {
                let v = self.cells[gi][wi];
                let marker = if *g == bg && *w == bw { "*" } else { "" };
                let _ = write!(out, "{:>10}", format!("{v:.3}{marker}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Sweep a program over gang × worker configurations.
///
/// `configure` receives a fresh clone of the program plus the (gang,
/// worker) pair and must set the appropriate clauses; each configured
/// program is compiled with `compiler`/`options` and run with `cfg`.
#[allow(clippy::too_many_arguments)]
pub fn sweep(
    title: &str,
    program: &Program,
    compiler: CompilerId,
    options: &CompileOptions,
    cfg: &RunConfig,
    gangs: &[u32],
    workers: &[u32],
    configure: impl Fn(&mut Program, u32, u32) + Sync,
) -> Result<HeatMap, CompileError> {
    let cells: Vec<Vec<f64>> = gangs
        .par_iter()
        .map(|g| {
            workers
                .iter()
                .map(|w| {
                    let mut p = program.clone();
                    configure(&mut p, *g, *w);
                    // Transient injected faults clear on a later
                    // attempt (the decision hash includes the attempt
                    // counter), so a short retry loop keeps chaos runs
                    // lossless; genuine errors fail identically every
                    // time and fall through to NaN as before.
                    let mut elapsed = f64::NAN;
                    for attempt in 0..3 {
                        paccport_faults::set_attempt(attempt);
                        let r = compile(compiler, &p, options)
                            .map_err(|e| e.to_string())
                            .and_then(|c| run(&c, cfg));
                        match r {
                            Ok(r) => {
                                elapsed = r.elapsed;
                                break;
                            }
                            Err(e) if paccport_faults::is_injected(&e) => continue,
                            Err(_) => break,
                        }
                    }
                    paccport_faults::set_attempt(0);
                    elapsed
                })
                .collect()
        })
        .collect();
    Ok(HeatMap {
        title: title.into(),
        gangs: gangs.to_vec(),
        workers: workers.to_vec(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        ld, st, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar,
    };

    fn memory_bound_program() -> Program {
        let mut b = ProgramBuilder::new("memtouch");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let i = b.var("i");
        let k = Kernel::simple(
            "touch",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            paccport_ir::Block::new(vec![st(a, i, ld(a, i) + ld(x, i))]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn sweep_produces_full_grid_and_sane_best() {
        let p = memory_bound_program();
        let cfg = RunConfig::timing(vec![("n".into(), 4096.0 * 4096.0)], 1);
        let gangs = [1u32, 64, 256, 1024];
        let workers = [1u32, 8, 16, 32, 64];
        let hm = sweep(
            "CAPS-K40",
            &p,
            CompilerId::Caps,
            &CompileOptions::gpu(),
            &cfg,
            &gangs,
            &workers,
            |p, g, w| {
                p.map_kernels(|k| {
                    k.loops[0].clauses.gang = Some(g);
                    k.loops[0].clauses.worker = Some(w);
                });
            },
        )
        .unwrap();
        assert_eq!(hm.cells.len(), 4);
        assert_eq!(hm.cells[0].len(), 5);
        let (bg, bw, bt) = hm.best();
        assert!(bt.is_finite());
        // 1x1 must be the worst corner by a wide margin.
        let worst = hm.at(1, 1).unwrap();
        // Host↔device copy time is constant across cells and
        // compresses the ratio for this tiny kernel.
        assert!(worst / bt > 20.0, "1x1 {worst} vs best {bt}");
        // The best cell should be a saturating configuration.
        assert!(bg as u64 * bw as u64 >= 2048, "best ({bg},{bw})");
        // Render does not panic and marks the best.
        assert!(hm.render().contains('*'));
    }
}
