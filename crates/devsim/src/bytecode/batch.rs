//! Batched lane execution of the innermost parallel loop.
//!
//! The scalar VM still dispatches one instruction per value per lane;
//! for the hot kernels that cost is the whole runtime. This module
//! compiles a *second* form of a simple kernel's body — a straight
//! batch program over the entire innermost iteration space — executed
//! once per inner loop instead of once per lane.
//!
//! Values are classified at compile time:
//!
//! * **S** — lane-invariant scalars (one [`V`] slot, computed once);
//! * **A** — affine lane integers `base + stride·lane` (one `(i64,
//!   i64)` pair — never materialized per lane);
//! * **LF/LB** — genuinely lane-varying floats / bools, held in flat
//!   vectors and processed by tight per-op loops.
//!
//! The "hoisting of loop-invariant operand resolution" happens in this
//! classification: a scalar operand of a float lane op is `as_f()`'d
//! (and, for arithmetic, f32-narrowed) exactly once per batch, not per
//! lane; a fully scalar load index becomes a single [`BOp::SLoad`]
//! per sequential-loop trip instead of one per lane per trip.
//!
//! **Bitwise equivalence is non-negotiable.** Every lane op replicates
//! [`interp::bin`]/[`interp::cmp`]/[`interp::coerce`] semantics for
//! the value classes it is compiled against (the compiler only picks
//! the float path where a lane operand is *guaranteed* tag-`F`, etc.).
//! Reordering effects across lanes is handled by construction:
//!
//! * arrays written by a batch may only be read by the *same* affine
//!   index they are written at (checked at runtime, per batch, with a
//!   nonzero stride — every lane then owns a disjoint slice, so
//!   lane-major and op-major orders commute);
//! * every panic the tree-walker could raise mid-batch (bounds,
//!   integer division by zero, undefined variable reads, parameter
//!   type confusion) is detected by a **validation walk** that runs
//!   the scalar/affine/control half of the program first, touching no
//!   buffer; on any hazard the batch is abandoned *before any side
//!   effect* and the caller falls back to the scalar VM, which
//!   reproduces the tree-walker's partial effects and panic exactly.
//!
//! Anything the classifier cannot prove — `If` statements, atomics,
//! local memory, lane-varying non-affine integers, stores inside
//! sequential loops, ambiguous types — simply fails to compile
//! (`build` returns `None`) and the kernel keeps the scalar VM path.
//!
//! [`interp::bin`]: crate::interp
//! [`interp::cmp`]: crate::interp
//! [`interp::coerce`]: crate::interp

use crate::interp::{self, V};
use crate::memory::Buffer;
use paccport_ir::expr::{BinOp, CmpOp, Expr, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody, ReduceOp};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{ArrayId, MemSpace, ParamId, Scalar, VarId};
use paccport_ir::Program;

/// Where a value lives during batch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// Scalar slot (`BatchState::sv`). Slots `0..n_vars` mirror the
    /// VM's variable registers.
    S(u16),
    /// Affine lane integer: `av[i] = (base, stride)`, lane `b` holds
    /// `base + stride·b`.
    A(u16),
    /// f64 lane vector.
    LF(u16),
    /// bool lane vector.
    LB(u16),
}

/// One batch operation. Scalar/affine/control ops run in both the
/// validation and execution walks; lane ops (`LF`/`LB` producers,
/// gathers, scatters) run only in the execution walk.
#[derive(Debug, Clone, PartialEq)]
pub enum BOp {
    // ---- scalar (lane-invariant) ----
    SConst {
        dst: u16,
        v: V,
    },
    /// Parameter read; `tag` is the declared type's runtime tag
    /// (0 = F, 1 = I, 2 = B), checked by the validation walk wherever
    /// the compiler leaned on the declaration for typing.
    SParam {
        dst: u16,
        p: u16,
        tag: u8,
    },
    SUn {
        op: UnOp,
        dst: u16,
        a: u16,
    },
    /// Generic binary op ([`interp::bin`]); the validation walk
    /// pre-checks integer division by zero so execution cannot panic.
    SBin {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    SCmp {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    SFma {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    SCast {
        ty: Scalar,
        dst: u16,
        a: u16,
    },
    /// Eager scalar select (arms are pure in batchable bodies).
    SSelect {
        dst: u16,
        c: u16,
        a: u16,
        b: u16,
    },
    SToInt {
        dst: u16,
        a: u16,
    },
    /// `Let`: coerce into the variable slot, mark defined.
    SLet {
        ty: Scalar,
        var: u16,
        src: u16,
    },
    /// `Assign`: raw store into the variable slot, mark defined.
    SSet {
        var: u16,
        src: u16,
    },
    /// Scalar-indexed load (both walks; hazard: bounds).
    SLoad {
        array: u16,
        idx: u16,
        dst: u16,
    },
    /// Validation-only: fall back unless the variable is defined.
    VDefCheck {
        var: u16,
    },
    /// Mark a lane-assigned variable runtime-defined.
    DefMark {
        var: u16,
    },

    // ---- affine ----
    AAddS {
        dst: u16,
        a: u16,
        s: u16,
    },
    ASubAS {
        dst: u16,
        a: u16,
        s: u16,
    },
    ASubSA {
        dst: u16,
        s: u16,
        a: u16,
    },
    AAddA {
        dst: u16,
        a: u16,
        b: u16,
    },
    ASubAA {
        dst: u16,
        a: u16,
        b: u16,
    },
    AMulS {
        dst: u16,
        a: u16,
        s: u16,
    },
    ANeg {
        dst: u16,
        a: u16,
    },
    /// Degenerate affine from a scalar: `(sv[s].as_i(), 0)`.
    AFromS {
        dst: u16,
        s: u16,
    },

    // ---- conversions into lane vectors (execution walk only) ----
    /// Broadcast `sv[s].as_f()`.
    BcastF {
        dst: u16,
        s: u16,
    },
    /// Broadcast `sv[s].as_b()`.
    BcastB {
        dst: u16,
        s: u16,
    },
    /// Affine → f64 lanes (`as_f` of the exact integer).
    CvtAtoF {
        dst: u16,
        a: u16,
    },
    /// Affine → bool lanes (`!= 0`).
    CvtAtoB {
        dst: u16,
        a: u16,
    },
    /// Bool lanes → f64 lanes (0.0 / 1.0).
    CvtBtoF {
        dst: u16,
        a: u16,
    },
    /// f64 lanes → bool lanes (`!= 0.0`).
    CvtFtoB {
        dst: u16,
        a: u16,
    },
    /// `v as f32 as f64` per lane (the F32 `Let` coercion / cast).
    CvtFtoF32 {
        dst: u16,
        a: u16,
    },
    LCopyF {
        dst: u16,
        a: u16,
    },

    // ---- float lane ops (f32-narrowed, exactly `interp::bin`) ----
    FBinLL {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    /// Lane ⊕ scalar: the scalar is resolved (`as_f() as f32`) once.
    FBinLS {
        op: BinOp,
        dst: u16,
        a: u16,
        s: u16,
    },
    FBinSL {
        op: BinOp,
        dst: u16,
        s: u16,
        b: u16,
    },
    FFma {
        dst: u16,
        a: u16,
        b: u16,
        c: u16,
    },
    UnF {
        op: UnOp,
        dst: u16,
        a: u16,
    },
    /// Full-f64 comparisons, exactly `interp::cmp`'s float path.
    FCmpLL {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },
    FCmpLS {
        op: CmpOp,
        dst: u16,
        a: u16,
        s: u16,
    },
    FCmpSL {
        op: CmpOp,
        dst: u16,
        s: u16,
        b: u16,
    },
    /// Integer comparisons with affine operands.
    ICmpAS {
        op: CmpOp,
        dst: u16,
        a: u16,
        s: u16,
    },
    ICmpSA {
        op: CmpOp,
        dst: u16,
        s: u16,
        a: u16,
    },
    ICmpAA {
        op: CmpOp,
        dst: u16,
        a: u16,
        b: u16,
    },

    // ---- bool lane ops ----
    BAnd {
        dst: u16,
        a: u16,
        b: u16,
    },
    BOr {
        dst: u16,
        a: u16,
        b: u16,
    },
    BNot {
        dst: u16,
        a: u16,
    },
    /// `cond ? a : b` per lane (eager; taken-arm laziness is restored
    /// by the purity restrictions on batchable bodies).
    SelF {
        dst: u16,
        c: u16,
        a: u16,
        b: u16,
    },

    // ---- memory ----
    /// Affine gather from an F32/F64 array. Hazard: bounds (checked at
    /// the affine endpoints by the validation walk).
    GatherF {
        array: u16,
        aff: u16,
        dst: u16,
        f32src: bool,
    },
    /// Affine scatter of f64 lanes. `guard` indexes
    /// [`BatchPlan::guards`] (`u32::MAX` = unguarded): all listed
    /// affine values must equal this one, with nonzero stride, or the
    /// batch falls back.
    Scatter {
        array: u16,
        aff: u16,
        src: u16,
        guard: u32,
    },
    /// Affine scatter of one resolved scalar value.
    ScatterS {
        array: u16,
        aff: u16,
        s: u16,
        guard: u32,
    },

    // ---- control (both walks) ----
    /// `if sv[cnt] >= sv[hi] jump exit` (both always `V::I`).
    ForHead {
        cnt: u16,
        hi: u16,
        exit: u32,
    },
    ForStep {
        cnt: u16,
        step: i64,
        back: u32,
    },
}

/// A compiled batch program for one kernel's innermost parallel loop.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    pub ops: Vec<BOp>,
    /// Scalar slots `0..n_vars` mirror the VM variable registers.
    pub n_vars: u16,
    /// The innermost parallel loop variable: the tree-walker marks it
    /// defined on every lane, so a non-empty batch does too.
    pub lane_var: u16,
    pub n_s: u16,
    pub n_a: u16,
    pub n_f: u16,
    pub n_b: u16,
    /// Lane-valued variables written back as the last lane's value
    /// (the state the tree-walker leaves after its final iteration).
    pub outs: Vec<(u16, Loc)>,
    /// Region-reduction value location and operator, folded
    /// lane-ascending.
    pub reduce: Option<(Loc, ReduceOp)>,
    /// Affine-equality guard sets for read/written arrays.
    pub guards: Vec<Vec<u16>>,
}

/// Reusable batch scratch state (allocated once per kernel exec).
#[derive(Debug, Default)]
pub struct BatchState {
    sv: Vec<V>,
    vdef: Vec<bool>,
    av: Vec<(i64, i64)>,
    fl: Vec<Vec<f64>>,
    bl: Vec<Vec<bool>>,
    /// Snapshot buffers for restoring between the walks.
    sv_snap: Vec<V>,
    vdef_snap: Vec<bool>,
    av_snap: Vec<(i64, i64)>,
}

/// Largest batch the lane vectors will materialize.
const MAX_BATCH: i64 = 1 << 22;

/// Execute `plan` over lanes `lo..hi`. Returns `false` (having touched
/// nothing) if the batch must fall back to the scalar VM.
#[allow(clippy::too_many_arguments)]
pub fn run_batch(
    plan: &BatchPlan,
    state: &mut Option<Box<BatchState>>,
    lo: i64,
    hi: i64,
    regs: &mut [V],
    defined: &mut [bool],
    params: &[V],
    bufs: &mut [Buffer],
    acc: &mut Option<f64>,
) -> bool {
    if hi <= lo {
        // Zero-trip inner loop: the tree-walker does nothing.
        return true;
    }
    if hi - lo > MAX_BATCH {
        return false;
    }
    let bn = (hi - lo) as usize;
    let st = state.get_or_insert_with(Default::default);
    let nv = plan.n_vars as usize;

    // Prepare scalar/affine state and size the lane vectors.
    st.sv.clear();
    st.sv.extend_from_slice(&regs[..nv]);
    st.sv.resize(plan.n_s as usize, V::I(0));
    st.vdef.clear();
    st.vdef.extend_from_slice(&defined[..nv]);
    st.vdef[plan.lane_var as usize] = true;
    st.av.resize(plan.n_a as usize, (0, 0));
    st.av[0] = (lo, 1);
    st.fl.resize(plan.n_f as usize, Vec::new());
    for v in &mut st.fl {
        v.resize(bn, 0.0);
    }
    st.bl.resize(plan.n_b as usize, Vec::new());
    for v in &mut st.bl {
        v.resize(bn, false);
    }

    // Validation walk: scalar/affine/control only, hazard checks, no
    // buffer writes. Fall back on any hazard.
    st.sv_snap.clone_from(&st.sv);
    st.vdef_snap.clone_from(&st.vdef);
    st.av_snap.clone_from(&st.av);
    if !walk::<true>(plan, st, bn, params, bufs) {
        return false;
    }
    // Restore and run for real.
    st.sv.clone_from(&st.sv_snap);
    st.vdef.clone_from(&st.vdef_snap);
    st.av.clone_from(&st.av_snap);
    let ok = walk::<false>(plan, st, bn, params, bufs);
    debug_assert!(ok, "execution walk failed after validation passed");

    // Fold the region reduction, lane-ascending like the tree-walker.
    if let (Some((loc, op)), Some(total)) = (plan.reduce, acc.as_mut()) {
        match loc {
            Loc::LF(r) => {
                for &v in &st.fl[r as usize][..bn] {
                    *total = op.combine(*total, v);
                }
            }
            Loc::S(r) => {
                let v = st.sv[r as usize].as_f();
                for _ in 0..bn {
                    *total = op.combine(*total, v);
                }
            }
            Loc::A(r) => {
                let (base, stride) = st.av[r as usize];
                for b in 0..bn {
                    *total = op.combine(*total, (base + stride * b as i64) as f64);
                }
            }
            Loc::LB(r) => {
                for &v in &st.bl[r as usize][..bn] {
                    *total = op.combine(*total, v as i64 as f64);
                }
            }
        }
    }

    // Write the environment back: scalar slots wholesale, lane-valued
    // variables as their final lane's value.
    regs[..nv].copy_from_slice(&st.sv[..nv]);
    defined[..nv].copy_from_slice(&st.vdef[..nv]);
    for &(var, loc) in &plan.outs {
        regs[var as usize] = match loc {
            Loc::S(r) => st.sv[r as usize],
            Loc::A(r) => {
                let (base, stride) = st.av[r as usize];
                V::I(base + stride * (bn as i64 - 1))
            }
            Loc::LF(r) => V::F(st.fl[r as usize][bn - 1]),
            Loc::LB(r) => V::B(st.bl[r as usize][bn - 1]),
        };
        // Definedness is NOT forced here: the wholesale `vdef` copy
        // above already carries the exact runtime answer (`DefMark`
        // runs iff the assignment executed, so a lane temp assigned
        // only inside a zero-trip sequential loop stays undefined,
        // exactly like the tree-walker). An undefined variable's
        // written-back value is never observed.
    }
    true
}

// ---------------------------------------------------------------
// Execution
// ---------------------------------------------------------------

/// Lane binary op with full destination-aliasing support (the
/// pin-redirect peephole may point an op's destination at one of its
/// operands).
fn lbin<T: Copy + Default>(
    v: &mut [Vec<T>],
    bn: usize,
    dst: u16,
    a: u16,
    b: u16,
    f: impl Fn(T, T) -> T,
) {
    let (d, a, b) = (dst as usize, a as usize, b as usize);
    let mut dv = std::mem::take(&mut v[d]);
    if d == a && d == b {
        for x in &mut dv[..bn] {
            *x = f(*x, *x);
        }
    } else if d == a {
        for (x, &y) in dv[..bn].iter_mut().zip(&v[b][..bn]) {
            *x = f(*x, y);
        }
    } else if d == b {
        for (x, &y) in dv[..bn].iter_mut().zip(&v[a][..bn]) {
            *x = f(y, *x);
        }
    } else {
        for ((x, &y), &z) in dv[..bn].iter_mut().zip(&v[a][..bn]).zip(&v[b][..bn]) {
            *x = f(y, z);
        }
    }
    v[d] = dv;
}

/// Lane unary op, destination possibly aliasing the operand.
fn lmap<T: Copy + Default>(v: &mut [Vec<T>], bn: usize, dst: u16, a: u16, f: impl Fn(T) -> T) {
    let (d, a) = (dst as usize, a as usize);
    if d == a {
        for x in &mut v[d][..bn] {
            *x = f(*x);
        }
    } else {
        let mut dv = std::mem::take(&mut v[d]);
        for (x, &y) in dv[..bn].iter_mut().zip(&v[a][..bn]) {
            *x = f(y);
        }
        v[d] = dv;
    }
}

/// `interp::bin`'s f32-narrowed float arithmetic, one element.
#[inline(always)]
fn f32_arith(op: BinOp, x: f64, y: f64) -> f64 {
    let (x, y) = (x as f32, y as f32);
    (match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => unreachable!("float lane ops are arithmetic-only"),
    }) as f64
}

/// `interp::cmp`'s full-f64 float comparison, one element.
#[inline(always)]
fn fcmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

#[inline(always)]
fn icmp(op: CmpOp, x: i64, y: i64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// Affine bounds hazard: every lane index must be a valid `usize`
/// element index. Affine ⇒ the extremes sit at the endpoints.
fn affine_in_bounds(base: i64, stride: i64, bn: usize, len: usize) -> bool {
    let last = base + stride * (bn as i64 - 1);
    let (min, max) = (base.min(last), base.max(last));
    min >= 0 && (max as usize) < len
}

/// One walk over the op stream. `VALIDATE = true` runs only the
/// scalar/affine/control half plus hazard checks (no buffer writes, no
/// lane compute) and returns `false` on any hazard; `VALIDATE = false`
/// executes everything and always returns `true`.
fn walk<const VALIDATE: bool>(
    plan: &BatchPlan,
    st: &mut BatchState,
    bn: usize,
    params: &[V],
    bufs: &mut [Buffer],
) -> bool {
    let sv = &mut st.sv;
    let vdef = &mut st.vdef;
    let av = &mut st.av;
    let fl = &mut st.fl;
    let bl = &mut st.bl;
    let mut pc = 0usize;
    while let Some(op) = plan.ops.get(pc) {
        pc += 1;
        match *op {
            // ---- scalar ----
            BOp::SConst { dst, v } => sv[dst as usize] = v,
            BOp::SParam { dst, p, tag } => {
                let v = params[p as usize];
                if VALIDATE {
                    let ok = matches!(
                        (v, tag),
                        (V::F(_), 0) | (V::I(_), 1) | (V::B(_), 2) | (_, 3)
                    );
                    if !ok {
                        return false;
                    }
                }
                sv[dst as usize] = v;
            }
            BOp::SUn { op, dst, a } => {
                let va = sv[a as usize];
                sv[dst as usize] = match op {
                    UnOp::Neg => match va {
                        V::I(v) => V::I(-v),
                        other => V::F(-other.as_f()),
                    },
                    UnOp::Abs => match va {
                        V::I(v) => V::I(v.abs()),
                        other => V::F(other.as_f().abs()),
                    },
                    UnOp::Rcp => V::F(1.0 / va.as_f()),
                    UnOp::Sqrt => V::F(va.as_f().sqrt()),
                    UnOp::Not => V::B(!va.as_b()),
                    UnOp::Exp => V::F(va.as_f().exp()),
                };
            }
            BOp::SBin { op, dst, a, b } => {
                let (va, vb) = (sv[a as usize], sv[b as usize]);
                if VALIDATE
                    && matches!(op, BinOp::Div | BinOp::Rem)
                    && !va.is_float()
                    && !vb.is_float()
                    && vb.as_i() == 0
                {
                    return false;
                }
                sv[dst as usize] = interp::bin(op, va, vb);
            }
            BOp::SCmp { op, dst, a, b } => {
                sv[dst as usize] = V::B(interp::cmp(op, sv[a as usize], sv[b as usize]));
            }
            BOp::SFma { dst, a, b, c } => {
                let (x, y, z) = (
                    sv[a as usize].as_f(),
                    sv[b as usize].as_f(),
                    sv[c as usize].as_f(),
                );
                sv[dst as usize] = V::F(((x as f32).mul_add(y as f32, z as f32)) as f64);
            }
            BOp::SCast { ty, dst, a } => {
                let v = sv[a as usize];
                sv[dst as usize] = match ty {
                    Scalar::F32 => V::F(v.as_f() as f32 as f64),
                    Scalar::F64 => V::F(v.as_f()),
                    Scalar::I32 => V::I(v.as_i() as i32 as i64),
                    Scalar::U32 => V::I(v.as_i() as u32 as i64),
                    Scalar::Bool => V::B(v.as_b()),
                };
            }
            BOp::SSelect { dst, c, a, b } => {
                sv[dst as usize] = if sv[c as usize].as_b() {
                    sv[a as usize]
                } else {
                    sv[b as usize]
                };
            }
            BOp::SToInt { dst, a } => sv[dst as usize] = V::I(sv[a as usize].as_i()),
            BOp::SLet { ty, var, src } => {
                sv[var as usize] = interp::coerce(sv[src as usize], ty);
                vdef[var as usize] = true;
            }
            BOp::SSet { var, src } => {
                sv[var as usize] = sv[src as usize];
                vdef[var as usize] = true;
            }
            BOp::SLoad { array, idx, dst } => {
                let i = sv[idx as usize].as_i();
                let buf = &bufs[array as usize];
                if VALIDATE && !(i >= 0 && (i as usize) < buf.len()) {
                    return false;
                }
                sv[dst as usize] = match buf.elem() {
                    Scalar::F32 | Scalar::F64 => V::F(buf.get(i as usize)),
                    Scalar::Bool => V::B(buf.get(i as usize) != 0.0),
                    _ => V::I(buf.get(i as usize) as i64),
                };
            }
            BOp::VDefCheck { var } => {
                if VALIDATE && !vdef[var as usize] {
                    return false;
                }
            }
            BOp::DefMark { var } => vdef[var as usize] = true,

            // ---- affine ----
            BOp::AAddS { dst, a, s } => {
                let (b0, s0) = av[a as usize];
                av[dst as usize] = (b0 + sv[s as usize].as_i(), s0);
            }
            BOp::ASubAS { dst, a, s } => {
                let (b0, s0) = av[a as usize];
                av[dst as usize] = (b0 - sv[s as usize].as_i(), s0);
            }
            BOp::ASubSA { dst, s, a } => {
                let (b0, s0) = av[a as usize];
                av[dst as usize] = (sv[s as usize].as_i() - b0, -s0);
            }
            BOp::AAddA { dst, a, b } => {
                let ((b0, s0), (b1, s1)) = (av[a as usize], av[b as usize]);
                av[dst as usize] = (b0 + b1, s0 + s1);
            }
            BOp::ASubAA { dst, a, b } => {
                let ((b0, s0), (b1, s1)) = (av[a as usize], av[b as usize]);
                av[dst as usize] = (b0 - b1, s0 - s1);
            }
            BOp::AMulS { dst, a, s } => {
                let (b0, s0) = av[a as usize];
                let m = sv[s as usize].as_i();
                av[dst as usize] = (b0 * m, s0 * m);
            }
            BOp::ANeg { dst, a } => {
                let (b0, s0) = av[a as usize];
                av[dst as usize] = (-b0, -s0);
            }
            BOp::AFromS { dst, s } => {
                av[dst as usize] = (sv[s as usize].as_i(), 0);
            }

            // ---- control ----
            BOp::ForHead { cnt, hi, exit } => {
                if sv[cnt as usize].as_i() >= sv[hi as usize].as_i() {
                    pc = exit as usize;
                }
            }
            BOp::ForStep { cnt, step, back } => {
                sv[cnt as usize] = V::I(sv[cnt as usize].as_i() + step);
                pc = back as usize;
            }

            // ---- scatters: hazard checks in validate, writes in exec ----
            BOp::Scatter {
                array,
                aff,
                src,
                guard,
            }
            | BOp::ScatterS {
                array,
                aff,
                s: src,
                guard,
            } => {
                let (base, stride) = av[aff as usize];
                if VALIDATE {
                    if !affine_in_bounds(base, stride, bn, bufs[array as usize].len()) {
                        return false;
                    }
                    if guard != u32::MAX {
                        let me = (base, stride);
                        if stride == 0
                            || !plan.guards[guard as usize]
                                .iter()
                                .all(|&r| av[r as usize] == me)
                        {
                            return false;
                        }
                    }
                    continue;
                }
                let scalar = matches!(op, BOp::ScatterS { .. });
                let sval = if scalar { sv[src as usize].as_f() } else { 0.0 };
                let lanes: &[f64] = if scalar { &[] } else { &fl[src as usize][..bn] };
                let val = |b: usize| if scalar { sval } else { lanes[b] };
                match &mut bufs[array as usize] {
                    Buffer::F32(v) => {
                        for b in 0..bn {
                            v[(base + stride * b as i64) as usize] = val(b) as f32;
                        }
                    }
                    Buffer::F64(v) => {
                        for b in 0..bn {
                            v[(base + stride * b as i64) as usize] = val(b);
                        }
                    }
                    Buffer::I32(v) => {
                        for b in 0..bn {
                            v[(base + stride * b as i64) as usize] = val(b) as i32;
                        }
                    }
                    Buffer::U32(v) => {
                        for b in 0..bn {
                            v[(base + stride * b as i64) as usize] = val(b) as u32;
                        }
                    }
                    Buffer::Bool(v) => {
                        for b in 0..bn {
                            v[(base + stride * b as i64) as usize] = (val(b) != 0.0) as u8;
                        }
                    }
                }
            }
            BOp::GatherF {
                array,
                aff,
                dst,
                f32src,
            } => {
                let (base, stride) = av[aff as usize];
                if VALIDATE {
                    if !affine_in_bounds(base, stride, bn, bufs[array as usize].len()) {
                        return false;
                    }
                    continue;
                }
                let dv = &mut fl[dst as usize][..bn];
                if f32src {
                    let src = match &bufs[array as usize] {
                        Buffer::F32(v) => v,
                        _ => unreachable!("GatherF/f32 source type pinned at compile"),
                    };
                    if stride == 1 {
                        let s = &src[base as usize..base as usize + bn];
                        for (x, &y) in dv.iter_mut().zip(s) {
                            *x = y as f64;
                        }
                    } else {
                        for (b, x) in dv.iter_mut().enumerate() {
                            *x = src[(base + stride * b as i64) as usize] as f64;
                        }
                    }
                } else {
                    let src = match &bufs[array as usize] {
                        Buffer::F64(v) => v,
                        _ => unreachable!("GatherF/f64 source type pinned at compile"),
                    };
                    if stride == 1 {
                        dv.copy_from_slice(&src[base as usize..base as usize + bn]);
                    } else {
                        for (b, x) in dv.iter_mut().enumerate() {
                            *x = src[(base + stride * b as i64) as usize];
                        }
                    }
                }
            }

            // ---- lane compute: execution walk only ----
            _ if VALIDATE => {}
            BOp::BcastF { dst, s } => fl[dst as usize][..bn].fill(sv[s as usize].as_f()),
            BOp::BcastB { dst, s } => bl[dst as usize][..bn].fill(sv[s as usize].as_b()),
            BOp::CvtAtoF { dst, a } => {
                let (base, stride) = av[a as usize];
                for (b, x) in fl[dst as usize][..bn].iter_mut().enumerate() {
                    *x = (base + stride * b as i64) as f64;
                }
            }
            BOp::CvtAtoB { dst, a } => {
                let (base, stride) = av[a as usize];
                for (b, x) in bl[dst as usize][..bn].iter_mut().enumerate() {
                    *x = base + stride * b as i64 != 0;
                }
            }
            BOp::CvtBtoF { dst, a } => {
                for (x, &y) in fl[dst as usize][..bn].iter_mut().zip(&bl[a as usize][..bn]) {
                    *x = y as i64 as f64;
                }
            }
            BOp::CvtFtoB { dst, a } => {
                for (x, &y) in bl[dst as usize][..bn].iter_mut().zip(&fl[a as usize][..bn]) {
                    *x = y != 0.0;
                }
            }
            BOp::CvtFtoF32 { dst, a } => lmap(fl, bn, dst, a, |x| x as f32 as f64),
            BOp::LCopyF { dst, a } => {
                if dst != a {
                    let mut dv = std::mem::take(&mut fl[dst as usize]);
                    dv[..bn].copy_from_slice(&fl[a as usize][..bn]);
                    fl[dst as usize] = dv;
                }
            }
            BOp::FBinLL { op, dst, a, b } => match op {
                BinOp::Add => lbin(fl, bn, dst, a, b, |x, y| f32_arith(BinOp::Add, x, y)),
                BinOp::Sub => lbin(fl, bn, dst, a, b, |x, y| f32_arith(BinOp::Sub, x, y)),
                BinOp::Mul => lbin(fl, bn, dst, a, b, |x, y| f32_arith(BinOp::Mul, x, y)),
                BinOp::Div => lbin(fl, bn, dst, a, b, |x, y| f32_arith(BinOp::Div, x, y)),
                _ => lbin(fl, bn, dst, a, b, move |x, y| f32_arith(op, x, y)),
            },
            BOp::FBinLS { op, dst, a, s } => {
                let y = sv[s as usize].as_f();
                match op {
                    BinOp::Add => lmap(fl, bn, dst, a, |x| f32_arith(BinOp::Add, x, y)),
                    BinOp::Sub => lmap(fl, bn, dst, a, |x| f32_arith(BinOp::Sub, x, y)),
                    BinOp::Mul => lmap(fl, bn, dst, a, |x| f32_arith(BinOp::Mul, x, y)),
                    BinOp::Max => lmap(fl, bn, dst, a, |x| f32_arith(BinOp::Max, x, y)),
                    _ => lmap(fl, bn, dst, a, move |x| f32_arith(op, x, y)),
                }
            }
            BOp::FBinSL { op, dst, s, b } => {
                let x = sv[s as usize].as_f();
                match op {
                    BinOp::Mul => lmap(fl, bn, dst, b, |y| f32_arith(BinOp::Mul, x, y)),
                    BinOp::Sub => lmap(fl, bn, dst, b, |y| f32_arith(BinOp::Sub, x, y)),
                    _ => lmap(fl, bn, dst, b, move |y| f32_arith(op, x, y)),
                }
            }
            BOp::FFma { dst, a, b, c } => {
                let d = dst as usize;
                let mut dv = std::mem::take(&mut fl[d]);
                for i in 0..bn {
                    let pick = |r: u16, dv: &[f64]| {
                        if r as usize == d {
                            dv[i]
                        } else {
                            fl[r as usize][i]
                        }
                    };
                    let (x, y, z) = (pick(a, &dv), pick(b, &dv), pick(c, &dv));
                    dv[i] = ((x as f32).mul_add(y as f32, z as f32)) as f64;
                }
                fl[d] = dv;
            }
            BOp::UnF { op, dst, a } => match op {
                UnOp::Neg => lmap(fl, bn, dst, a, |x| -x),
                UnOp::Abs => lmap(fl, bn, dst, a, f64::abs),
                UnOp::Rcp => lmap(fl, bn, dst, a, |x| 1.0 / x),
                UnOp::Sqrt => lmap(fl, bn, dst, a, f64::sqrt),
                UnOp::Exp => lmap(fl, bn, dst, a, f64::exp),
                UnOp::Not => unreachable!("Not lowers to CvtFtoB + BNot"),
            },
            BOp::FCmpLL { op, dst, a, b } => {
                let dv = &mut bl[dst as usize][..bn];
                for ((x, &y), &z) in dv
                    .iter_mut()
                    .zip(&fl[a as usize][..bn])
                    .zip(&fl[b as usize][..bn])
                {
                    *x = fcmp(op, y, z);
                }
            }
            BOp::FCmpLS { op, dst, a, s } => {
                let y = sv[s as usize].as_f();
                let dv = &mut bl[dst as usize][..bn];
                for (x, &z) in dv.iter_mut().zip(&fl[a as usize][..bn]) {
                    *x = fcmp(op, z, y);
                }
            }
            BOp::FCmpSL { op, dst, s, b } => {
                let x0 = sv[s as usize].as_f();
                let dv = &mut bl[dst as usize][..bn];
                for (x, &z) in dv.iter_mut().zip(&fl[b as usize][..bn]) {
                    *x = fcmp(op, x0, z);
                }
            }
            BOp::ICmpAS { op, dst, a, s } => {
                let (base, stride) = av[a as usize];
                let y = sv[s as usize].as_i();
                for (b, x) in bl[dst as usize][..bn].iter_mut().enumerate() {
                    *x = icmp(op, base + stride * b as i64, y);
                }
            }
            BOp::ICmpSA { op, dst, s, a } => {
                let (base, stride) = av[a as usize];
                let y = sv[s as usize].as_i();
                for (b, x) in bl[dst as usize][..bn].iter_mut().enumerate() {
                    *x = icmp(op, y, base + stride * b as i64);
                }
            }
            BOp::ICmpAA { op, dst, a, b } => {
                let ((b0, s0), (b1, s1)) = (av[a as usize], av[b as usize]);
                for (b, x) in bl[dst as usize][..bn].iter_mut().enumerate() {
                    *x = icmp(op, b0 + s0 * b as i64, b1 + s1 * b as i64);
                }
            }
            BOp::BAnd { dst, a, b } => lbin(bl, bn, dst, a, b, |x, y| x && y),
            BOp::BOr { dst, a, b } => lbin(bl, bn, dst, a, b, |x, y| x || y),
            BOp::BNot { dst, a } => lmap(bl, bn, dst, a, |x| !x),
            BOp::SelF { dst, c, a, b } => {
                let d = dst as usize;
                let cv = &bl[c as usize];
                let mut dv = std::mem::take(&mut fl[d]);
                if a as usize == d || b as usize == d {
                    for i in 0..bn {
                        let (x, y) = (
                            if a as usize == d {
                                dv[i]
                            } else {
                                fl[a as usize][i]
                            },
                            if b as usize == d {
                                dv[i]
                            } else {
                                fl[b as usize][i]
                            },
                        );
                        dv[i] = if cv[i] { x } else { y };
                    }
                } else {
                    let (av_, bv_) = (&fl[a as usize][..bn], &fl[b as usize][..bn]);
                    for (i, x) in dv[..bn].iter_mut().enumerate() {
                        *x = if cv[i] { av_[i] } else { bv_[i] };
                    }
                }
                fl[d] = dv;
            }
        }
    }
    true
}

// ---------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------

/// Statically known runtime tag of a scalar slot. `Unk` is only used
/// where the compiler does not *need* the tag — generic scalar ops
/// re-dispatch on the runtime tag exactly like the tree-walker; lane
/// classification decisions demand a certain tag or reject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum STy {
    F,
    I,
    B,
    Unk,
}

/// A compiled value: where it lives plus what the compiler can prove.
/// `f32v` means "guaranteed f32-representable f64", which lets the
/// F32 `Let` coercion skip a redundant narrowing pass.
#[derive(Debug, Clone, Copy)]
struct Val {
    loc: Loc,
    sty: STy,
    f32v: bool,
}

/// Per-array access record, the input to scatter-guard construction.
#[derive(Debug, Clone, Default)]
struct ArrAcc {
    /// Every affine register used to access the array.
    affs: Vec<u16>,
    /// `ops` indices of the array's scatters.
    scatter_ops: Vec<usize>,
    gathers: usize,
    sloads: bool,
    /// Any access from inside a sequential loop (affine registers are
    /// then recomputed per trip, so guard values would be stale).
    in_for: bool,
}

/// Rollback point for the sequential-loop pin fixpoint.
#[derive(Clone)]
struct BcSnap {
    ops_len: usize,
    env: Vec<Val>,
    pinned: Vec<bool>,
    pin_len: usize,
    sdef: Vec<bool>,
    n_s: u16,
    n_a: u16,
    n_f: u16,
    n_b: u16,
    acc: Vec<ArrAcc>,
    pslots: Vec<Option<u16>>,
    consts: Vec<(u8, u64, u16)>,
}

struct Bc<'a> {
    p: &'a Program,
    ops: Vec<BOp>,
    env: Vec<Val>,
    /// Variables currently pinned to a mutable `LF` slot by an
    /// enclosing sequential loop (loop-carried lane values).
    pinned: Vec<bool>,
    /// Every pin slot ever allocated: a lane value living in one may
    /// mutate later, so capturing it in another variable must copy.
    pin_slots: Vec<u16>,
    /// Static definite-assignment (false ⇒ reads emit `VDefCheck`).
    sdef: Vec<bool>,
    n_s: u16,
    n_a: u16,
    n_f: u16,
    n_b: u16,
    acc: Vec<ArrAcc>,
    /// Parameter → scalar-slot cache.
    pslots: Vec<Option<u16>>,
    /// Constant pool keyed by (tag, bit pattern) — bit-keyed so that
    /// `-0.0` and `0.0` stay distinct.
    consts: Vec<(u8, u64, u16)>,
    /// Sequential-loop nesting depth.
    depth: u32,
}

/// Compile the innermost parallel loop of `k` into a batch plan, or
/// `None` if anything falls outside the provably-bitwise subset.
pub(crate) fn build(p: &Program, k: &Kernel) -> Option<BatchPlan> {
    let body = match &k.body {
        KernelBody::Simple(b) => b,
        KernelBody::Grouped(_) => return None,
    };
    let nv = p.var_names.len();
    let n_vars = u16::try_from(nv).ok()?;
    let lane = k.loops.last()?.var;
    let mut c = Bc {
        p,
        ops: Vec::new(),
        env: (0..nv)
            .map(|i| Val {
                loc: Loc::S(i as u16),
                sty: STy::Unk,
                f32v: false,
            })
            .collect(),
        pinned: vec![false; nv],
        pin_slots: Vec::new(),
        sdef: vec![false; nv],
        n_s: n_vars,
        n_a: 1, // av[0] is the lane affine (lo, 1)
        n_f: 0,
        n_b: 0,
        acc: vec![ArrAcc::default(); p.arrays.len()],
        pslots: vec![None; p.params.len()],
        consts: Vec::new(),
        depth: 0,
    };
    // Outer parallel loop variables are defined integer scalars; the
    // innermost one is the lane itself.
    for lp in &k.loops[..k.loops.len() - 1] {
        let i = lp.var.0 as usize;
        c.env[i].sty = STy::I;
        c.sdef[i] = true;
    }
    c.env[lane.0 as usize] = Val {
        loc: Loc::A(0),
        sty: STy::I,
        f32v: false,
    };
    c.sdef[lane.0 as usize] = true;

    c.block(body)?;

    // The region-reduction value is evaluated after the body, in the
    // same environment (it may reference body locals).
    let reduce = match &k.region_reduction {
        Some(rr) => {
            let v = c.expr(&rr.value)?;
            Some((v.loc, rr.op))
        }
        None => None,
    };

    // Scatter guards. An array that is scattered *and* otherwise
    // accessed is only batchable when every access provably hits the
    // same per-lane index — checked at runtime by affine equality
    // with nonzero stride (each lane then owns a disjoint slice, so
    // lane-major and op-major orders commute). A sole scatter with no
    // other access needs no guard: ascending-lane writes make the
    // last lane win, exactly like the tree's lane-major order.
    let mut guards: Vec<Vec<u16>> = Vec::new();
    for a in &c.acc {
        if a.scatter_ops.is_empty() {
            continue;
        }
        if a.sloads || a.in_for {
            return None;
        }
        if a.gathers == 0 && a.scatter_ops.len() == 1 {
            continue;
        }
        let gi = u32::try_from(guards.len()).ok()?;
        guards.push(a.affs.clone());
        for &oi in &a.scatter_ops {
            match &mut c.ops[oi] {
                BOp::Scatter { guard, .. } | BOp::ScatterS { guard, .. } => *guard = gi,
                _ => unreachable!("scatter_ops points at a non-scatter"),
            }
        }
    }

    // Lane-valued variables need an explicit last-lane writeback.
    let mut outs = Vec::new();
    for (i, v) in c.env.iter().enumerate() {
        match v.loc {
            Loc::S(_) => {}
            loc => outs.push((i as u16, loc)),
        }
    }

    Some(BatchPlan {
        ops: c.ops,
        n_vars,
        lane_var: u16::try_from(lane.0).ok()?,
        n_s: c.n_s,
        n_a: c.n_a,
        n_f: c.n_f,
        n_b: c.n_b,
        outs,
        reduce,
        guards,
    })
}

impl<'a> Bc<'a> {
    fn snap(&self) -> BcSnap {
        BcSnap {
            ops_len: self.ops.len(),
            env: self.env.clone(),
            pinned: self.pinned.clone(),
            pin_len: self.pin_slots.len(),
            sdef: self.sdef.clone(),
            n_s: self.n_s,
            n_a: self.n_a,
            n_f: self.n_f,
            n_b: self.n_b,
            acc: self.acc.clone(),
            pslots: self.pslots.clone(),
            consts: self.consts.clone(),
        }
    }

    fn restore(&mut self, s: &BcSnap) {
        self.ops.truncate(s.ops_len);
        self.env.clone_from(&s.env);
        self.pinned.clone_from(&s.pinned);
        self.pin_slots.truncate(s.pin_len);
        self.sdef.clone_from(&s.sdef);
        self.n_s = s.n_s;
        self.n_a = s.n_a;
        self.n_f = s.n_f;
        self.n_b = s.n_b;
        self.acc.clone_from(&s.acc);
        self.pslots.clone_from(&s.pslots);
        self.consts.clone_from(&s.consts);
    }

    fn s_slot(&mut self) -> Option<u16> {
        let r = self.n_s;
        self.n_s = self.n_s.checked_add(1)?;
        Some(r)
    }
    fn a_slot(&mut self) -> Option<u16> {
        let r = self.n_a;
        self.n_a = self.n_a.checked_add(1)?;
        Some(r)
    }
    fn f_slot(&mut self) -> Option<u16> {
        let r = self.n_f;
        self.n_f = self.n_f.checked_add(1)?;
        Some(r)
    }
    fn b_slot(&mut self) -> Option<u16> {
        let r = self.n_b;
        self.n_b = self.n_b.checked_add(1)?;
        Some(r)
    }

    fn konst(&mut self, tag: u8, bits: u64, v: V) -> Option<u16> {
        if let Some(&(_, _, s)) = self.consts.iter().find(|&&(t, b, _)| t == tag && b == bits) {
            return Some(s);
        }
        let dst = self.s_slot()?;
        self.ops.push(BOp::SConst { dst, v });
        self.consts.push((tag, bits, dst));
        Some(dst)
    }

    fn param(&mut self, p: ParamId) -> Option<Val> {
        let i = p.0 as usize;
        let decl_ty = self.p.params[i].ty;
        let (tag, sty) = match decl_ty {
            Scalar::F32 | Scalar::F64 => (0, STy::F),
            Scalar::I32 | Scalar::U32 => (1, STy::I),
            Scalar::Bool => (2, STy::B),
        };
        let dst = match self.pslots[i] {
            Some(s) => s,
            None => {
                let dst = self.s_slot()?;
                self.ops.push(BOp::SParam {
                    dst,
                    p: u16::try_from(p.0).ok()?,
                    tag,
                });
                self.pslots[i] = Some(dst);
                dst
            }
        };
        Some(Val {
            loc: Loc::S(dst),
            sty,
            f32v: false,
        })
    }

    /// `as_f()` of any value class into an f64 lane vector.
    fn lane_f(&mut self, v: &Val) -> Option<u16> {
        match v.loc {
            Loc::LF(r) => Some(r),
            Loc::S(s) => {
                let dst = self.f_slot()?;
                self.ops.push(BOp::BcastF { dst, s });
                Some(dst)
            }
            Loc::A(a) => {
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtAtoF { dst, a });
                Some(dst)
            }
            Loc::LB(b) => {
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtBtoF { dst, a: b });
                Some(dst)
            }
        }
    }

    /// `as_b()` of any value class into a bool lane vector.
    fn lane_b(&mut self, v: &Val) -> Option<u16> {
        match v.loc {
            Loc::LB(r) => Some(r),
            Loc::S(s) => {
                let dst = self.b_slot()?;
                self.ops.push(BOp::BcastB { dst, s });
                Some(dst)
            }
            Loc::LF(f) => {
                let dst = self.b_slot()?;
                self.ops.push(BOp::CvtFtoB { dst, a: f });
                Some(dst)
            }
            Loc::A(a) => {
                let dst = self.b_slot()?;
                self.ops.push(BOp::CvtAtoB { dst, a });
                Some(dst)
            }
        }
    }

    /// Guaranteed runtime-`F` operand? (The condition for committing
    /// to `interp::bin`/`cmp`'s float path at compile time.)
    fn float_certain(v: &Val) -> bool {
        match v.loc {
            Loc::LF(_) => true,
            Loc::S(_) => v.sty == STy::F,
            Loc::A(_) | Loc::LB(_) => false,
        }
    }

    fn block(&mut self, b: &Block) -> Option<()> {
        for s in &b.0 {
            self.stmt(s)?;
        }
        Some(())
    }

    fn stmt(&mut self, s: &Stmt) -> Option<()> {
        match s {
            Stmt::Let { var, ty, init } => {
                let v = self.expr(init)?;
                self.assign(*var, Some(*ty), v)
            }
            Stmt::Assign { var, value } => {
                let v = self.expr(value)?;
                self.assign(*var, None, v)
            }
            Stmt::Store {
                space,
                array,
                index,
                value,
            } => self.store(*space, *array, index, value),
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => self.for_loop(*var, lo, hi, *step, body),
            // No-op under sequential per-thread execution, same as the
            // tree-walker.
            Stmt::Barrier => Some(()),
            // Control-divergent or synchronizing constructs keep the
            // scalar VM path.
            Stmt::If { .. } | Stmt::Atomic { .. } => None,
        }
    }

    fn expr(&mut self, e: &Expr) -> Option<Val> {
        match e {
            Expr::FConst(v) => {
                let s = self.konst(0, v.to_bits(), V::F(*v))?;
                Some(Val {
                    loc: Loc::S(s),
                    sty: STy::F,
                    f32v: (*v as f32 as f64) == *v,
                })
            }
            Expr::IConst(v) => {
                let s = self.konst(1, *v as u64, V::I(*v))?;
                Some(Val {
                    loc: Loc::S(s),
                    sty: STy::I,
                    f32v: false,
                })
            }
            Expr::BConst(v) => {
                let s = self.konst(2, *v as u64, V::B(*v))?;
                Some(Val {
                    loc: Loc::S(s),
                    sty: STy::B,
                    f32v: false,
                })
            }
            Expr::Param(p) => self.param(*p),
            Expr::Var(v) => {
                let i = v.0 as usize;
                if !self.sdef[i] {
                    self.ops.push(BOp::VDefCheck {
                        var: u16::try_from(v.0).ok()?,
                    });
                }
                Some(self.env[i])
            }
            Expr::Special(_) => None,
            Expr::Load {
                space,
                array,
                index,
            } => self.load(*space, *array, index),
            Expr::Un(op, a) => {
                let va = self.expr(a)?;
                self.unop(*op, va)
            }
            Expr::Bin(op, a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                self.binop(*op, va, vb)
            }
            Expr::Cmp(op, a, b) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                self.cmpop(*op, va, vb)
            }
            Expr::Fma(a, b, c) => {
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                let vc = self.expr(c)?;
                self.fma(va, vb, vc)
            }
            Expr::Select(c, a, b) => {
                let vc = self.expr(c)?;
                let va = self.expr(a)?;
                let vb = self.expr(b)?;
                self.select(vc, va, vb)
            }
            Expr::Cast(ty, a) => {
                let va = self.expr(a)?;
                self.cast(*ty, va)
            }
        }
    }

    fn load(&mut self, space: MemSpace, array: ArrayId, index: &Expr) -> Option<Val> {
        if space != MemSpace::Global {
            return None;
        }
        let idx = self.expr(index)?;
        let ai = array.0 as usize;
        let elem = self.p.arrays[ai].elem;
        let arr = u16::try_from(array.0).ok()?;
        match idx.loc {
            Loc::S(si) => {
                let rec = &mut self.acc[ai];
                rec.sloads = true;
                rec.in_for |= self.depth > 0;
                let dst = self.s_slot()?;
                self.ops.push(BOp::SLoad {
                    array: arr,
                    idx: si,
                    dst,
                });
                let (sty, f32v) = match elem {
                    Scalar::F32 => (STy::F, true),
                    Scalar::F64 => (STy::F, false),
                    Scalar::Bool => (STy::B, false),
                    Scalar::I32 | Scalar::U32 => (STy::I, false),
                };
                Some(Val {
                    loc: Loc::S(dst),
                    sty,
                    f32v,
                })
            }
            Loc::A(aff) => {
                if !elem.is_float() {
                    // Int/bool lane loads would need a general lane-int
                    // class; keep the scalar VM for those kernels.
                    return None;
                }
                let rec = &mut self.acc[ai];
                rec.affs.push(aff);
                rec.gathers += 1;
                rec.in_for |= self.depth > 0;
                let dst = self.f_slot()?;
                self.ops.push(BOp::GatherF {
                    array: arr,
                    aff,
                    dst,
                    f32src: elem == Scalar::F32,
                });
                Some(Val {
                    loc: Loc::LF(dst),
                    sty: STy::F,
                    f32v: elem == Scalar::F32,
                })
            }
            Loc::LF(_) | Loc::LB(_) => None,
        }
    }

    fn unop(&mut self, op: UnOp, a: Val) -> Option<Val> {
        match a.loc {
            Loc::S(s) => {
                let dst = self.s_slot()?;
                self.ops.push(BOp::SUn { op, dst, a: s });
                let sty = match op {
                    UnOp::Not => STy::B,
                    UnOp::Rcp | UnOp::Sqrt | UnOp::Exp => STy::F,
                    // Neg/Abs dispatch on the runtime tag: int stays
                    // int, everything else takes the float path.
                    UnOp::Neg | UnOp::Abs => match a.sty {
                        STy::I => STy::I,
                        STy::F | STy::B => STy::F,
                        STy::Unk => STy::Unk,
                    },
                };
                let f32v = matches!(op, UnOp::Neg | UnOp::Abs) && a.f32v;
                Some(Val {
                    loc: Loc::S(dst),
                    sty,
                    f32v,
                })
            }
            Loc::LF(f) => match op {
                UnOp::Not => {
                    let t = self.b_slot()?;
                    self.ops.push(BOp::CvtFtoB { dst: t, a: f });
                    let dst = self.b_slot()?;
                    self.ops.push(BOp::BNot { dst, a: t });
                    Some(Val {
                        loc: Loc::LB(dst),
                        sty: STy::B,
                        f32v: false,
                    })
                }
                _ => {
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::UnF { op, dst, a: f });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: matches!(op, UnOp::Neg | UnOp::Abs) && a.f32v,
                    })
                }
            },
            Loc::A(aff) => match op {
                UnOp::Neg => {
                    let dst = self.a_slot()?;
                    self.ops.push(BOp::ANeg { dst, a: aff });
                    Some(Val {
                        loc: Loc::A(dst),
                        sty: STy::I,
                        f32v: false,
                    })
                }
                UnOp::Not => {
                    let t = self.b_slot()?;
                    self.ops.push(BOp::CvtAtoB { dst: t, a: aff });
                    let dst = self.b_slot()?;
                    self.ops.push(BOp::BNot { dst, a: t });
                    Some(Val {
                        loc: Loc::LB(dst),
                        sty: STy::B,
                        f32v: false,
                    })
                }
                // |base + s·b| is not affine.
                UnOp::Abs => None,
                UnOp::Rcp | UnOp::Sqrt | UnOp::Exp => {
                    let t = self.f_slot()?;
                    self.ops.push(BOp::CvtAtoF { dst: t, a: aff });
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::UnF { op, dst, a: t });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: false,
                    })
                }
            },
            Loc::LB(b) => match op {
                UnOp::Not => {
                    let dst = self.b_slot()?;
                    self.ops.push(BOp::BNot { dst, a: b });
                    Some(Val {
                        loc: Loc::LB(dst),
                        sty: STy::B,
                        f32v: false,
                    })
                }
                // Runtime tag is B, so Neg/Abs/Rcp/Sqrt/Exp all take
                // the tree's float path over as_f().
                _ => {
                    let t = self.f_slot()?;
                    self.ops.push(BOp::CvtBtoF { dst: t, a: b });
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::UnF { op, dst, a: t });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: false,
                    })
                }
            },
        }
    }

    fn binop(&mut self, op: BinOp, a: Val, b: Val) -> Option<Val> {
        use BinOp::*;
        if let (Loc::S(sa), Loc::S(sb)) = (a.loc, b.loc) {
            // Scalar × scalar: one generic op, runtime-dispatched
            // exactly like the tree.
            let dst = self.s_slot()?;
            self.ops.push(BOp::SBin {
                op,
                dst,
                a: sa,
                b: sb,
            });
            let sty = match op {
                And | Or => STy::B,
                Shl | Shr => STy::I,
                _ => {
                    if a.sty == STy::F || b.sty == STy::F {
                        STy::F
                    } else if matches!(a.sty, STy::I | STy::B) && matches!(b.sty, STy::I | STy::B) {
                        STy::I
                    } else {
                        STy::Unk
                    }
                }
            };
            return Some(Val {
                loc: Loc::S(dst),
                sty,
                // The float arith path narrows to f32.
                f32v: sty == STy::F && !matches!(op, And | Or | Shl | Shr),
            });
        }
        match op {
            And | Or => {
                let ba = self.lane_b(&a)?;
                let bb = self.lane_b(&b)?;
                let dst = self.b_slot()?;
                self.ops.push(if op == And {
                    BOp::BAnd { dst, a: ba, b: bb }
                } else {
                    BOp::BOr { dst, a: ba, b: bb }
                });
                Some(Val {
                    loc: Loc::LB(dst),
                    sty: STy::B,
                    f32v: false,
                })
            }
            Shl | Shr => None,
            _ => {
                if Self::float_certain(&a) || Self::float_certain(&b) {
                    self.fbin(op, a, b)
                } else {
                    self.abin(op, a, b)
                }
            }
        }
    }

    /// Float-path lane arithmetic; the caller guarantees at least one
    /// operand is runtime-`F`, which is what commits the tree to this
    /// path. Scalar operands stay scalar (resolved once per batch).
    fn fbin(&mut self, op: BinOp, a: Val, b: Val) -> Option<Val> {
        let dst = self.f_slot()?;
        match (a.loc, b.loc) {
            (Loc::S(sa), _) => {
                let lb = self.lane_f(&b)?;
                self.ops.push(BOp::FBinSL {
                    op,
                    dst,
                    s: sa,
                    b: lb,
                });
            }
            (_, Loc::S(sb)) => {
                let la = self.lane_f(&a)?;
                self.ops.push(BOp::FBinLS {
                    op,
                    dst,
                    a: la,
                    s: sb,
                });
            }
            _ => {
                let la = self.lane_f(&a)?;
                let lb = self.lane_f(&b)?;
                self.ops.push(BOp::FBinLL {
                    op,
                    dst,
                    a: la,
                    b: lb,
                });
            }
        }
        Some(Val {
            loc: Loc::LF(dst),
            sty: STy::F,
            f32v: true,
        })
    }

    /// Integer-path lane arithmetic: closed affine forms only. Both
    /// operands must be provably runtime-integers.
    fn abin(&mut self, op: BinOp, a: Val, b: Val) -> Option<Val> {
        use BinOp::*;
        let int_scalar = |v: &Val| matches!(v.sty, STy::I | STy::B);
        let dst = self.a_slot()?;
        match (a.loc, b.loc) {
            (Loc::A(aa), Loc::A(ab)) => match op {
                Add => self.ops.push(BOp::AAddA { dst, a: aa, b: ab }),
                Sub => self.ops.push(BOp::ASubAA { dst, a: aa, b: ab }),
                _ => return None,
            },
            (Loc::A(aa), Loc::S(sb)) if int_scalar(&b) => match op {
                Add => self.ops.push(BOp::AAddS { dst, a: aa, s: sb }),
                Sub => self.ops.push(BOp::ASubAS { dst, a: aa, s: sb }),
                Mul => self.ops.push(BOp::AMulS { dst, a: aa, s: sb }),
                _ => return None,
            },
            (Loc::S(sa), Loc::A(ab)) if int_scalar(&a) => match op {
                Add => self.ops.push(BOp::AAddS { dst, a: ab, s: sa }),
                Sub => self.ops.push(BOp::ASubSA { dst, s: sa, a: ab }),
                Mul => self.ops.push(BOp::AMulS { dst, a: ab, s: sa }),
                _ => return None,
            },
            _ => return None,
        }
        Some(Val {
            loc: Loc::A(dst),
            sty: STy::I,
            f32v: false,
        })
    }

    fn cmpop(&mut self, op: CmpOp, a: Val, b: Val) -> Option<Val> {
        if let (Loc::S(sa), Loc::S(sb)) = (a.loc, b.loc) {
            let dst = self.s_slot()?;
            self.ops.push(BOp::SCmp {
                op,
                dst,
                a: sa,
                b: sb,
            });
            return Some(Val {
                loc: Loc::S(dst),
                sty: STy::B,
                f32v: false,
            });
        }
        if Self::float_certain(&a) || Self::float_certain(&b) {
            // Full-f64 float compare — exact for every operand class.
            let dst = self.b_slot()?;
            match (a.loc, b.loc) {
                (Loc::S(sa), _) => {
                    let lb = self.lane_f(&b)?;
                    self.ops.push(BOp::FCmpSL {
                        op,
                        dst,
                        s: sa,
                        b: lb,
                    });
                }
                (_, Loc::S(sb)) => {
                    let la = self.lane_f(&a)?;
                    self.ops.push(BOp::FCmpLS {
                        op,
                        dst,
                        a: la,
                        s: sb,
                    });
                }
                _ => {
                    let la = self.lane_f(&a)?;
                    let lb = self.lane_f(&b)?;
                    self.ops.push(BOp::FCmpLL {
                        op,
                        dst,
                        a: la,
                        b: lb,
                    });
                }
            }
            return Some(Val {
                loc: Loc::LB(dst),
                sty: STy::B,
                f32v: false,
            });
        }
        let int_scalar = |v: &Val| matches!(v.sty, STy::I | STy::B);
        let dst = self.b_slot()?;
        match (a.loc, b.loc) {
            (Loc::A(aa), Loc::A(ab)) => {
                self.ops.push(BOp::ICmpAA {
                    op,
                    dst,
                    a: aa,
                    b: ab,
                });
            }
            (Loc::A(aa), Loc::S(sb)) if int_scalar(&b) => {
                self.ops.push(BOp::ICmpAS {
                    op,
                    dst,
                    a: aa,
                    s: sb,
                });
            }
            (Loc::S(sa), Loc::A(ab)) if int_scalar(&a) => {
                self.ops.push(BOp::ICmpSA {
                    op,
                    dst,
                    s: sa,
                    a: ab,
                });
            }
            _ => return None,
        }
        Some(Val {
            loc: Loc::LB(dst),
            sty: STy::B,
            f32v: false,
        })
    }

    fn fma(&mut self, a: Val, b: Val, c: Val) -> Option<Val> {
        // The tree's Fma takes as_f() of all three operands
        // unconditionally, so any class mix is exact here.
        if let (Loc::S(sa), Loc::S(sb), Loc::S(sc)) = (a.loc, b.loc, c.loc) {
            let dst = self.s_slot()?;
            self.ops.push(BOp::SFma {
                dst,
                a: sa,
                b: sb,
                c: sc,
            });
            return Some(Val {
                loc: Loc::S(dst),
                sty: STy::F,
                f32v: true,
            });
        }
        let la = self.lane_f(&a)?;
        let lb = self.lane_f(&b)?;
        let lc = self.lane_f(&c)?;
        let dst = self.f_slot()?;
        self.ops.push(BOp::FFma {
            dst,
            a: la,
            b: lb,
            c: lc,
        });
        Some(Val {
            loc: Loc::LF(dst),
            sty: STy::F,
            f32v: true,
        })
    }

    fn select(&mut self, c: Val, a: Val, b: Val) -> Option<Val> {
        if let (Loc::S(sc), Loc::S(sa), Loc::S(sb)) = (c.loc, a.loc, b.loc) {
            let dst = self.s_slot()?;
            self.ops.push(BOp::SSelect {
                dst,
                c: sc,
                a: sa,
                b: sb,
            });
            let sty = if a.sty == b.sty { a.sty } else { STy::Unk };
            return Some(Val {
                loc: Loc::S(dst),
                sty,
                f32v: a.f32v && b.f32v,
            });
        }
        // Lane select: both arms must be guaranteed-F so that the
        // merged lanes carry the tag the tree would produce on either
        // path. (Select is lazy in the tree but all batchable
        // sub-expressions are pure, so eager evaluation is sound; a
        // hazard in the untaken arm merely forces a fallback.)
        if !Self::float_certain(&a) || !Self::float_certain(&b) {
            return None;
        }
        let lc = self.lane_b(&c)?;
        let la = self.lane_f(&a)?;
        let lb = self.lane_f(&b)?;
        let dst = self.f_slot()?;
        self.ops.push(BOp::SelF {
            dst,
            c: lc,
            a: la,
            b: lb,
        });
        Some(Val {
            loc: Loc::LF(dst),
            sty: STy::F,
            f32v: a.f32v && b.f32v,
        })
    }

    fn cast(&mut self, ty: Scalar, a: Val) -> Option<Val> {
        match a.loc {
            Loc::S(s) => {
                let dst = self.s_slot()?;
                self.ops.push(BOp::SCast { ty, dst, a: s });
                let (sty, f32v) = match ty {
                    Scalar::F32 => (STy::F, true),
                    Scalar::F64 => (STy::F, a.f32v),
                    Scalar::I32 | Scalar::U32 => (STy::I, false),
                    Scalar::Bool => (STy::B, false),
                };
                Some(Val {
                    loc: Loc::S(dst),
                    sty,
                    f32v,
                })
            }
            Loc::LF(f) => match ty {
                Scalar::F32 => {
                    if a.f32v {
                        return Some(a);
                    }
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::CvtFtoF32 { dst, a: f });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: true,
                    })
                }
                // cast F64 on a runtime-F value is as_f(): identity.
                Scalar::F64 => Some(a),
                Scalar::Bool => {
                    let dst = self.b_slot()?;
                    self.ops.push(BOp::CvtFtoB { dst, a: f });
                    Some(Val {
                        loc: Loc::LB(dst),
                        sty: STy::B,
                        f32v: false,
                    })
                }
                // as_i() of float lanes is not affine.
                Scalar::I32 | Scalar::U32 => None,
            },
            Loc::A(aff) => match ty {
                Scalar::F32 => {
                    let t = self.f_slot()?;
                    self.ops.push(BOp::CvtAtoF { dst: t, a: aff });
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::CvtFtoF32 { dst, a: t });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: true,
                    })
                }
                Scalar::F64 => {
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::CvtAtoF { dst, a: aff });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: false,
                    })
                }
                Scalar::Bool => {
                    let dst = self.b_slot()?;
                    self.ops.push(BOp::CvtAtoB { dst, a: aff });
                    Some(Val {
                        loc: Loc::LB(dst),
                        sty: STy::B,
                        f32v: false,
                    })
                }
                // I32/U32 casts wrap through 32 bits — not affine.
                Scalar::I32 | Scalar::U32 => None,
            },
            Loc::LB(b) => match ty {
                Scalar::F32 | Scalar::F64 => {
                    let dst = self.f_slot()?;
                    self.ops.push(BOp::CvtBtoF { dst, a: b });
                    Some(Val {
                        loc: Loc::LF(dst),
                        sty: STy::F,
                        f32v: true,
                    })
                }
                Scalar::Bool => Some(a),
                Scalar::I32 | Scalar::U32 => None,
            },
        }
    }

    fn store(&mut self, space: MemSpace, array: ArrayId, index: &Expr, value: &Expr) -> Option<()> {
        // Stores inside sequential loops would interleave with other
        // lanes' loop trips in the tree; keep those on the scalar VM.
        if space != MemSpace::Global || self.depth > 0 {
            return None;
        }
        let idx = self.expr(index)?;
        let val = self.expr(value)?;
        let arr = u16::try_from(array.0).ok()?;
        let aff = match idx.loc {
            Loc::A(r) => r,
            Loc::S(si) => {
                let dst = self.a_slot()?;
                self.ops.push(BOp::AFromS { dst, s: si });
                dst
            }
            Loc::LF(_) | Loc::LB(_) => return None,
        };
        // The tree stores eval(value).as_f() and lets Buffer::set
        // narrow per element type; every class converts exactly.
        let opidx;
        match val.loc {
            Loc::LF(src) => {
                opidx = self.ops.len();
                self.ops.push(BOp::Scatter {
                    array: arr,
                    aff,
                    src,
                    guard: u32::MAX,
                });
            }
            Loc::S(s) => {
                opidx = self.ops.len();
                self.ops.push(BOp::ScatterS {
                    array: arr,
                    aff,
                    s,
                    guard: u32::MAX,
                });
            }
            Loc::A(r) => {
                let src = self.f_slot()?;
                self.ops.push(BOp::CvtAtoF { dst: src, a: r });
                opidx = self.ops.len();
                self.ops.push(BOp::Scatter {
                    array: arr,
                    aff,
                    src,
                    guard: u32::MAX,
                });
            }
            Loc::LB(r) => {
                let src = self.f_slot()?;
                self.ops.push(BOp::CvtBtoF { dst: src, a: r });
                opidx = self.ops.len();
                self.ops.push(BOp::Scatter {
                    array: arr,
                    aff,
                    src,
                    guard: u32::MAX,
                });
            }
        }
        let rec = &mut self.acc[array.0 as usize];
        rec.affs.push(aff);
        rec.scatter_ops.push(opidx);
        Some(())
    }
}

impl<'a> Bc<'a> {
    fn assign(&mut self, var: VarId, let_ty: Option<Scalar>, v: Val) -> Option<()> {
        let vi = var.0 as usize;
        let vu = u16::try_from(var.0).ok()?;
        if self.pinned[vi] {
            return self.assign_pinned(vu, let_ty, v);
        }
        match v.loc {
            Loc::S(src) => {
                match let_ty {
                    Some(ty) => {
                        self.ops.push(BOp::SLet { ty, var: vu, src });
                        let (sty, f32v) = match ty {
                            Scalar::F32 => (STy::F, true),
                            Scalar::F64 => (STy::F, v.f32v),
                            Scalar::I32 | Scalar::U32 => (STy::I, false),
                            Scalar::Bool => (STy::B, false),
                        };
                        self.env[vi] = Val {
                            loc: Loc::S(vu),
                            sty,
                            f32v,
                        };
                    }
                    None => {
                        self.ops.push(BOp::SSet { var: vu, src });
                        self.env[vi] = Val {
                            loc: Loc::S(vu),
                            sty: v.sty,
                            f32v: v.f32v,
                        };
                    }
                }
                self.sdef[vi] = true;
                Some(())
            }
            _ => {
                // Lane-valued: the variable's environment entry simply
                // points at the lanes; runtime definedness is recorded
                // by DefMark (it matters for zero-trip loop bodies).
                let nv = match let_ty {
                    None => v,
                    Some(ty) => self.coerce_lane(ty, v)?,
                };
                let nv = self.unalias_pin(nv)?;
                self.env[vi] = nv;
                self.sdef[vi] = true;
                self.ops.push(BOp::DefMark { var: vu });
                Some(())
            }
        }
    }

    /// `interp::coerce` applied to a lane-classed value.
    fn coerce_lane(&mut self, ty: Scalar, v: Val) -> Option<Val> {
        match (ty, v.loc) {
            (Scalar::F32, Loc::LF(f)) => {
                if v.f32v {
                    return Some(v);
                }
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtFtoF32 { dst, a: f });
                Some(Val {
                    loc: Loc::LF(dst),
                    sty: STy::F,
                    f32v: true,
                })
            }
            (Scalar::F64, Loc::LF(_)) => Some(v),
            (Scalar::Bool, Loc::LF(f)) => {
                let dst = self.b_slot()?;
                self.ops.push(BOp::CvtFtoB { dst, a: f });
                Some(Val {
                    loc: Loc::LB(dst),
                    sty: STy::B,
                    f32v: false,
                })
            }
            // as_i() of float lanes is not affine.
            (Scalar::I32 | Scalar::U32, Loc::LF(_)) => None,
            // V::I(as_i()) of an int is the identity.
            (Scalar::I32 | Scalar::U32, Loc::A(_)) => Some(v),
            (Scalar::F32, Loc::A(aff)) => {
                let t = self.f_slot()?;
                self.ops.push(BOp::CvtAtoF { dst: t, a: aff });
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtFtoF32 { dst, a: t });
                Some(Val {
                    loc: Loc::LF(dst),
                    sty: STy::F,
                    f32v: true,
                })
            }
            (Scalar::F64, Loc::A(aff)) => {
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtAtoF { dst, a: aff });
                Some(Val {
                    loc: Loc::LF(dst),
                    sty: STy::F,
                    f32v: false,
                })
            }
            (Scalar::Bool, Loc::A(aff)) => {
                let dst = self.b_slot()?;
                self.ops.push(BOp::CvtAtoB { dst, a: aff });
                Some(Val {
                    loc: Loc::LB(dst),
                    sty: STy::B,
                    f32v: false,
                })
            }
            (Scalar::F32 | Scalar::F64, Loc::LB(b)) => {
                let dst = self.f_slot()?;
                self.ops.push(BOp::CvtBtoF { dst, a: b });
                Some(Val {
                    loc: Loc::LF(dst),
                    sty: STy::F,
                    f32v: true,
                })
            }
            (Scalar::Bool, Loc::LB(_)) => Some(v),
            (Scalar::I32 | Scalar::U32, Loc::LB(_)) => None,
            (_, Loc::S(_)) => unreachable!("scalar coercion goes through SLet"),
        }
    }

    /// A value living in a pin slot may be overwritten by a later loop
    /// trip; capturing it in another variable must copy the lanes.
    fn unalias_pin(&mut self, v: Val) -> Option<Val> {
        if let Loc::LF(f) = v.loc {
            if self.pin_slots.contains(&f) {
                let dst = self.f_slot()?;
                self.ops.push(BOp::LCopyF { dst, a: f });
                return Some(Val {
                    loc: Loc::LF(dst),
                    ..v
                });
            }
        }
        Some(v)
    }

    /// Assignment to a variable pinned to a mutable LF slot by an
    /// enclosing sequential loop. The pin invariant: the slot holds a
    /// runtime-`F` value at every program point, so only assignments
    /// that provably produce `F` compile.
    fn assign_pinned(&mut self, vu: u16, let_ty: Option<Scalar>, v: Val) -> Option<()> {
        let vi = vu as usize;
        let pin = match self.env[vi].loc {
            Loc::LF(r) => r,
            _ => return None,
        };
        let f32v = match let_ty {
            Some(Scalar::F32) => {
                match v.loc {
                    Loc::S(s) => {
                        // coerce F32 = as_f as f32 as f64, then broadcast.
                        let t = self.s_slot()?;
                        self.ops.push(BOp::SCast {
                            ty: Scalar::F32,
                            dst: t,
                            a: s,
                        });
                        self.ops.push(BOp::BcastF { dst: pin, s: t });
                    }
                    Loc::LF(f) => {
                        if v.f32v {
                            self.redirect_or_copy(f, pin);
                        } else {
                            self.ops.push(BOp::CvtFtoF32 { dst: pin, a: f });
                        }
                    }
                    Loc::A(aff) => {
                        let t = self.f_slot()?;
                        self.ops.push(BOp::CvtAtoF { dst: t, a: aff });
                        self.ops.push(BOp::CvtFtoF32 { dst: pin, a: t });
                    }
                    Loc::LB(b) => {
                        self.ops.push(BOp::CvtBtoF { dst: pin, a: b });
                    }
                }
                true
            }
            Some(Scalar::F64) => {
                // coerce F64 = V::F(as_f) — total for every class.
                match v.loc {
                    Loc::S(s) => self.ops.push(BOp::BcastF { dst: pin, s }),
                    Loc::LF(f) => self.redirect_or_copy(f, pin),
                    Loc::A(aff) => self.ops.push(BOp::CvtAtoF { dst: pin, a: aff }),
                    Loc::LB(b) => self.ops.push(BOp::CvtBtoF { dst: pin, a: b }),
                }
                matches!(v.loc, Loc::LF(_) | Loc::LB(_)) && v.f32v
            }
            // An I32/U32/Bool Let would give the variable a non-F tag.
            Some(Scalar::I32 | Scalar::U32 | Scalar::Bool) => return None,
            None => {
                // Raw Assign stores the value verbatim: it must be
                // guaranteed runtime-F already.
                match v.loc {
                    Loc::S(s) if v.sty == STy::F => self.ops.push(BOp::BcastF { dst: pin, s }),
                    Loc::LF(f) => self.redirect_or_copy(f, pin),
                    _ => return None,
                }
                v.f32v
            }
        };
        self.env[vi] = Val {
            loc: Loc::LF(pin),
            sty: STy::F,
            f32v,
        };
        self.sdef[vi] = true;
        // No DefMark: a pin requires the variable to be defined at
        // loop entry, so runtime definedness is already recorded.
        Some(())
    }

    /// Move freshly produced lanes into a pin slot — by retargeting
    /// the producing op when the source is a throwaway temp, else by
    /// an explicit copy.
    fn redirect_or_copy(&mut self, src: u16, pin: u16) {
        if src == pin {
            return; // e.g. `x = cast(F64, x)` — already in place
        }
        let fresh =
            !self.pin_slots.contains(&src) && !self.env.iter().any(|v| v.loc == Loc::LF(src));
        if fresh {
            if let Some(op) = self.ops.last_mut() {
                if let Some(d) = lane_f_dst_mut(op) {
                    if *d == src {
                        *d = pin;
                        return;
                    }
                }
            }
        }
        self.ops.push(BOp::LCopyF { dst: pin, a: src });
    }

    fn for_loop(
        &mut self,
        var: VarId,
        lo: &Expr,
        hi: &Expr,
        step: i64,
        body: &Block,
    ) -> Option<()> {
        let vlo = self.expr(lo)?;
        let vhi = self.expr(hi)?;
        let (slo, shi) = match (vlo.loc, vhi.loc) {
            (Loc::S(a), Loc::S(b)) => (a, b),
            _ => return None, // lane-varying trip counts stay on the VM
        };
        // A `for` shadowing a lane-valued variable would need a
        // per-lane zero-trip story; reject that degenerate shape.
        if !matches!(self.env[var.0 as usize].loc, Loc::S(_)) {
            return None;
        }
        let vu = u16::try_from(var.0).ok()?;
        let cnt = self.s_slot()?;
        let hii = self.s_slot()?;
        self.ops.push(BOp::SToInt { dst: cnt, a: slo });
        self.ops.push(BOp::SToInt { dst: hii, a: shi });

        let mut w: Vec<VarId> = Vec::new();
        super::compile::collect_assigned(body, &mut w);
        w.sort_unstable();
        w.dedup();

        self.depth += 1;
        let outer = self.snap();
        // Pin fixpoint: find the variables that must live in a mutable
        // lane slot across trips (a pin can force another variable
        // lane-ward, hence the loop; |w| bounds the rounds, 4 is
        // plenty for real kernels and property-sized programs).
        let mut pins: Vec<u32> = Vec::new();
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > 4 {
                self.restore(&outer);
                self.depth -= 1;
                return None;
            }
            // Promote the pinned variables. The entry value must be
            // guaranteed runtime-F or the pin invariant cannot hold
            // (and, for a zero-trip loop, the broadcast entry value
            // must already be what the tree would leave behind).
            let mut pin_fail = false;
            for &pv in &pins {
                let i = pv as usize;
                let promo_ok = matches!(self.env[i].loc, Loc::LF(_))
                    || (matches!(self.env[i].loc, Loc::S(_)) && self.env[i].sty == STy::F);
                if !promo_ok {
                    pin_fail = true;
                    break;
                }
                let pf = match self.f_slot() {
                    Some(r) => r,
                    None => {
                        pin_fail = true;
                        break;
                    }
                };
                match self.env[i].loc {
                    Loc::S(s) => self.ops.push(BOp::BcastF { dst: pf, s }),
                    Loc::LF(t) => self.ops.push(BOp::LCopyF { dst: pf, a: t }),
                    _ => unreachable!(),
                }
                self.env[i] = Val {
                    loc: Loc::LF(pf),
                    sty: STy::F,
                    f32v: false,
                };
                self.pinned[i] = true;
                self.pin_slots.push(pf);
            }
            if pin_fail {
                self.restore(&outer);
                self.depth -= 1;
                return None;
            }
            // Scalar variables assigned in the body have no reliable
            // static type at the (second and later) trip entry.
            for &wv in &w {
                let i = wv.0 as usize;
                if !self.pinned[i] {
                    if let Loc::S(_) = self.env[i].loc {
                        self.env[i].sty = STy::Unk;
                        self.env[i].f32v = false;
                    }
                }
            }
            let pre_sdef = self.sdef.clone();
            let entry_env = self.env.clone();
            self.env[var.0 as usize] = Val {
                loc: Loc::S(vu),
                sty: STy::I,
                f32v: false,
            };
            self.sdef[var.0 as usize] = true;

            let head = u32::try_from(self.ops.len()).ok()?;
            self.ops.push(BOp::ForHead {
                cnt,
                hi: hii,
                exit: 0,
            });
            let fh = self.ops.len() - 1;
            self.ops.push(BOp::SSet { var: vu, src: cnt });
            if self.block(body).is_none() {
                self.restore(&outer);
                self.depth -= 1;
                return None;
            }
            self.ops.push(BOp::ForStep {
                cnt,
                step,
                back: head,
            });
            let exit = u32::try_from(self.ops.len()).ok()?;
            if let BOp::ForHead { exit: e, .. } = &mut self.ops[fh] {
                *e = exit;
            }

            // Classify: any body-assigned variable that ended up (or
            // started) lane-float without a pin becomes one; other
            // loop-carried lane classes are unsupported.
            let mut grew = false;
            let mut reject = false;
            for &wv in &w {
                let i = wv.0 as usize;
                if self.pinned[i] {
                    continue;
                }
                match (entry_env[i].loc, self.env[i].loc) {
                    (Loc::S(_), Loc::S(_)) => {}
                    (Loc::LF(_), _) | (_, Loc::LF(_)) => {
                        if !pins.contains(&wv.0) {
                            pins.push(wv.0);
                            grew = true;
                        }
                    }
                    _ => {
                        reject = true;
                        break;
                    }
                }
            }
            if reject {
                self.restore(&outer);
                self.depth -= 1;
                return None;
            }
            if grew {
                pins.sort_unstable();
                self.restore(&outer);
                continue;
            }

            // Stable: the compiled loop stands. Post-loop state is the
            // conservative meet of entry and exit (trip count is a
            // runtime quantity; zero trips leave the entry state).
            for (cur, entry) in self.env.iter_mut().zip(&entry_env) {
                if entry.loc == cur.loc {
                    if entry.sty != cur.sty {
                        cur.sty = STy::Unk;
                    }
                    cur.f32v &= entry.f32v;
                }
            }
            self.sdef.clone_from(&pre_sdef);
            // This level's pins stay materialized (their slots hold
            // the correct value on every path, including zero-trip),
            // but stop routing new assignments through them.
            for &pv in &pins {
                self.pinned[pv as usize] = false;
            }
            self.depth -= 1;
            return Some(());
        }
    }
}

fn lane_f_dst_mut(op: &mut BOp) -> Option<&mut u16> {
    match op {
        BOp::BcastF { dst, .. }
        | BOp::CvtAtoF { dst, .. }
        | BOp::CvtBtoF { dst, .. }
        | BOp::CvtFtoF32 { dst, .. }
        | BOp::LCopyF { dst, .. }
        | BOp::FBinLL { dst, .. }
        | BOp::FBinLS { dst, .. }
        | BOp::FBinSL { dst, .. }
        | BOp::FFma { dst, .. }
        | BOp::UnF { dst, .. }
        | BOp::SelF { dst, .. }
        | BOp::GatherF { dst, .. } => Some(dst),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{exec_kernel, fresh_vars, KernelFidelity};
    use paccport_ir::builder::ProgramBuilder;
    use paccport_ir::{assign, for_, if_, ld, let_, st, HostStmt, Intent, ParallelLoop, E};

    /// `c[i*n + j] = Σ_k a[i*n+k]·b[k*n+j]` — the matmul shape: a
    /// pinned For accumulator, a scalar-indexed load, and a strided
    /// gather.
    fn matmul_like() -> (Program, Vec<V>, Vec<Buffer>) {
        let n: i64 = 5;
        let mut b = ProgramBuilder::new("batch_matmul");
        let np = b.iparam("n");
        let aa = b.array("a", Scalar::F32, E::from(np) * E::from(np), Intent::In);
        let ba = b.array("b", Scalar::F32, E::from(np) * E::from(np), Intent::In);
        let ca = b.array("c", Scalar::F32, E::from(np) * E::from(np), Intent::Out);
        let iv = b.var("i");
        let jv = b.var("j");
        let kv = b.var("k");
        let acc = b.var("acc");
        let body = vec![
            let_(acc, Scalar::F32, 0.0f64),
            for_(
                kv,
                0i64,
                np,
                vec![assign(
                    acc,
                    E::from(Expr::var(acc))
                        + ld(
                            aa,
                            E::from(Expr::var(iv)) * E::from(np) + E::from(Expr::var(kv)),
                        ) * ld(
                            ba,
                            E::from(Expr::var(kv)) * E::from(np) + E::from(Expr::var(jv)),
                        ),
                )],
            ),
            st(
                ca,
                E::from(Expr::var(iv)) * E::from(np) + E::from(Expr::var(jv)),
                E::from(Expr::var(acc)),
            ),
        ];
        let k = Kernel::simple(
            "mm",
            vec![
                ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np)),
                ParallelLoop::new(jv, Expr::iconst(0), Expr::param(np)),
            ],
            Block::new(body),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let len = (n * n) as usize;
        let af: Vec<f32> = (0..len).map(|i| (i as f32) * 0.25 - 2.0).collect();
        let bf: Vec<f32> = (0..len).map(|i| 1.5 - (i as f32) * 0.125).collect();
        let bufs = vec![
            Buffer::F32(af),
            Buffer::F32(bf),
            Buffer::zeroed(Scalar::F32, len),
        ];
        (p, vec![V::I(n)], bufs)
    }

    /// `rho[i] = rho[i] + f·rho[i]` — gather and scatter of the same
    /// array at the same affine index, the guarded shape.
    fn rmw_like() -> (Program, Vec<V>, Vec<Buffer>) {
        let n: i64 = 17;
        let mut b = ProgramBuilder::new("batch_rmw");
        let np = b.iparam("n");
        let rho = b.array("rho", Scalar::F64, E::from(np), Intent::InOut);
        let iv = b.var("i");
        let body = vec![st(
            rho,
            E::from(Expr::var(iv)),
            ld(rho, E::from(Expr::var(iv))) + ld(rho, E::from(Expr::var(iv))) * 0.5f64,
        )];
        let k = Kernel::simple(
            "rmw",
            vec![ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np))],
            Block::new(body),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let rf: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 3.0).collect();
        (p, vec![V::I(n)], vec![Buffer::F64(rf)])
    }

    fn run_both(p: &Program, params: &[V], bufs: &[Buffer]) -> (Vec<Buffer>, Vec<Buffer>) {
        let k = &p.kernels()[0];
        let mut tree_bufs = bufs.to_vec();
        let mut vars = fresh_vars(p);
        exec_kernel(
            p,
            params,
            k,
            &mut vars,
            &mut tree_bufs,
            KernelFidelity::Exact,
        );
        let code = super::super::compile::compile_kernel(p, k);
        assert!(code.batch.is_some(), "kernel failed to batch-compile");
        let mut bc_bufs = bufs.to_vec();
        let mut vars = fresh_vars(p);
        super::super::vm::exec_kernel_bc(
            &code,
            params,
            k,
            &mut vars,
            &mut bc_bufs,
            KernelFidelity::Exact,
            None,
        );
        (tree_bufs, bc_bufs)
    }

    #[test]
    fn matmul_shape_batches_and_matches_tree() {
        let (p, params, bufs) = matmul_like();
        let k = &p.kernels()[0];
        let plan = build(&p, k).expect("matmul shape must batch-compile");
        // The For accumulator forces a pin: a loop back-edge and at
        // least one lane-float op inside the loop.
        assert!(plan.ops.iter().any(|o| matches!(o, BOp::ForHead { .. })));
        assert!(plan.guards.is_empty(), "sole scatter needs no guard");
        let (t, b) = run_both(&p, &params, &bufs);
        assert_eq!(t, b, "matmul tiers diverged");
    }

    #[test]
    fn read_modify_write_is_guarded_and_matches_tree() {
        let (p, params, bufs) = rmw_like();
        let k = &p.kernels()[0];
        let plan = build(&p, k).expect("rmw shape must batch-compile");
        assert_eq!(
            plan.guards.len(),
            1,
            "gather+scatter of one array needs a guard"
        );
        assert!(
            plan.guards[0].len() >= 3,
            "all three accesses join the guard"
        );
        let (t, b) = run_both(&p, &params, &bufs);
        assert_eq!(t, b, "rmw tiers diverged");
    }

    #[test]
    fn if_statement_rejects() {
        let mut b = ProgramBuilder::new("batch_if");
        let np = b.iparam("n");
        let o = b.array("o", Scalar::F32, E::from(np), Intent::Out);
        let iv = b.var("i");
        let body = vec![if_(
            E::from(Expr::var(iv)).lt(E::from(2i64)),
            vec![st(o, E::from(Expr::var(iv)), 1.0f64)],
        )];
        let k = Kernel::simple(
            "ifk",
            vec![ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np))],
            Block::new(body),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        assert!(build(&p, &p.kernels()[0]).is_none());
    }

    #[test]
    fn region_reduction_compiles_to_fold() {
        let mut b = ProgramBuilder::new("batch_rr");
        let np = b.iparam("n");
        let a = b.array("a", Scalar::F64, E::from(np), Intent::In);
        let red = b.array("red", Scalar::F64, 1i64, Intent::Out);
        let iv = b.var("i");
        let vv = b.var("v");
        let body = vec![let_(
            vv,
            Scalar::F64,
            ld(a, E::from(Expr::var(iv))) * 2.0f64,
        )];
        let mut k = Kernel::simple(
            "rr",
            vec![ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np))],
            Block::new(body),
        );
        k.region_reduction = Some(paccport_ir::RegionReduction {
            op: ReduceOp::Max,
            value: Expr::var(vv),
            dest: red,
        });
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let plan = build(&p, &p.kernels()[0]).expect("reduction shape must batch-compile");
        assert!(matches!(plan.reduce, Some((Loc::LF(_), ReduceOp::Max))));
        let n = 9i64;
        let af: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 1.5).collect();
        let bufs = vec![Buffer::F64(af), Buffer::zeroed(Scalar::F64, 1)];
        let (t, b) = run_both(&p, &[V::I(n)], &bufs);
        assert_eq!(t, b, "reduction tiers diverged");
    }

    #[test]
    fn zero_trip_inner_loop_preserves_undefinedness() {
        // A variable first assigned inside a zero-trip sequential loop
        // must stay undefined after the batch, exactly like the tree.
        let mut b = ProgramBuilder::new("batch_zerotrip");
        let np = b.iparam("n");
        let o = b.array("o", Scalar::F64, E::from(np), Intent::Out);
        let iv = b.var("i");
        let jv = b.var("j");
        let tv = b.var("t");
        let body = vec![
            for_(jv, 0i64, 0i64, vec![let_(tv, Scalar::F64, 1.25f64)]),
            st(o, E::from(Expr::var(iv)), E::from(3.5f64)),
        ];
        let k = Kernel::simple(
            "zt",
            vec![ParallelLoop::new(iv, Expr::iconst(0), Expr::param(np))],
            Block::new(body),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let k = &p.kernels()[0];
        assert!(build(&p, k).is_some());
        let n = 4i64;
        let bufs = vec![Buffer::zeroed(Scalar::F64, n as usize)];
        let params = [V::I(n)];
        let mut tree_bufs = bufs.clone();
        let mut tree_vars = fresh_vars(&p);
        exec_kernel(
            &p,
            &params,
            k,
            &mut tree_vars,
            &mut tree_bufs,
            KernelFidelity::Exact,
        );
        let code = super::super::compile::compile_kernel(&p, k);
        let mut bc_bufs = bufs;
        let mut bc_vars = fresh_vars(&p);
        super::super::vm::exec_kernel_bc(
            &code,
            &params,
            k,
            &mut bc_vars,
            &mut bc_bufs,
            KernelFidelity::Exact,
            None,
        );
        assert_eq!(tree_bufs, bc_bufs);
        assert_eq!(tree_vars, bc_vars, "variable environments diverged");
        assert_eq!(tree_vars[tv.0 as usize], None, "t must stay undefined");
    }
}
