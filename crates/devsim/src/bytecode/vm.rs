//! The bytecode VM: executes [`KernelCode`] bit-identically to the
//! tree-walker.
//!
//! Values live in a flat register arena (`Vec<V>`), with the program's
//! variables occupying the low registers — one bounds-checked index
//! per access instead of the tree-walker's `Vec<Option<V>>` scope
//! lookups. Every arithmetic helper is *shared* with the tree-walker
//! ([`interp::bin`], [`interp::cmp`], [`interp::coerce`]), so the two
//! tiers cannot drift: the VM only changes how operands are fetched,
//! never what is computed.
//!
//! The watchdog stream is chosen once per kernel execution: if this
//! thread has no armed budget, `charge()` is observably a no-op (the
//! budget cell is thread-local), so the VM runs the charge-stripped
//! twin stream and pays nothing per statement. With a watchdog armed
//! it runs the full stream, charging exactly where the tree-walker
//! does, so timeout budgets trip at the same statement.
//!
//! [`interp::bin`]: crate::interp
//! [`interp::cmp`]: crate::interp
//! [`interp::coerce`]: crate::interp

use super::batch;
use super::compile::{BodyCode, CodeBlock, Instr, KernelCode};
use crate::interp::{self, GroupCtx, KernelFidelity, V};
use crate::memory::{Buffer, MemLoc};
use crate::race::{RaceTracker, ThreadId};
use paccport_ir::expr::{BinOp, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody};
use paccport_ir::types::{MemSpace, Scalar};

/// Everything an instruction can touch — the VM's analogue of
/// [`interp::Scope`].
///
/// [`interp::Scope`]: crate::interp::Scope
struct Ctx<'a> {
    params: &'a [V],
    bufs: &'a mut [Buffer],
    locals: Option<&'a mut Vec<Buffer>>,
    group: GroupCtx,
    tracker: Option<&'a RaceTracker>,
}

impl Ctx<'_> {
    fn mem_loc(&self, space: MemSpace, array: u32, index: i64) -> MemLoc {
        match space {
            MemSpace::Global => MemLoc::global(array, index),
            MemSpace::Local => MemLoc::local(array, self.group.group_id, index),
        }
    }
}

/// Pick the full or charge-stripped stream, decided once per exec.
fn sel(cb: &CodeBlock, charging: bool) -> &[Instr] {
    if charging {
        &cb.code
    } else {
        &cb.stripped
    }
}

/// Execute one instruction stream to completion.
fn run_code(code: &[Instr], regs: &mut [V], defined: &mut [bool], ctx: &mut Ctx<'_>) {
    let mut pc = 0usize;
    while let Some(&ins) = code.get(pc) {
        pc += 1;
        match ins {
            Instr::ConstF { dst, bits } => regs[dst as usize] = V::F(f64::from_bits(bits)),
            Instr::ConstI { dst, v } => regs[dst as usize] = V::I(v),
            Instr::ConstB { dst, v } => regs[dst as usize] = V::B(v),
            Instr::Param { dst, p } => regs[dst as usize] = ctx.params[p as usize],
            Instr::Copy { dst, src } => regs[dst as usize] = regs[src as usize],
            Instr::Special { dst, which } => {
                regs[dst as usize] = V::I(match which {
                    0 => ctx.group.local_id,
                    1 => ctx.group.group_id,
                    2 => ctx.group.local_size,
                    _ => ctx.group.num_groups,
                });
            }
            Instr::CheckDef { var } => {
                if !defined[var as usize] {
                    panic!("read of undefined variable v{var}");
                }
            }
            Instr::Un { op, dst, a } => {
                let va = regs[a as usize];
                regs[dst as usize] = match op {
                    UnOp::Neg => match va {
                        V::I(v) => V::I(-v),
                        other => V::F(-other.as_f()),
                    },
                    UnOp::Abs => match va {
                        V::I(v) => V::I(v.abs()),
                        other => V::F(other.as_f().abs()),
                    },
                    UnOp::Rcp => V::F(1.0 / va.as_f()),
                    UnOp::Sqrt => V::F(va.as_f().sqrt()),
                    UnOp::Not => V::B(!va.as_b()),
                    UnOp::Exp => V::F(va.as_f().exp()),
                };
            }
            Instr::Bin { op, dst, a, b } => {
                regs[dst as usize] = interp::bin(op, regs[a as usize], regs[b as usize]);
            }
            Instr::BinFF { op, dst, a, b } => {
                let (va, vb) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = if let (V::F(x), V::F(y)) = (va, vb) {
                    let (x, y) = (x as f32, y as f32);
                    let r = match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => x / y,
                        BinOp::Rem => x % y,
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("BinFF is arithmetic-only"),
                    };
                    V::F(r as f64)
                } else {
                    interp::bin(op, va, vb)
                };
            }
            Instr::BinII { op, dst, a, b } => {
                let (va, vb) = (regs[a as usize], regs[b as usize]);
                regs[dst as usize] = if let (V::I(x), V::I(y)) = (va, vb) {
                    V::I(match op {
                        BinOp::Add => x + y,
                        BinOp::Sub => x - y,
                        BinOp::Mul => x * y,
                        BinOp::Div => {
                            assert!(y != 0, "integer division by zero");
                            x / y
                        }
                        BinOp::Rem => {
                            assert!(y != 0, "integer remainder by zero");
                            x % y
                        }
                        BinOp::Min => x.min(y),
                        BinOp::Max => x.max(y),
                        _ => unreachable!("BinII is arithmetic-only"),
                    })
                } else {
                    interp::bin(op, va, vb)
                };
            }
            Instr::Cmp { op, dst, a, b } => {
                regs[dst as usize] = V::B(interp::cmp(op, regs[a as usize], regs[b as usize]));
            }
            Instr::Fma { dst, a, b, c } => {
                let va = regs[a as usize].as_f();
                let vb = regs[b as usize].as_f();
                let vc = regs[c as usize].as_f();
                // f32 semantics, like the devices' fma.f32.
                regs[dst as usize] = V::F(((va as f32).mul_add(vb as f32, vc as f32)) as f64);
            }
            Instr::Cast { ty, dst, a } => {
                let v = regs[a as usize];
                regs[dst as usize] = match ty {
                    Scalar::F32 => V::F(v.as_f() as f32 as f64),
                    Scalar::F64 => V::F(v.as_f()),
                    Scalar::I32 => V::I(v.as_i() as i32 as i64),
                    Scalar::U32 => V::I(v.as_i() as u32 as i64),
                    Scalar::Bool => V::B(v.as_b()),
                };
            }
            Instr::LetVar { ty, var, src } => {
                regs[var as usize] = interp::coerce(regs[src as usize], ty);
                defined[var as usize] = true;
            }
            Instr::SetVar { var, src } => {
                regs[var as usize] = regs[src as usize];
                defined[var as usize] = true;
            }
            Instr::ToInt { dst, src } => {
                regs[dst as usize] = V::I(regs[src as usize].as_i());
            }
            Instr::Load {
                space,
                array,
                idx,
                dst,
            } => {
                let i = regs[idx as usize].as_i();
                if let Some(t) = ctx.tracker {
                    t.log_read(ctx.mem_loc(space, array as u32, i));
                }
                let buf = match space {
                    MemSpace::Global => &ctx.bufs[array as usize],
                    MemSpace::Local => {
                        &ctx.locals.as_ref().expect("local access outside group")[array as usize]
                    }
                };
                assert!(
                    (i as usize) < buf.len(),
                    "index {i} out of bounds for array of length {} ({:?})",
                    buf.len(),
                    space
                );
                regs[dst as usize] = match buf.elem() {
                    Scalar::F32 | Scalar::F64 => V::F(buf.get(i as usize)),
                    Scalar::Bool => V::B(buf.get(i as usize) != 0.0),
                    _ => V::I(buf.get(i as usize) as i64),
                };
            }
            Instr::Store {
                space,
                array,
                idx,
                val,
            } => {
                let i = regs[idx as usize].as_i();
                let v = regs[val as usize].as_f();
                if let Some(t) = ctx.tracker {
                    t.log_write(ctx.mem_loc(space, array as u32, i), false);
                }
                let buf = match space {
                    MemSpace::Global => &mut ctx.bufs[array as usize],
                    MemSpace::Local => {
                        &mut ctx.locals.as_mut().expect("local store outside group")[array as usize]
                    }
                };
                assert!(
                    (i as usize) < buf.len(),
                    "store index {i} out of bounds for array of length {}",
                    buf.len()
                );
                buf.set(i as usize, v);
            }
            Instr::Atomic {
                op,
                array,
                idx,
                val,
            } => {
                // Sequential interpretation makes the read-modify-write
                // trivially atomic.
                let i = regs[idx as usize].as_i() as usize;
                let v = regs[val as usize].as_f();
                if let Some(t) = ctx.tracker {
                    t.log_write(ctx.mem_loc(MemSpace::Global, array as u32, i as i64), true);
                }
                let buf = &mut ctx.bufs[array as usize];
                let old = buf.get(i);
                buf.set(i, op.combine(old, v));
            }
            Instr::Jump { to } => pc = to as usize,
            Instr::JumpIfFalse { cond, to } => {
                if !regs[cond as usize].as_b() {
                    pc = to as usize;
                }
            }
            Instr::ForHead { cnt, hi, exit } => {
                if regs[cnt as usize].as_i() >= regs[hi as usize].as_i() {
                    pc = exit as usize;
                }
            }
            Instr::ForStep { cnt, step, back } => {
                regs[cnt as usize] = V::I(regs[cnt as usize].as_i() + step);
                pc = back as usize;
            }
            Instr::Charge => paccport_faults::charge(1),
        }
    }
}

/// Execute one kernel over its full iteration space against `bufs`,
/// exactly like [`interp::exec_kernel_traced`] but from compiled code.
///
/// `vars` is the runner's scalar environment; for simple kernels the
/// defined-set and values are written back on exit (the tree-walker
/// mutates the environment in place), for grouped kernels the outer
/// environment is left untouched, also like the tree-walker.
///
/// [`interp::exec_kernel_traced`]: crate::interp::exec_kernel_traced
pub fn exec_kernel_bc(
    code: &KernelCode,
    params: &[V],
    k: &Kernel,
    vars: &mut [Option<V>],
    bufs: &mut [Buffer],
    fidelity: KernelFidelity,
    tracker: Option<&RaceTracker>,
) {
    // Constant for the whole exec: the budget cell is thread-local and
    // nothing inside a kernel arms or disarms it. When unarmed,
    // `charge()` is a no-op, so the stripped stream is observationally
    // identical and we skip the per-statement call entirely.
    let charging = paccport_faults::watchdog_armed();
    let mut regs = vec![V::I(0); code.n_regs as usize];
    let mut defined = vec![false; code.n_vars as usize];
    for (i, v) in vars.iter().enumerate() {
        if let Some(v) = *v {
            regs[i] = v;
            defined[i] = true;
        }
    }
    {
        let mut ctx = Ctx {
            params,
            bufs: &mut *bufs,
            locals: None,
            group: GroupCtx::default(),
            tracker: None,
        };
        run_code(
            sel(&code.prelude, charging),
            &mut regs,
            &mut defined,
            &mut ctx,
        );
    }

    match &k.body {
        KernelBody::Simple(_) => {
            let mut acc = k.region_reduction.as_ref().map(|rr| rr.op.identity());
            let mut iter = Vec::with_capacity(k.loops.len());
            let mut bstate = None;
            nest(
                code,
                k,
                0,
                &mut regs,
                &mut defined,
                params,
                bufs,
                &mut acc,
                tracker,
                &mut iter,
                charging,
                &mut bstate,
            );
            if let Some(t) = tracker {
                // The combined reduction store is a synchronization
                // point, not a per-iteration access.
                t.set_thread(None);
            }
            if let (Some(rr), Some(total)) = (&k.region_reduction, acc) {
                bufs[rr.dest.0 as usize].set(0, total);
            }
            // Write the environment back: values for everything
            // defined, None for everything still unset — the exact
            // state the tree-walker leaves `vars` in.
            for (i, d) in defined.iter().enumerate() {
                vars[i] = if *d { Some(regs[i]) } else { None };
            }
        }
        KernelBody::Grouped(g) => {
            let phases = match &code.body {
                BodyCode::Grouped { phases } => phases,
                BodyCode::Simple { .. } => unreachable!("kernel/code shape mismatch"),
            };
            // Grouped kernels have one parallel loop; each group of
            // `group_size` threads cooperates on one iteration of it.
            assert_eq!(k.loops.len(), 1, "grouped kernels are rank-1");
            let lp = &k.loops[0];
            let b = &code.bounds[0];
            let (lo, hi) = {
                let mut ctx = Ctx {
                    params,
                    bufs: &mut *bufs,
                    locals: None,
                    group: GroupCtx::default(),
                    // Loop bounds are evaluated once, before the
                    // parallel region: not per-iteration accesses.
                    tracker: None,
                };
                run_code(
                    sel(&b.lo.block, charging),
                    &mut regs,
                    &mut defined,
                    &mut ctx,
                );
                let lo = regs[b.lo.out as usize].as_i();
                run_code(
                    sel(&b.hi.block, charging),
                    &mut regs,
                    &mut defined,
                    &mut ctx,
                );
                (lo, regs[b.hi.out as usize].as_i())
            };
            let n_groups = (hi - lo).max(0);
            let gsz = g.group_size as i64;
            for grp in 0..n_groups {
                let mut locals: Vec<Buffer> = g
                    .locals
                    .iter()
                    .map(|l| Buffer::zeroed(l.elem, l.len))
                    .collect();
                // Per-thread register files persist across phases.
                let mut thread_regs: Vec<Vec<V>> = vec![regs.clone(); g.group_size as usize];
                let mut thread_def: Vec<Vec<bool>> = vec![defined.clone(); g.group_size as usize];
                for (pi, phase) in phases.iter().enumerate() {
                    let skip = fidelity == KernelFidelity::DropTreePhases
                        && pi > 0
                        && pi + 1 < phases.len();
                    if skip {
                        continue;
                    }
                    if let Some(tr) = tracker {
                        // Phases are separated by implicit barriers;
                        // the phase index is the tracker's epoch.
                        tr.set_epoch(pi as u32);
                    }
                    let pcode = sel(phase, charging);
                    for t in 0..gsz {
                        let tr_regs = &mut thread_regs[t as usize];
                        let tdef = &mut thread_def[t as usize];
                        tr_regs[lp.var.0 as usize] = V::I(lo + grp);
                        tdef[lp.var.0 as usize] = true;
                        if let Some(trk) = tracker {
                            trk.set_thread(Some(ThreadId::Lane {
                                group: grp,
                                lane: t,
                            }));
                        }
                        let mut ctx = Ctx {
                            params,
                            bufs: &mut *bufs,
                            locals: Some(&mut locals),
                            group: GroupCtx {
                                local_id: t,
                                group_id: grp,
                                local_size: gsz,
                                num_groups: n_groups,
                            },
                            tracker,
                        };
                        run_code(pcode, tr_regs, tdef, &mut ctx);
                    }
                }
            }
            if let Some(tr) = tracker {
                tr.set_thread(None);
            }
        }
    }
}

/// Recursively iterate the parallel loop nest of a simple kernel,
/// mirroring the tree-walker's `exec_nest` (per-depth bounds
/// re-evaluation handles triangular nests).
#[allow(clippy::too_many_arguments)]
fn nest(
    code: &KernelCode,
    k: &Kernel,
    depth: usize,
    regs: &mut [V],
    defined: &mut [bool],
    params: &[V],
    bufs: &mut [Buffer],
    acc: &mut Option<f64>,
    tracker: Option<&RaceTracker>,
    iter: &mut Vec<i64>,
    charging: bool,
    bstate: &mut Option<Box<batch::BatchState>>,
) {
    let (block, reduce) = match &code.body {
        BodyCode::Simple { block, reduce } => (block, reduce.as_ref()),
        BodyCode::Grouped { .. } => unreachable!("kernel/code shape mismatch"),
    };
    if depth == k.loops.len() {
        if let Some(t) = tracker {
            t.set_thread(Some(ThreadId::Iter(iter.clone())));
        }
        let mut ctx = Ctx {
            params,
            bufs,
            locals: None,
            group: GroupCtx::default(),
            tracker,
        };
        run_code(sel(block, charging), regs, defined, &mut ctx);
        if let (Some(rr), Some(frag)) = (&k.region_reduction, reduce) {
            run_code(sel(&frag.block, charging), regs, defined, &mut ctx);
            let v = regs[frag.out as usize].as_f();
            if let Some(total) = acc.as_mut() {
                *total = rr.op.combine(*total, v);
            }
        }
        return;
    }
    let b = &code.bounds[depth];
    let (lo, hi) = {
        let mut ctx = Ctx {
            params,
            bufs: &mut *bufs,
            locals: None,
            group: GroupCtx::default(),
            // Loop bounds are evaluated before the parallel region at
            // this depth: not per-iteration accesses.
            tracker: None,
        };
        // The two fragments share temp registers: read `lo` before
        // running `hi`.
        run_code(sel(&b.lo.block, charging), regs, defined, &mut ctx);
        let lo = regs[b.lo.out as usize].as_i();
        run_code(sel(&b.hi.block, charging), regs, defined, &mut ctx);
        (lo, regs[b.hi.out as usize].as_i())
    };
    let var = k.loops[depth].var.0 as usize;
    if tracker.is_none() && !charging && depth + 1 == k.loops.len() {
        // Batched innermost loop: one pass over the whole lane range
        // with loop-invariant operands resolved once. Shadow logging
        // and watchdog charging need per-lane dispatch, so the batch
        // only runs without them; `run_batch` returns `false` (having
        // touched nothing) on any hazard, falling through to the
        // scalar paths below.
        if let Some(plan) = &code.batch {
            if batch::run_batch(plan, bstate, lo, hi, regs, defined, params, bufs, acc) {
                return;
            }
        }
    }
    if tracker.is_none() && depth + 1 == k.loops.len() && k.region_reduction.is_none() {
        // Innermost fast path: no thread-id bookkeeping, no reduction
        // accumulation — a flat dispatch loop over the body stream.
        let body = sel(block, charging);
        let mut ctx = Ctx {
            params,
            bufs,
            locals: None,
            group: GroupCtx::default(),
            tracker: None,
        };
        for i in lo..hi {
            regs[var] = V::I(i);
            defined[var] = true;
            run_code(body, regs, defined, &mut ctx);
        }
        return;
    }
    for i in lo..hi {
        regs[var] = V::I(i);
        defined[var] = true;
        iter.push(i);
        nest(
            code,
            k,
            depth + 1,
            regs,
            defined,
            params,
            bufs,
            acc,
            tracker,
            iter,
            charging,
            bstate,
        );
        iter.pop();
    }
}
