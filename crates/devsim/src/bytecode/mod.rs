//! Compile-once bytecode execution tier.
//!
//! The tree-walking interpreter in [`crate::interp`] re-traverses the
//! statement/expression tree for every simulated thread; this module
//! compiles each kernel once into a flat instruction stream
//! ([`compile`]) and dispatches it in a tight loop ([`vm`]), replacing
//! the `Vec<Option<V>>` scope with flat-indexed register slots and
//! hoisting constant/parameter resolution out of the thread loop.
//!
//! The contract, enforced by the conformance driver's `tier/bytecode`
//! leg and the `tier_equivalence` suite, is **bitwise equality** with
//! the tree-walker: identical output buffers (f64 bit patterns),
//! identical race-tracker logs, identical panics (message and
//! evaluation step), identical watchdog charge counts. Shared
//! arithmetic helpers and a side-effect-preserving lowering make this
//! hold by construction rather than by tolerance.

pub mod batch;
pub mod compile;
pub mod disasm;
pub mod vm;

pub use compile::{compile_kernel, compile_program, BodyCode, CodeBlock, Instr, KernelCode};
pub use disasm::{disassemble, parse};
pub use vm::exec_kernel_bc;

use crate::interp::{exec_kernel_traced, KernelFidelity, V};
use crate::memory::Buffer;
use crate::race::RaceTracker;
use crate::tier::ExecTier;
use paccport_ir::{Kernel, Program};

/// Execute one kernel under an explicit tier. The bytecode path
/// compiles on the fly — callers that execute a kernel repeatedly
/// (the runner's while-loops, the bench harness) should compile once
/// with [`compile_kernel`] and call [`exec_kernel_bc`] directly.
#[allow(clippy::too_many_arguments)]
pub fn exec_kernel_tiered(
    p: &Program,
    params: &[V],
    k: &Kernel,
    vars: &mut [Option<V>],
    bufs: &mut [Buffer],
    fidelity: KernelFidelity,
    tracker: Option<&RaceTracker>,
    tier: ExecTier,
) {
    match tier {
        ExecTier::Tree => exec_kernel_traced(p, params, k, vars, bufs, fidelity, tracker),
        ExecTier::Bytecode => {
            let code = compile_kernel(p, k);
            exec_kernel_bc(&code, params, k, vars, bufs, fidelity, tracker);
        }
    }
}
