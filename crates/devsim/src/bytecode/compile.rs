//! Lowering `Program`/`Kernel`/`Block` to flat instruction streams.
//!
//! One [`KernelCode`] per kernel, compiled once per run and reused for
//! every launch. The lowering linearizes expression trees in exactly
//! the tree-walker's evaluation order (operand before operator, index
//! before load, `Select` arms lazily), so side effects — race-tracker
//! log entries, bounds-check panics, watchdog charges — happen in the
//! same order under either tier. Program variables map 1:1 onto the
//! low registers (`VarId(v)` ↔ register `v`), replacing the
//! `Vec<Option<V>>` scope with flat-indexed slots; constants and
//! parameter reads are collected in a pre-scan and hoisted into a
//! prelude executed once per kernel launch, outside the thread loop.
//!
//! Register space is `[variables][const/param pool][temps]`. The pool
//! is sized by the pre-scan before any code is emitted, so the
//! watermark temp allocator can never collide with a pooled value.
//!
//! A conservative forward type analysis (`F`/`I`/`B`/`Unk` lattice)
//! picks type-specialized opcodes (`BinFF`/`BinII`) where both operand
//! types are statically known; the specialized arms re-check the
//! runtime tags and fall back to the generic [`interp::bin`] path, so
//! a wrong inference can cost speed but never correctness. A parallel
//! definite-assignment analysis inserts [`Instr::CheckDef`] exactly
//! where a variable read is not statically proven initialized, so the
//! tree-walker's "read of undefined variable" panic reproduces at the
//! same evaluation step.
//!
//! [`interp::bin`]: crate::interp

use paccport_ir::expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody, ReduceOp};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{MemSpace, Scalar, VarId};
use paccport_ir::Program;

/// Register index. Registers `0..n_vars` are the program's variables;
/// then the hoisted const/param pool; then expression temps.
pub type Reg = u16;

/// One VM instruction. Each arm reads all operand registers before
/// writing its destination, so a destination may alias an operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `dst = F(f64::from_bits(bits))` (bits, so NaNs round-trip).
    ConstF {
        dst: Reg,
        bits: u64,
    },
    ConstI {
        dst: Reg,
        v: i64,
    },
    ConstB {
        dst: Reg,
        v: bool,
    },
    /// `dst = params[p]`.
    Param {
        dst: Reg,
        p: u16,
    },
    Copy {
        dst: Reg,
        src: Reg,
    },
    /// Work-group builtin: 0 local_id, 1 group_id, 2 local_size,
    /// 3 num_groups.
    Special {
        dst: Reg,
        which: u8,
    },
    /// Panic like the tree-walker's `get_var` if `var` has not been
    /// assigned yet in this execution.
    CheckDef {
        var: Reg,
    },
    Un {
        op: UnOp,
        dst: Reg,
        a: Reg,
    },
    /// Generic binary op — exactly [`crate::interp`]'s `bin`.
    Bin {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Both operands statically float: fast f32-narrowed path, falling
    /// back to the generic op if the runtime tags disagree.
    BinFF {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Both operands statically int.
    BinII {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Cmp {
        op: CmpOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    Fma {
        dst: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
    },
    Cast {
        ty: Scalar,
        dst: Reg,
        a: Reg,
    },
    /// `Let`-store: `regs[var] = coerce(regs[src], ty)`, marks the
    /// variable defined.
    LetVar {
        ty: Scalar,
        var: Reg,
        src: Reg,
    },
    /// `Assign`-store (no coercion), marks the variable defined.
    SetVar {
        var: Reg,
        src: Reg,
    },
    /// `dst = I(regs[src].as_i())` — loop-bound normalization.
    ToInt {
        dst: Reg,
        src: Reg,
    },
    Load {
        space: MemSpace,
        array: u16,
        idx: Reg,
        dst: Reg,
    },
    Store {
        space: MemSpace,
        array: u16,
        idx: Reg,
        val: Reg,
    },
    Atomic {
        op: ReduceOp,
        array: u16,
        idx: Reg,
        val: Reg,
    },
    Jump {
        to: u32,
    },
    JumpIfFalse {
        cond: Reg,
        to: u32,
    },
    /// `if regs[cnt] >= regs[hi] jump exit` (both always `V::I`).
    ForHead {
        cnt: Reg,
        hi: Reg,
        exit: u32,
    },
    /// `regs[cnt] += step; jump back`.
    ForStep {
        cnt: Reg,
        step: i64,
        back: u32,
    },
    /// One watchdog step (`paccport_faults::charge(1)`) — emitted at
    /// each statement boundary, mirroring the tree-walker's
    /// per-statement charge. Stripped from the fast stream executed
    /// when no watchdog is armed on the current thread.
    Charge,
}

/// A flat instruction stream plus its charge-stripped twin (jump
/// targets remapped). `stripped` is derived from `code`, so equality
/// and the disassembly cover `code` only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CodeBlock {
    pub code: Vec<Instr>,
    pub stripped: Vec<Instr>,
}

impl CodeBlock {
    pub fn new(code: Vec<Instr>) -> CodeBlock {
        let stripped = strip_charges(&code);
        CodeBlock { code, stripped }
    }
}

/// Drop `Charge` instructions and remap jump targets.
fn strip_charges(code: &[Instr]) -> Vec<Instr> {
    // new_pc[i] = index of instruction i in the stripped stream (for a
    // Charge: the index of the next surviving instruction, which is
    // what a jump *to* a Charge must land on).
    let mut new_pc = Vec::with_capacity(code.len() + 1);
    let mut n = 0u32;
    for ins in code {
        new_pc.push(n);
        if !matches!(ins, Instr::Charge) {
            n += 1;
        }
    }
    new_pc.push(n); // jumps one-past-the-end are legal exits
    let fix = |to: u32| new_pc[to as usize];
    code.iter()
        .filter(|i| !matches!(i, Instr::Charge))
        .map(|i| match *i {
            Instr::Jump { to } => Instr::Jump { to: fix(to) },
            Instr::JumpIfFalse { cond, to } => Instr::JumpIfFalse { cond, to: fix(to) },
            Instr::ForHead { cnt, hi, exit } => Instr::ForHead {
                cnt,
                hi,
                exit: fix(exit),
            },
            Instr::ForStep { cnt, step, back } => Instr::ForStep {
                cnt,
                step,
                back: fix(back),
            },
            other => other,
        })
        .collect()
}

/// An expression fragment: run `block`, result is in `out`.
///
/// Fragments share the temp register space, so a fragment's output
/// must be consumed before the next fragment (or the body) runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprFrag {
    pub block: CodeBlock,
    pub out: Reg,
}

/// Compiled bounds of one parallel-loop level. Evaluated at nest-entry
/// of that level, like the tree-walker: run `lo`, read it, then run
/// `hi` (the fragments share temp registers).
#[derive(Debug, Clone, PartialEq)]
pub struct LoopBounds {
    pub lo: ExprFrag,
    pub hi: ExprFrag,
}

/// Compiled kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyCode {
    Simple {
        block: CodeBlock,
        /// Region-reduction value, evaluated after each iteration's
        /// body in the same (tracked) scope.
        reduce: Option<ExprFrag>,
    },
    Grouped {
        phases: Vec<CodeBlock>,
    },
}

/// Everything the VM needs to execute one kernel. Shape metadata
/// (loop vars, group size, locals, reduction op/dest, fidelity skips)
/// stays on the [`Kernel`] itself — this is code only.
#[derive(Debug, Clone)]
pub struct KernelCode {
    pub kernel: String,
    pub n_regs: u16,
    /// Registers `0..n_vars` are the program variable slots.
    pub n_vars: u16,
    /// Hoisted constants and parameter reads, run once per launch.
    pub prelude: CodeBlock,
    pub bounds: Vec<LoopBounds>,
    pub body: BodyCode,
    /// Optional batched form of the innermost parallel loop (see
    /// [`super::batch`]). Derived from the same kernel, so it is
    /// deliberately excluded from equality — the disassembly
    /// round-trip identity is about the instruction streams.
    pub batch: Option<super::batch::BatchPlan>,
}

impl PartialEq for KernelCode {
    fn eq(&self, other: &Self) -> bool {
        self.kernel == other.kernel
            && self.n_regs == other.n_regs
            && self.n_vars == other.n_vars
            && self.prelude == other.prelude
            && self.bounds == other.bounds
            && self.body == other.body
    }
}

impl KernelCode {
    /// Register slot of a program variable (identity mapping — kept as
    /// an accessor so the invariant is a checkable API).
    pub fn var_slot(&self, v: VarId) -> Reg {
        v.0 as Reg
    }
}

/// Static type lattice for specialization. `Unk` is ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    F,
    I,
    B,
    Unk,
}

fn merge_ty(a: Ty, b: Ty) -> Ty {
    if a == b {
        a
    } else {
        Ty::Unk
    }
}

fn ty_of_scalar(s: Scalar) -> Ty {
    match s {
        Scalar::F32 | Scalar::F64 => Ty::F,
        Scalar::I32 | Scalar::U32 => Ty::I,
        Scalar::Bool => Ty::B,
    }
}

struct Compiler<'a> {
    p: &'a Program,
    /// Element types of the kernel's local arrays (grouped bodies).
    locals_elem: Vec<Scalar>,
    n_vars: u16,
    /// Next free temp register (watermark allocator). Starts above the
    /// const/param pool once the pre-scan fixes the pool size.
    next: u16,
    max: u16,
    /// Const pool: (tag, bits) → prelude register. Tag 0 = F, 1 = I,
    /// 2 = B.
    consts: Vec<(u8, u64, Reg)>,
    param_regs: Vec<Option<Reg>>,
    prelude: Vec<Instr>,
    /// Static types of the program variables, updated in program order.
    vtypes: Vec<Ty>,
    /// Definitely-assigned variables, updated in program order.
    def: Vec<bool>,
}

impl<'a> Compiler<'a> {
    fn new(p: &'a Program, k: &Kernel) -> Compiler<'a> {
        let n_vars = u16::try_from(p.var_names.len()).expect("≤65536 variables");
        let locals_elem = match &k.body {
            KernelBody::Grouped(g) => g.locals.iter().map(|l| l.elem).collect(),
            KernelBody::Simple(_) => Vec::new(),
        };
        let mut c = Compiler {
            p,
            locals_elem,
            n_vars,
            next: n_vars,
            max: n_vars,
            consts: Vec::new(),
            param_regs: vec![None; p.params.len()],
            prelude: Vec::new(),
            vtypes: vec![Ty::Unk; p.var_names.len()],
            def: vec![false; p.var_names.len()],
        };
        // Pre-scan: pool every constant and parameter the kernel can
        // evaluate, so the pool/temp boundary is fixed before any code
        // is emitted and temps can never clobber a pooled value.
        for lp in &k.loops {
            c.prescan(&lp.lo);
            c.prescan(&lp.hi);
        }
        match &k.body {
            KernelBody::Simple(blk) => c.prescan_block(blk),
            KernelBody::Grouped(g) => {
                for phase in &g.phases {
                    c.prescan_block(phase);
                }
            }
        }
        if let Some(rr) = &k.region_reduction {
            c.prescan(&rr.value);
        }
        c
    }

    fn prescan_block(&mut self, b: &Block) {
        for s in &b.0 {
            match s {
                Stmt::Let { init, .. } => self.prescan(init),
                Stmt::Assign { value, .. } => self.prescan(value),
                Stmt::Store { index, value, .. } | Stmt::Atomic { index, value, .. } => {
                    self.prescan(index);
                    self.prescan(value);
                }
                Stmt::If {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    self.prescan(cond);
                    self.prescan_block(then_blk);
                    self.prescan_block(else_blk);
                }
                Stmt::For { lo, hi, body, .. } => {
                    self.prescan(lo);
                    self.prescan(hi);
                    self.prescan_block(body);
                }
                Stmt::Barrier => {}
            }
        }
    }

    fn prescan(&mut self, e: &Expr) {
        match e {
            Expr::FConst(v) => {
                self.const_reg(0, v.to_bits());
            }
            Expr::IConst(v) => {
                self.const_reg(1, *v as u64);
            }
            Expr::BConst(v) => {
                self.const_reg(2, *v as u64);
            }
            Expr::Param(id) => {
                self.param_reg(id.0 as u16);
            }
            Expr::Var(_) | Expr::Special(_) => {}
            Expr::Load { index, .. } => self.prescan(index),
            Expr::Un(_, a) | Expr::Cast(_, a) => self.prescan(a),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                self.prescan(a);
                self.prescan(b);
            }
            Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
                self.prescan(a);
                self.prescan(b);
                self.prescan(c);
            }
        }
    }

    fn alloc(&mut self) -> Reg {
        let r = self.next;
        self.next = self.next.checked_add(1).expect("≤65536 registers");
        self.max = self.max.max(self.next);
        r
    }

    /// Free all temps above `mark` and allocate the result register
    /// there (operands may alias the destination; instruction arms
    /// read before writing).
    fn retire(&mut self, mark: u16) -> Reg {
        self.next = mark;
        self.alloc()
    }

    fn const_reg(&mut self, tag: u8, bits: u64) -> Reg {
        if let Some((_, _, r)) = self.consts.iter().find(|(t, b, _)| *t == tag && *b == bits) {
            return *r;
        }
        let r = self.alloc();
        self.prelude.push(match tag {
            0 => Instr::ConstF { dst: r, bits },
            1 => Instr::ConstI {
                dst: r,
                v: bits as i64,
            },
            _ => Instr::ConstB {
                dst: r,
                v: bits != 0,
            },
        });
        self.consts.push((tag, bits, r));
        r
    }

    fn param_reg(&mut self, p: u16) -> Reg {
        if let Some(r) = self.param_regs[p as usize] {
            return r;
        }
        let r = self.alloc();
        self.prelude.push(Instr::Param { dst: r, p });
        self.param_regs[p as usize] = Some(r);
        r
    }

    /// Compile `e`, returning the register holding its value and its
    /// static type. Stable registers (vars, consts, params) are
    /// returned directly — the "hoisted operand resolution": inside a
    /// loop they are read in place, never re-materialized. Anything
    /// else lands in a temp at or above the caller's mark.
    fn expr(&mut self, e: &Expr, code: &mut Vec<Instr>) -> (Reg, Ty) {
        match e {
            Expr::FConst(v) => (self.const_reg(0, v.to_bits()), Ty::F),
            Expr::IConst(v) => (self.const_reg(1, *v as u64), Ty::I),
            Expr::BConst(v) => (self.const_reg(2, *v as u64), Ty::B),
            Expr::Param(id) => (
                self.param_reg(id.0 as u16),
                ty_of_scalar(self.p.params[id.0 as usize].ty),
            ),
            Expr::Var(id) => {
                if !self.def[id.0 as usize] {
                    // Not statically proven assigned: check at runtime,
                    // at the same evaluation step the tree-walker's
                    // `get_var` would panic.
                    code.push(Instr::CheckDef { var: id.0 as Reg });
                }
                (id.0 as Reg, self.vtypes[id.0 as usize])
            }
            Expr::Special(sv) => {
                let dst = self.alloc();
                let which = match sv {
                    SpecialVar::LocalId(_) => 0,
                    SpecialVar::GroupId(_) => 1,
                    SpecialVar::LocalSize(_) => 2,
                    SpecialVar::NumGroups(_) => 3,
                };
                code.push(Instr::Special { dst, which });
                (dst, Ty::I)
            }
            Expr::Load {
                space,
                array,
                index,
            } => {
                let mark = self.next;
                let (idx, _) = self.expr(index, code);
                let dst = self.retire(mark);
                code.push(Instr::Load {
                    space: *space,
                    array: array.0 as u16,
                    idx,
                    dst,
                });
                let elem = match space {
                    MemSpace::Global => self.p.arrays[array.0 as usize].elem,
                    MemSpace::Local => self.locals_elem[array.0 as usize],
                };
                let ty = match elem {
                    Scalar::F32 | Scalar::F64 => Ty::F,
                    Scalar::Bool => Ty::B,
                    _ => Ty::I,
                };
                (dst, ty)
            }
            Expr::Un(op, a) => {
                let mark = self.next;
                let (ra, ta) = self.expr(a, code);
                let dst = self.retire(mark);
                code.push(Instr::Un {
                    op: *op,
                    dst,
                    a: ra,
                });
                let ty = match op {
                    UnOp::Neg | UnOp::Abs => match ta {
                        Ty::I => Ty::I,
                        Ty::F | Ty::B => Ty::F,
                        Ty::Unk => Ty::Unk,
                    },
                    UnOp::Rcp | UnOp::Sqrt | UnOp::Exp => Ty::F,
                    UnOp::Not => Ty::B,
                };
                (dst, ty)
            }
            Expr::Bin(op, a, b) => {
                let mark = self.next;
                let (ra, ta) = self.expr(a, code);
                let (rb, tb) = self.expr(b, code);
                let dst = self.retire(mark);
                let arith = matches!(
                    op,
                    BinOp::Add
                        | BinOp::Sub
                        | BinOp::Mul
                        | BinOp::Div
                        | BinOp::Rem
                        | BinOp::Min
                        | BinOp::Max
                );
                let ins = if arith && ta == Ty::F && tb == Ty::F {
                    Instr::BinFF {
                        op: *op,
                        dst,
                        a: ra,
                        b: rb,
                    }
                } else if arith && ta == Ty::I && tb == Ty::I {
                    Instr::BinII {
                        op: *op,
                        dst,
                        a: ra,
                        b: rb,
                    }
                } else {
                    Instr::Bin {
                        op: *op,
                        dst,
                        a: ra,
                        b: rb,
                    }
                };
                code.push(ins);
                let ty = match op {
                    BinOp::And | BinOp::Or => Ty::B,
                    BinOp::Shl | BinOp::Shr => Ty::I,
                    _ => {
                        if ta == Ty::F || tb == Ty::F {
                            Ty::F
                        } else if matches!(ta, Ty::I | Ty::B) && matches!(tb, Ty::I | Ty::B) {
                            Ty::I
                        } else {
                            Ty::Unk
                        }
                    }
                };
                (dst, ty)
            }
            Expr::Cmp(op, a, b) => {
                let mark = self.next;
                let (ra, _) = self.expr(a, code);
                let (rb, _) = self.expr(b, code);
                let dst = self.retire(mark);
                code.push(Instr::Cmp {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                (dst, Ty::B)
            }
            Expr::Fma(a, b, c) => {
                let mark = self.next;
                let (ra, _) = self.expr(a, code);
                let (rb, _) = self.expr(b, code);
                let (rc, _) = self.expr(c, code);
                let dst = self.retire(mark);
                code.push(Instr::Fma {
                    dst,
                    a: ra,
                    b: rb,
                    c: rc,
                });
                (dst, Ty::F)
            }
            Expr::Select(c, a, b) => {
                // Lazy arms, like the tree-walker: only the taken arm's
                // side effects (loads, panics) happen.
                let mark = self.next;
                let (rc, _) = self.expr(c, code);
                // `rc` is consumed by the branch before either arm
                // executes, so the result slot may alias it.
                let dst = self.retire(mark);
                let jf = code.len();
                code.push(Instr::JumpIfFalse { cond: rc, to: 0 });
                let arm_mark = self.next;
                let ta = self.expr_into(a, dst, code);
                self.next = arm_mark;
                let je = code.len();
                code.push(Instr::Jump { to: 0 });
                let else_pc = code.len() as u32;
                let tb = self.expr_into(b, dst, code);
                self.next = arm_mark;
                let end_pc = code.len() as u32;
                code[jf] = Instr::JumpIfFalse {
                    cond: rc,
                    to: else_pc,
                };
                code[je] = Instr::Jump { to: end_pc };
                (dst, merge_ty(ta, tb))
            }
            Expr::Cast(ty, a) => {
                let mark = self.next;
                let (ra, _) = self.expr(a, code);
                let dst = self.retire(mark);
                code.push(Instr::Cast {
                    ty: *ty,
                    dst,
                    a: ra,
                });
                (dst, ty_of_scalar(*ty))
            }
        }
    }

    /// Compile `e` so the result lands in `dst` (a stable register the
    /// caller owns).
    fn expr_into(&mut self, e: &Expr, dst: Reg, code: &mut Vec<Instr>) -> Ty {
        let (r, ty) = self.expr(e, code);
        if r != dst {
            code.push(Instr::Copy { dst, src: r });
        }
        ty
    }

    fn block(&mut self, b: &Block, code: &mut Vec<Instr>) {
        for s in &b.0 {
            self.stmt(s, code);
        }
    }

    fn stmt(&mut self, s: &Stmt, code: &mut Vec<Instr>) {
        // One watchdog step per statement, at the same boundary the
        // tree-walker charges (before the statement executes; a For
        // charges once at entry, its body statements per iteration).
        code.push(Instr::Charge);
        match s {
            Stmt::Let { var, ty, init } => {
                let mark = self.next;
                let (r, _) = self.expr(init, code);
                code.push(Instr::LetVar {
                    ty: *ty,
                    var: var.0 as Reg,
                    src: r,
                });
                self.next = mark;
                self.vtypes[var.0 as usize] = ty_of_scalar(*ty);
                self.def[var.0 as usize] = true;
            }
            Stmt::Assign { var, value } => {
                let mark = self.next;
                let (r, ty) = self.expr(value, code);
                code.push(Instr::SetVar {
                    var: var.0 as Reg,
                    src: r,
                });
                self.next = mark;
                self.vtypes[var.0 as usize] = ty;
                self.def[var.0 as usize] = true;
            }
            Stmt::Store {
                space,
                array,
                index,
                value,
            } => {
                let mark = self.next;
                let (ri, _) = self.expr(index, code);
                let (rv, _) = self.expr(value, code);
                code.push(Instr::Store {
                    space: *space,
                    array: array.0 as u16,
                    idx: ri,
                    val: rv,
                });
                self.next = mark;
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let mark = self.next;
                let (rc, _) = self.expr(cond, code);
                let jf = code.len();
                code.push(Instr::JumpIfFalse { cond: rc, to: 0 });
                // The branch consumes `rc` before either arm runs.
                self.next = mark;
                let entry_ty = self.vtypes.clone();
                let entry_def = self.def.clone();
                self.block(then_blk, code);
                let then_ty = std::mem::replace(&mut self.vtypes, entry_ty);
                let then_def = std::mem::replace(&mut self.def, entry_def);
                let je = code.len();
                code.push(Instr::Jump { to: 0 });
                let else_pc = code.len() as u32;
                self.block(else_blk, code);
                let end_pc = code.len() as u32;
                code[jf] = Instr::JumpIfFalse {
                    cond: rc,
                    to: else_pc,
                };
                code[je] = Instr::Jump { to: end_pc };
                for (t, te) in self.vtypes.iter_mut().zip(&then_ty) {
                    *t = merge_ty(*t, *te);
                }
                // Defined after the If = defined on both paths.
                for (d, de) in self.def.iter_mut().zip(&then_def) {
                    *d = *d && *de;
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let mark = self.next;
                let (rlo, _) = self.expr(lo, code);
                let (rhi, _) = self.expr(hi, code);
                // The loop counter and normalized bound live across
                // the whole body: allocated above the bound temps and
                // only released at loop exit.
                let cnt = self.alloc();
                let hii = self.alloc();
                code.push(Instr::ToInt { dst: cnt, src: rlo });
                code.push(Instr::ToInt { dst: hii, src: rhi });
                let head = code.len() as u32;
                let fh = code.len();
                code.push(Instr::ForHead {
                    cnt,
                    hi: hii,
                    exit: 0,
                });
                code.push(Instr::SetVar {
                    var: var.0 as Reg,
                    src: cnt,
                });
                // Conservative typing: anything the body may assign is
                // unknown at its entry (later iterations feed back);
                // the loop variable itself is re-set to I every trip.
                // Definedness is monotone, so the entry def-state is
                // sound for every iteration without a fixpoint.
                let entry_ty = self.vtypes.clone();
                let entry_def = self.def.clone();
                let mut assigned = Vec::new();
                collect_assigned(body, &mut assigned);
                for v in &assigned {
                    self.vtypes[v.0 as usize] = Ty::Unk;
                }
                self.vtypes[var.0 as usize] = Ty::I;
                self.def[var.0 as usize] = true;
                self.block(body, code);
                code.push(Instr::ForStep {
                    cnt,
                    step: *step,
                    back: head,
                });
                let exit_pc = code.len() as u32;
                code[fh] = Instr::ForHead {
                    cnt,
                    hi: hii,
                    exit: exit_pc,
                };
                // Zero-trip loops leave the entry state intact, so
                // nothing the body assigned is proven after the loop.
                for (t, te) in self.vtypes.iter_mut().zip(&entry_ty) {
                    *t = merge_ty(*t, *te);
                }
                self.def = entry_def;
                self.next = mark;
            }
            Stmt::Barrier => {
                // Implicit between phases; a no-op within one (the
                // Charge above is the whole lowering).
            }
            Stmt::Atomic {
                op,
                array,
                index,
                value,
            } => {
                let mark = self.next;
                let (ri, _) = self.expr(index, code);
                let (rv, _) = self.expr(value, code);
                code.push(Instr::Atomic {
                    op: *op,
                    array: array.0 as u16,
                    idx: ri,
                    val: rv,
                });
                self.next = mark;
            }
        }
    }

    /// Compile a bounds/reduction expression as a standalone fragment.
    /// Fragments share the temp space above the pools.
    fn frag(&mut self, e: &Expr) -> ExprFrag {
        let mark = self.next;
        let mut code = Vec::new();
        let (out, _) = self.expr(e, &mut code);
        self.next = mark;
        ExprFrag {
            block: CodeBlock::new(code),
            out,
        }
    }
}

/// Variables a block may assign (Let, Assign, and inner loop vars).
pub(crate) fn collect_assigned(b: &Block, out: &mut Vec<VarId>) {
    b.walk(&mut |s| match s {
        Stmt::Let { var, .. } | Stmt::Assign { var, .. } | Stmt::For { var, .. } => {
            out.push(*var);
        }
        _ => {}
    });
}

/// Compile one kernel of `p` to bytecode.
pub fn compile_kernel(p: &Program, k: &Kernel) -> KernelCode {
    let mut c = Compiler::new(p, k);

    // Bounds fragments, in nest order. A level's bounds may read outer
    // loop variables (triangular nests), which the nest driver has set
    // by then — so each level's variable becomes "definitely assigned"
    // only after its own bounds are compiled.
    let mut bounds = Vec::with_capacity(k.loops.len());
    for lp in &k.loops {
        let lo = c.frag(&lp.lo);
        let hi = c.frag(&lp.hi);
        bounds.push(LoopBounds { lo, hi });
        c.vtypes[lp.var.0 as usize] = Ty::I;
        c.def[lp.var.0 as usize] = true;
    }

    let body = match &k.body {
        KernelBody::Simple(blk) => {
            let mut code = Vec::new();
            c.block(blk, &mut code);
            // The region reduction is evaluated in the body's exit
            // scope each iteration.
            let reduce = k.region_reduction.as_ref().map(|rr| c.frag(&rr.value));
            BodyCode::Simple {
                block: CodeBlock::new(code),
                reduce,
            }
        }
        KernelBody::Grouped(g) => {
            let mut phases = Vec::with_capacity(g.phases.len());
            for phase in &g.phases {
                // Each phase is compiled against an empty static
                // environment (only the group's loop variable is
                // proven): fidelity modes may skip earlier phases, so
                // nothing they assigned can be assumed. The runtime
                // per-thread defined bits carry the truth across
                // phases.
                let mut fresh_ty = vec![Ty::Unk; c.vtypes.len()];
                let mut fresh_def = vec![false; c.def.len()];
                fresh_ty[k.loops[0].var.0 as usize] = Ty::I;
                fresh_def[k.loops[0].var.0 as usize] = true;
                let saved_ty = std::mem::replace(&mut c.vtypes, fresh_ty);
                let saved_def = std::mem::replace(&mut c.def, fresh_def);
                let mut code = Vec::new();
                c.block(phase, &mut code);
                c.vtypes = saved_ty;
                c.def = saved_def;
                phases.push(CodeBlock::new(code));
            }
            BodyCode::Grouped { phases }
        }
    };

    KernelCode {
        kernel: k.name.clone(),
        n_regs: c.max,
        n_vars: c.n_vars,
        prelude: CodeBlock::new(c.prelude),
        bounds,
        body,
        batch: super::batch::build(p, k),
    }
}

/// Compile every kernel of a program, in launch-site order.
pub fn compile_program(p: &Program) -> Vec<KernelCode> {
    p.kernels().iter().map(|k| compile_kernel(p, k)).collect()
}
