//! Textual disassembly of [`KernelCode`] and the inverse parser.
//!
//! The format is line-based: `.`-prefixed section directives, one
//! instruction per line. It exists for debugging shrunk tier
//! counterexamples (`reproduce`'s conformance output names the kernel;
//! disassembling it shows exactly what the VM will run) and to state a
//! machine-checkable round-trip law: `parse(disassemble(c)) == c` for
//! every compiled kernel (see `crates/devsim/tests/bytecode_props.rs`).
//! Charge-stripped twin streams are *derived* (re-computed by
//! [`CodeBlock::new`] on parse), so the text carries only the full
//! streams.

use super::compile::{BodyCode, CodeBlock, ExprFrag, Instr, KernelCode, LoopBounds};
use paccport_ir::expr::{BinOp, CmpOp, UnOp};
use paccport_ir::kernel::ReduceOp;
use paccport_ir::types::{MemSpace, Scalar};
use std::fmt::Write as _;

fn un_op(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Abs => "abs",
        UnOp::Rcp => "rcp",
        UnOp::Sqrt => "sqrt",
        UnOp::Not => "not",
        UnOp::Exp => "exp",
    }
}

fn parse_un(s: &str) -> Option<UnOp> {
    Some(match s {
        "neg" => UnOp::Neg,
        "abs" => UnOp::Abs,
        "rcp" => UnOp::Rcp,
        "sqrt" => UnOp::Sqrt,
        "not" => UnOp::Not,
        "exp" => UnOp::Exp,
        _ => return None,
    })
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn parse_bin(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn cmp_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn parse_cmp(s: &str) -> Option<CmpOp> {
    Some(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return None,
    })
}

fn scalar(s: Scalar) -> &'static str {
    match s {
        Scalar::F32 => "f32",
        Scalar::F64 => "f64",
        Scalar::I32 => "i32",
        Scalar::U32 => "u32",
        Scalar::Bool => "bool",
    }
}

fn parse_scalar(s: &str) -> Option<Scalar> {
    Some(match s {
        "f32" => Scalar::F32,
        "f64" => Scalar::F64,
        "i32" => Scalar::I32,
        "u32" => Scalar::U32,
        "bool" => Scalar::Bool,
        _ => return None,
    })
}

fn space(s: MemSpace) -> &'static str {
    match s {
        MemSpace::Global => "g",
        MemSpace::Local => "l",
    }
}

fn parse_space(s: &str) -> Option<MemSpace> {
    Some(match s {
        "g" => MemSpace::Global,
        "l" => MemSpace::Local,
        _ => return None,
    })
}

fn red_op(op: ReduceOp) -> &'static str {
    match op {
        ReduceOp::Add => "add",
        ReduceOp::Max => "max",
        ReduceOp::Min => "min",
    }
}

fn parse_red(s: &str) -> Option<ReduceOp> {
    Some(match s {
        "add" => ReduceOp::Add,
        "max" => ReduceOp::Max,
        "min" => ReduceOp::Min,
        _ => return None,
    })
}

fn fmt_instr(out: &mut String, i: &Instr) {
    match *i {
        Instr::ConstF { dst, bits } => _ = writeln!(out, "constf {dst} {bits:#018x}"),
        Instr::ConstI { dst, v } => _ = writeln!(out, "consti {dst} {v}"),
        Instr::ConstB { dst, v } => _ = writeln!(out, "constb {dst} {}", v as u8),
        Instr::Param { dst, p } => _ = writeln!(out, "param {dst} {p}"),
        Instr::Copy { dst, src } => _ = writeln!(out, "copy {dst} {src}"),
        Instr::Special { dst, which } => _ = writeln!(out, "special {dst} {which}"),
        Instr::CheckDef { var } => _ = writeln!(out, "checkdef {var}"),
        Instr::Un { op, dst, a } => _ = writeln!(out, "un {} {dst} {a}", un_op(op)),
        Instr::Bin { op, dst, a, b } => _ = writeln!(out, "bin {} {dst} {a} {b}", bin_op(op)),
        Instr::BinFF { op, dst, a, b } => {
            _ = writeln!(out, "binff {} {dst} {a} {b}", bin_op(op));
        }
        Instr::BinII { op, dst, a, b } => {
            _ = writeln!(out, "binii {} {dst} {a} {b}", bin_op(op));
        }
        Instr::Cmp { op, dst, a, b } => _ = writeln!(out, "cmp {} {dst} {a} {b}", cmp_op(op)),
        Instr::Fma { dst, a, b, c } => _ = writeln!(out, "fma {dst} {a} {b} {c}"),
        Instr::Cast { ty, dst, a } => _ = writeln!(out, "cast {} {dst} {a}", scalar(ty)),
        Instr::LetVar { ty, var, src } => {
            _ = writeln!(out, "letvar {} {var} {src}", scalar(ty));
        }
        Instr::SetVar { var, src } => _ = writeln!(out, "setvar {var} {src}"),
        Instr::ToInt { dst, src } => _ = writeln!(out, "toint {dst} {src}"),
        Instr::Load {
            space: sp,
            array,
            idx,
            dst,
        } => _ = writeln!(out, "load {} {array} {idx} {dst}", space(sp)),
        Instr::Store {
            space: sp,
            array,
            idx,
            val,
        } => _ = writeln!(out, "store {} {array} {idx} {val}", space(sp)),
        Instr::Atomic {
            op,
            array,
            idx,
            val,
        } => _ = writeln!(out, "atomic {} {array} {idx} {val}", red_op(op)),
        Instr::Jump { to } => _ = writeln!(out, "jump {to}"),
        Instr::JumpIfFalse { cond, to } => _ = writeln!(out, "jumpf {cond} {to}"),
        Instr::ForHead { cnt, hi, exit } => _ = writeln!(out, "forhead {cnt} {hi} {exit}"),
        Instr::ForStep { cnt, step, back } => _ = writeln!(out, "forstep {cnt} {step} {back}"),
        Instr::Charge => _ = writeln!(out, "charge"),
    }
}

/// Render a compiled kernel as stable, diffable text.
pub fn disassemble(c: &KernelCode) -> String {
    let mut out = String::new();
    _ = writeln!(out, ".kernel {}", c.kernel);
    _ = writeln!(out, ".nregs {}", c.n_regs);
    _ = writeln!(out, ".nvars {}", c.n_vars);
    _ = writeln!(out, ".prelude");
    for i in &c.prelude.code {
        fmt_instr(&mut out, i);
    }
    for (d, b) in c.bounds.iter().enumerate() {
        _ = writeln!(out, ".bounds {d} lo {}", b.lo.out);
        for i in &b.lo.block.code {
            fmt_instr(&mut out, i);
        }
        _ = writeln!(out, ".bounds {d} hi {}", b.hi.out);
        for i in &b.hi.block.code {
            fmt_instr(&mut out, i);
        }
    }
    match &c.body {
        BodyCode::Simple { block, reduce } => {
            _ = writeln!(out, ".simple");
            for i in &block.code {
                fmt_instr(&mut out, i);
            }
            if let Some(r) = reduce {
                _ = writeln!(out, ".reduce {}", r.out);
                for i in &r.block.code {
                    fmt_instr(&mut out, i);
                }
            }
        }
        BodyCode::Grouped { phases } => {
            _ = writeln!(out, ".grouped {}", phases.len());
            for (pi, ph) in phases.iter().enumerate() {
                _ = writeln!(out, ".phase {pi}");
                for i in &ph.code {
                    fmt_instr(&mut out, i);
                }
            }
        }
    }
    out
}

fn parse_instr(line: &str) -> Result<Instr, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let err = || format!("bad instruction: {line:?}");
    let int = |s: &str| -> Result<i64, String> { s.parse().map_err(|_| err()) };
    let reg = |s: &str| -> Result<u16, String> { s.parse().map_err(|_| err()) };
    let pc = |s: &str| -> Result<u32, String> { s.parse().map_err(|_| err()) };
    let t = |i: usize| -> Result<&str, String> { toks.get(i).copied().ok_or_else(err) };
    Ok(match *toks.first().ok_or_else(err)? {
        "constf" => {
            let bits = t(2)?
                .strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .ok_or_else(err)?;
            Instr::ConstF {
                dst: reg(t(1)?)?,
                bits,
            }
        }
        "consti" => Instr::ConstI {
            dst: reg(t(1)?)?,
            v: int(t(2)?)?,
        },
        "constb" => Instr::ConstB {
            dst: reg(t(1)?)?,
            v: int(t(2)?)? != 0,
        },
        "param" => Instr::Param {
            dst: reg(t(1)?)?,
            p: reg(t(2)?)?,
        },
        "copy" => Instr::Copy {
            dst: reg(t(1)?)?,
            src: reg(t(2)?)?,
        },
        "special" => Instr::Special {
            dst: reg(t(1)?)?,
            which: int(t(2)?)? as u8,
        },
        "checkdef" => Instr::CheckDef { var: reg(t(1)?)? },
        "un" => Instr::Un {
            op: parse_un(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
        },
        "bin" => Instr::Bin {
            op: parse_bin(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
            b: reg(t(4)?)?,
        },
        "binff" => Instr::BinFF {
            op: parse_bin(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
            b: reg(t(4)?)?,
        },
        "binii" => Instr::BinII {
            op: parse_bin(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
            b: reg(t(4)?)?,
        },
        "cmp" => Instr::Cmp {
            op: parse_cmp(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
            b: reg(t(4)?)?,
        },
        "fma" => Instr::Fma {
            dst: reg(t(1)?)?,
            a: reg(t(2)?)?,
            b: reg(t(3)?)?,
            c: reg(t(4)?)?,
        },
        "cast" => Instr::Cast {
            ty: parse_scalar(t(1)?).ok_or_else(err)?,
            dst: reg(t(2)?)?,
            a: reg(t(3)?)?,
        },
        "letvar" => Instr::LetVar {
            ty: parse_scalar(t(1)?).ok_or_else(err)?,
            var: reg(t(2)?)?,
            src: reg(t(3)?)?,
        },
        "setvar" => Instr::SetVar {
            var: reg(t(1)?)?,
            src: reg(t(2)?)?,
        },
        "toint" => Instr::ToInt {
            dst: reg(t(1)?)?,
            src: reg(t(2)?)?,
        },
        "load" => Instr::Load {
            space: parse_space(t(1)?).ok_or_else(err)?,
            array: reg(t(2)?)?,
            idx: reg(t(3)?)?,
            dst: reg(t(4)?)?,
        },
        "store" => Instr::Store {
            space: parse_space(t(1)?).ok_or_else(err)?,
            array: reg(t(2)?)?,
            idx: reg(t(3)?)?,
            val: reg(t(4)?)?,
        },
        "atomic" => Instr::Atomic {
            op: parse_red(t(1)?).ok_or_else(err)?,
            array: reg(t(2)?)?,
            idx: reg(t(3)?)?,
            val: reg(t(4)?)?,
        },
        "jump" => Instr::Jump { to: pc(t(1)?)? },
        "jumpf" => Instr::JumpIfFalse {
            cond: reg(t(1)?)?,
            to: pc(t(2)?)?,
        },
        "forhead" => Instr::ForHead {
            cnt: reg(t(1)?)?,
            hi: reg(t(2)?)?,
            exit: pc(t(3)?)?,
        },
        "forstep" => Instr::ForStep {
            cnt: reg(t(1)?)?,
            step: int(t(2)?)?,
            back: pc(t(3)?)?,
        },
        "charge" => Instr::Charge,
        _ => return Err(err()),
    })
}

/// Which section of the disassembly the parser is inside.
enum Sect {
    None,
    Prelude,
    BoundsLo(usize),
    BoundsHi(usize),
    Simple,
    Reduce,
    Phase(usize),
}

/// Parse a disassembly back into a [`KernelCode`]. Stripped streams
/// are re-derived, so `parse(disassemble(c)) == c`.
pub fn parse(text: &str) -> Result<KernelCode, String> {
    let mut kernel: Option<String> = None;
    let mut n_regs: Option<u16> = None;
    let mut n_vars: Option<u16> = None;
    let mut prelude: Vec<Instr> = Vec::new();
    // (lo_out, lo_code, hi_out, hi_code) per nest level.
    let mut bounds: Vec<(u16, Vec<Instr>, u16, Vec<Instr>)> = Vec::new();
    let mut simple: Option<Vec<Instr>> = None;
    let mut reduce: Option<(u16, Vec<Instr>)> = None;
    let mut phases: Option<Vec<Vec<Instr>>> = None;
    let mut sect = Sect::None;

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            match *toks.first().unwrap_or(&"") {
                "kernel" => {
                    kernel = Some(rest.strip_prefix("kernel").unwrap_or("").trim().to_string());
                }
                "nregs" => {
                    n_regs = Some(
                        toks.get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad .nregs")?,
                    );
                }
                "nvars" => {
                    n_vars = Some(
                        toks.get(1)
                            .and_then(|s| s.parse().ok())
                            .ok_or("bad .nvars")?,
                    );
                }
                "prelude" => sect = Sect::Prelude,
                "bounds" => {
                    let d: usize = toks
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad .bounds depth")?;
                    let out: u16 = toks
                        .get(3)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad .bounds out")?;
                    match toks.get(2).copied() {
                        Some("lo") => {
                            if d != bounds.len() {
                                return Err(format!("out-of-order .bounds {d} lo"));
                            }
                            bounds.push((out, Vec::new(), 0, Vec::new()));
                            sect = Sect::BoundsLo(d);
                        }
                        Some("hi") => {
                            let slot = bounds
                                .get_mut(d)
                                .ok_or(format!(".bounds {d} hi before lo"))?;
                            slot.2 = out;
                            sect = Sect::BoundsHi(d);
                        }
                        _ => return Err(format!("bad .bounds line: {line:?}")),
                    }
                }
                "simple" => {
                    simple = Some(Vec::new());
                    sect = Sect::Simple;
                }
                "reduce" => {
                    let out: u16 = toks
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad .reduce out")?;
                    reduce = Some((out, Vec::new()));
                    sect = Sect::Reduce;
                }
                "grouped" => {
                    let n: usize = toks
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad .grouped count")?;
                    phases = Some(Vec::with_capacity(n));
                    sect = Sect::None;
                }
                "phase" => {
                    let pi: usize = toks
                        .get(1)
                        .and_then(|s| s.parse().ok())
                        .ok_or("bad .phase index")?;
                    let ps = phases.as_mut().ok_or(".phase before .grouped")?;
                    if pi != ps.len() {
                        return Err(format!("out-of-order .phase {pi}"));
                    }
                    ps.push(Vec::new());
                    sect = Sect::Phase(pi);
                }
                other => return Err(format!("unknown directive .{other}")),
            }
            continue;
        }
        let ins = parse_instr(line)?;
        match sect {
            Sect::None => return Err(format!("instruction outside a section: {line:?}")),
            Sect::Prelude => prelude.push(ins),
            Sect::BoundsLo(d) => bounds[d].1.push(ins),
            Sect::BoundsHi(d) => bounds[d].3.push(ins),
            Sect::Simple => simple.as_mut().unwrap().push(ins),
            Sect::Reduce => reduce.as_mut().unwrap().1.push(ins),
            Sect::Phase(pi) => phases.as_mut().unwrap()[pi].push(ins),
        }
    }

    let body = match (simple, phases) {
        (Some(block), None) => BodyCode::Simple {
            block: CodeBlock::new(block),
            reduce: reduce.map(|(out, code)| ExprFrag {
                block: CodeBlock::new(code),
                out,
            }),
        },
        (None, Some(ps)) => BodyCode::Grouped {
            phases: ps.into_iter().map(CodeBlock::new).collect(),
        },
        _ => return Err("expected exactly one of .simple / .grouped".into()),
    };
    Ok(KernelCode {
        kernel: kernel.ok_or("missing .kernel")?,
        n_regs: n_regs.ok_or("missing .nregs")?,
        n_vars: n_vars.ok_or("missing .nvars")?,
        prelude: CodeBlock::new(prelude),
        bounds: bounds
            .into_iter()
            .map(|(lo_out, lo_code, hi_out, hi_code)| LoopBounds {
                lo: ExprFrag {
                    block: CodeBlock::new(lo_code),
                    out: lo_out,
                },
                hi: ExprFrag {
                    block: CodeBlock::new(hi_code),
                    out: hi_out,
                },
            })
            .collect(),
        body,
        // The batch plan is a derived artifact, not part of the
        // textual format; equality ignores it.
        batch: None,
    })
}
