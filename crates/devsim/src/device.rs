//! Analytic device models of the paper's test bed: the π
//! supercomputer's GPU node (2× NVIDIA Kepler K40 + Sandy Bridge
//! E5-2670) and MIC node (2× Intel Xeon Phi 5110P).
//!
//! The model is a roofline with a parallelism ramp: a kernel launch
//! costs `max(compute, memory) + launch overhead`, where compute
//! throughput rises with resident threads until the core array
//! saturates, and memory bandwidth ramps up with concurrency and then
//! degrades gently under oversubscription. The constants below are
//! derived from the devices' public specifications plus a small number
//! of calibration choices documented next to each field; the *shapes*
//! of the paper's results (who wins, crossovers, the ~1000× sequential
//! gap, the MIC-vs-GPU PPR band) are reproduced by construction of the
//! mechanism, not by fitting each figure.

use paccport_compilers::{DeviceKind, HostCompiler};
use serde::{Deserialize, Serialize};

/// What the device schedules independently.
///
/// GPUs schedule *threads* (warps of them); Knights Corner's OpenCL
/// runtime of the era mapped one *work-group* to one core thread,
/// serializing (or weakly vectorizing) the work-items inside — which
/// is why a 16-iteration kernel distributed as a single work-group
/// crawled on the MIC however many workers it requested, and why the
/// paper's best MIC distribution is `(gang 240, worker 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelUnit {
    Threads,
    WorkGroups,
}

/// An accelerator (or host) performance description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    pub name: String,
    pub kind: DeviceKind,
    /// Peak instruction issue rate with full occupancy (instr/s).
    pub peak_ips: f64,
    /// Effective per-thread issue rate when latency is exposed
    /// (instr/s) — what a single sequential thread achieves.
    pub single_thread_ips: f64,
    /// Maximum concurrently resident threads (K40: 15 SMX × 2048;
    /// 5110P: 60 cores × 4 hyperthreads).
    pub max_concurrent_threads: u64,
    /// Scheduling granularity (see [`ParallelUnit`]).
    pub parallel_unit: ParallelUnit,
    /// SIMD/warp width used for intra-block utilization.
    pub warp_width: u32,
    /// Achievable global-memory bandwidth (bytes/s).
    pub mem_bw: f64,
    /// Threads needed to saturate the memory system.
    pub mem_sat_threads: f64,
    /// Oversubscription exponent: beyond saturation, effective
    /// bandwidth scales by `(sat/threads)^exp`.
    pub contention_exp: f64,
    /// Host→device link bandwidth (bytes/s) and per-transfer latency.
    pub link_bw: f64,
    pub link_latency_s: f64,
    /// Fixed kernel-launch overhead (s).
    pub launch_overhead_s: f64,
}

/// NVIDIA Kepler K40 (GK110B): 15 SMX × 192 cores @ 745 MHz,
/// 288 GB/s GDDR5, PCIe gen3.
pub fn k40() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA Tesla K40".into(),
        kind: DeviceKind::GpuK40,
        // 2880 cores × 0.745 GHz — instruction issue ceiling.
        peak_ips: 2880.0 * 0.745e9,
        // A lone in-order GPU thread with exposed latency:
        // ~clock / (pipeline latency ≈ 3).
        single_thread_ips: 0.25e9,
        max_concurrent_threads: 15 * 2048,
        parallel_unit: ParallelUnit::Threads,
        warp_width: 32,
        // ~65% of the 288 GB/s nominal.
        mem_bw: 190.0e9,
        mem_sat_threads: 4096.0,
        contention_exp: 0.07,
        // PCIe gen3 x16 effective.
        link_bw: 6.0e9,
        link_latency_s: 12.0e-6,
        launch_overhead_s: 8.0e-6,
    }
}

/// Intel Xeon Phi 5110P (Knights Corner): 60 cores × 4 threads @
/// 1.053 GHz, 320 GB/s GDDR5 (much less achievable), 512-bit SIMD.
pub fn phi5110p() -> DeviceSpec {
    DeviceSpec {
        name: "Intel Xeon Phi 5110P".into(),
        kind: DeviceKind::Mic5110P,
        // 240 hardware threads; OpenCL on KNC vectorized poorly in
        // this era, so the effective peak is far below the SIMD peak.
        peak_ips: 240.0 * 0.9e9,
        // An in-order Pentium-class core, but a *full core* per
        // thread: much faster than one GPU lane.
        single_thread_ips: 0.8e9,
        max_concurrent_threads: 240,
        parallel_unit: ParallelUnit::WorkGroups,
        warp_width: 16,
        mem_bw: 140.0e9,
        mem_sat_threads: 60.0,
        contention_exp: 0.07,
        link_bw: 5.0e9,
        link_latency_s: 20.0e-6,
        launch_overhead_s: 15.0e-6,
    }
}

/// An AMD FirePro-class GPU (S9150 era: 2816 stream processors @
/// 900 MHz, 320 GB/s, 64-wide wavefronts). CAPS reaches it through the
/// OpenCL back end; it exists here to exercise the OpenACC 2.0
/// `device_type` clause (Section II-B).
pub fn amd_firepro() -> DeviceSpec {
    DeviceSpec {
        name: "AMD FirePro S9150".into(),
        kind: DeviceKind::AmdGpu,
        peak_ips: 2816.0 * 0.9e9,
        single_thread_ips: 0.2e9,
        max_concurrent_threads: 44 * 2560,
        parallel_unit: ParallelUnit::Threads,
        // GCN wavefronts are 64 wide — the key scheduling difference
        // the device_type clause exists to absorb.
        warp_width: 64,
        mem_bw: 210.0e9,
        mem_sat_threads: 8192.0,
        contention_exp: 0.07,
        link_bw: 6.0e9,
        link_latency_s: 12.0e-6,
        launch_overhead_s: 10.0e-6,
    }
}

/// The Sandy Bridge host (E5-2670 @ 2.6 GHz), running host-fallback
/// kernels and the host portions of Hydro. The Intel compiler's
/// vectorizer gives it a measurable edge over GCC (Figure 15).
pub fn host_cpu(hc: HostCompiler) -> DeviceSpec {
    let ips = match hc {
        HostCompiler::Gcc => 1.5e9,
        HostCompiler::Intel => 2.4e9,
    };
    DeviceSpec {
        name: format!(
            "Intel Xeon E5-2670 ({})",
            match hc {
                HostCompiler::Gcc => "GCC",
                HostCompiler::Intel => "ICC",
            }
        ),
        kind: DeviceKind::HostCpu,
        peak_ips: ips,
        single_thread_ips: ips,
        max_concurrent_threads: 1,
        parallel_unit: ParallelUnit::Threads,
        warp_width: 1,
        mem_bw: 20.0e9,
        mem_sat_threads: 1.0,
        contention_exp: 0.0,
        link_bw: f64::INFINITY,
        link_latency_s: 0.0,
        launch_overhead_s: 0.0,
    }
}

/// Look up the spec for a target device.
pub fn spec_for(kind: DeviceKind, hc: HostCompiler) -> DeviceSpec {
    match kind {
        DeviceKind::GpuK40 => k40(),
        DeviceKind::AmdGpu => amd_firepro(),
        DeviceKind::Mic5110P => phi5110p(),
        DeviceKind::HostCpu => host_cpu(hc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_has_lower_single_thread_than_mic() {
        // The premise behind sequential BFS/BP baselines running
        // faster on MIC than GPU (Sections V-C1, V-D1).
        assert!(phi5110p().single_thread_ips > k40().single_thread_ips * 3.0);
    }

    #[test]
    fn gpu_peak_dwarfs_mic_peak() {
        // All PPR values in Fig. 16 are > 1 (K40 beats 5110P).
        let r = k40().peak_ips / phi5110p().peak_ips;
        assert!(r > 5.0 && r < 20.0, "peak ratio {r}");
    }

    #[test]
    fn icc_beats_gcc_on_host() {
        assert!(
            host_cpu(HostCompiler::Intel).single_thread_ips
                > host_cpu(HostCompiler::Gcc).single_thread_ips
        );
    }

    #[test]
    fn spec_lookup_matches_kind() {
        assert_eq!(
            spec_for(DeviceKind::GpuK40, HostCompiler::Gcc).kind,
            DeviceKind::GpuK40
        );
        assert_eq!(
            spec_for(DeviceKind::Mic5110P, HostCompiler::Gcc).kind,
            DeviceKind::Mic5110P
        );
    }
}
