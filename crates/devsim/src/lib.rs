//! # paccport-devsim — simulated K40-class GPU and Xeon-Phi-class MIC
//!
//! The paper measures on hardware that has long since left the
//! building (π's K40 GPU node and 5110P MIC node). This crate stands
//! in for that test bed with two cooperating layers:
//!
//! 1. a **functional interpreter** ([`interp`]) that actually executes
//!    every compiled kernel against typed buffers, so each benchmark
//!    variant's *results* are validated against a native Rust
//!    reference — including the deliberately wrong results of the
//!    CAPS-reduction-on-MIC bug;
//! 2. an **analytic timing model** ([`device`], [`timing`],
//!    [`dyncost`]) — a roofline with parallelism ramps, warp
//!    utilization and mild bandwidth contention — fed by dynamic
//!    instruction mixes derived from the same lowering pass that
//!    produced the static PTX counts.
//!
//! The [`runner`] walks a compiled program's host control flow,
//! accounting for every host↔device transfer (Table VII), every
//! kernel launch (and whether it *actually* ran on the device — the
//! paper's nvprof/`PGI_ACC_TIME` discovery on BFS), and the modeled
//! elapsed time that the figures plot. [`heatmap`] sweeps thread
//! distributions for Figure 4.
//!
//! ```
//! use paccport_compilers::{compile, CompileOptions, CompilerId};
//! use paccport_devsim::{run, Buffer, RunConfig};
//! use paccport_ir::*;
//!
//! let mut b = ProgramBuilder::new("double");
//! let n = b.iparam("n");
//! let a = b.array("a", Scalar::F32, n, Intent::InOut);
//! let i = b.var("i");
//! let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
//! lp.clauses.independent = true;
//! let k = Kernel::simple("double", vec![lp],
//!     Block::new(vec![st(a, i, ld(a, i) * 2.0)]));
//! let program = b.finish(vec![HostStmt::Launch(k)]);
//!
//! let compiled = compile(CompilerId::Caps, &program, &CompileOptions::gpu()).unwrap();
//! let cfg = RunConfig::functional(vec![("n".into(), 8.0)])
//!     .with_input("a", Buffer::F32(vec![1.0; 8]));
//! let result = run(&compiled, &cfg).unwrap();
//! assert!(result.buffer(&compiled, "a").unwrap().as_f32().iter().all(|v| *v == 2.0));
//! assert!(result.elapsed > 0.0);
//! ```

pub mod bytecode;
pub mod device;
pub mod dyncost;
pub mod heatmap;
pub mod interp;
pub mod memory;
pub mod profile;
pub mod race;
pub mod runner;
pub mod tier;
pub mod timing;

pub use bytecode::{compile_kernel, exec_kernel_bc, exec_kernel_tiered, KernelCode};
pub use device::{amd_firepro, host_cpu, k40, phi5110p, spec_for, DeviceSpec, ParallelUnit};
pub use dyncost::{kernel_dyn_cost, CostHints, DynCost};
pub use heatmap::{sweep, HeatMap};
pub use interp::{exec_kernel, exec_kernel_traced, fresh_vars, KernelFidelity, V};
pub use memory::{Buffer, MemLoc, TransferLedger};
pub use profile::render_profile;
pub use race::{Race, RaceKind, RaceTracker, ThreadId};
pub use runner::{run, Fidelity, KernelStat, RunConfig, RunResult};
pub use tier::{default_tier, set_default_tier, ExecTier};
pub use timing::{bw_fraction, compute_rate, kernel_launch_time, transfer_time, warp_efficiency};
