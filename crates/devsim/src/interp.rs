//! Functional interpreter for the directive IR.
//!
//! This is what makes the reproduction *checkable*: every benchmark
//! variant — baseline, gridified, unrolled, tiled, reduction-lowered —
//! is executed for real on the simulated device memory and compared
//! element-wise against a native Rust reference implementation. The
//! timing model (see [`crate::timing`]) never has to be trusted about
//! semantics.
//!
//! Execution is sequential and deterministic. Parallel *scheduling*
//! never changes results for the kernels in this study (data-parallel
//! loops, tree reductions with fixed shape), with one deliberate
//! exception: the CAPS-reduction-on-MIC miscompilation, reproduced by
//! dropping the tree-combine phases (a lost-update race), which is
//! exactly the class of bug the paper reports.

use crate::memory::{Buffer, MemLoc};
use crate::race::{RaceTracker, ThreadId};
use paccport_ir::expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{MemSpace, Scalar};
use paccport_ir::Program;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum V {
    I(i64),
    F(f64),
    B(bool),
}

impl V {
    pub fn as_f(self) -> f64 {
        match self {
            V::I(v) => v as f64,
            V::F(v) => v,
            V::B(v) => v as i64 as f64,
        }
    }

    pub fn as_i(self) -> i64 {
        match self {
            V::I(v) => v,
            V::F(v) => v as i64,
            V::B(v) => v as i64,
        }
    }

    pub fn as_b(self) -> bool {
        match self {
            V::I(v) => v != 0,
            V::F(v) => v != 0.0,
            V::B(v) => v,
        }
    }

    pub(crate) fn is_float(self) -> bool {
        matches!(self, V::F(_))
    }
}

/// Values of the work-group builtins for one simulated thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupCtx {
    pub local_id: i64,
    pub group_id: i64,
    pub local_size: i64,
    pub num_groups: i64,
}

/// Everything an expression evaluation can touch.
pub struct Scope<'a> {
    /// Scalar variables, indexed by `VarId`. A flat slice — one
    /// bounds-checked index per access, no `Vec` header indirection.
    pub vars: &'a mut [Option<V>],
    /// Global (device or host, depending on caller) arrays.
    pub bufs: &'a mut [Buffer],
    /// Work-group local arrays (grouped kernels only).
    pub locals: Option<&'a mut Vec<Buffer>>,
    pub group: GroupCtx,
    /// Shadow access log for dynamic race detection (`None` = off).
    pub tracker: Option<&'a RaceTracker>,
}

impl<'a> Scope<'a> {
    /// The location a `(space, array)` access resolves to for the race
    /// detector: local arrays are per-group instances.
    fn mem_loc(&self, space: MemSpace, array: u32, index: i64) -> MemLoc {
        match space {
            MemSpace::Global => MemLoc::global(array, index),
            MemSpace::Local => MemLoc::local(array, self.group.group_id, index),
        }
    }
}

impl Scope<'_> {
    fn get_var(&self, id: paccport_ir::VarId) -> V {
        self.vars[id.0 as usize].unwrap_or_else(|| panic!("read of undefined variable v{}", id.0))
    }

    fn set_var(&mut self, id: paccport_ir::VarId, v: V) {
        let slot = &mut self.vars[id.0 as usize];
        *slot = Some(v);
    }
}

/// Evaluate an expression. (`p` is threaded for future array-typed
/// features and API symmetry with [`exec_block`].)
#[allow(clippy::only_used_in_recursion)]
pub fn eval(p: &Program, params: &[V], e: &Expr, s: &Scope<'_>) -> V {
    match e {
        Expr::FConst(v) => V::F(*v),
        Expr::IConst(v) => V::I(*v),
        Expr::BConst(v) => V::B(*v),
        Expr::Param(id) => params[id.0 as usize],
        Expr::Var(id) => s.get_var(*id),
        Expr::Special(sv) => V::I(match sv {
            SpecialVar::LocalId(_) => s.group.local_id,
            SpecialVar::GroupId(_) => s.group.group_id,
            SpecialVar::LocalSize(_) => s.group.local_size,
            SpecialVar::NumGroups(_) => s.group.num_groups,
        }),
        Expr::Load {
            space,
            array,
            index,
        } => {
            let i = eval(p, params, index, s).as_i();
            if let Some(t) = s.tracker {
                t.log_read(s.mem_loc(*space, array.0, i));
            }
            let buf = match space {
                MemSpace::Global => &s.bufs[array.0 as usize],
                MemSpace::Local => {
                    &s.locals.as_ref().expect("local access outside group")[array.0 as usize]
                }
            };
            assert!(
                (i as usize) < buf.len(),
                "index {i} out of bounds for array of length {} ({:?})",
                buf.len(),
                space
            );
            match buf.elem() {
                Scalar::F32 | Scalar::F64 => V::F(buf.get(i as usize)),
                Scalar::Bool => V::B(buf.get(i as usize) != 0.0),
                _ => V::I(buf.get(i as usize) as i64),
            }
        }
        Expr::Un(op, a) => {
            let va = eval(p, params, a, s);
            match op {
                UnOp::Neg => match va {
                    V::I(v) => V::I(-v),
                    other => V::F(-other.as_f()),
                },
                UnOp::Abs => match va {
                    V::I(v) => V::I(v.abs()),
                    other => V::F(other.as_f().abs()),
                },
                UnOp::Rcp => V::F(1.0 / va.as_f()),
                UnOp::Sqrt => V::F(va.as_f().sqrt()),
                UnOp::Not => V::B(!va.as_b()),
                UnOp::Exp => V::F(va.as_f().exp()),
            }
        }
        Expr::Bin(op, a, b) => {
            let va = eval(p, params, a, s);
            let vb = eval(p, params, b, s);
            bin(*op, va, vb)
        }
        Expr::Cmp(op, a, b) => {
            let va = eval(p, params, a, s);
            let vb = eval(p, params, b, s);
            V::B(cmp(*op, va, vb))
        }
        Expr::Fma(a, b, c) => {
            let va = eval(p, params, a, s).as_f();
            let vb = eval(p, params, b, s).as_f();
            let vc = eval(p, params, c, s).as_f();
            // f32 semantics, like the devices' fma.f32.
            V::F(((va as f32).mul_add(vb as f32, vc as f32)) as f64)
        }
        Expr::Select(c, a, b) => {
            if eval(p, params, c, s).as_b() {
                eval(p, params, a, s)
            } else {
                eval(p, params, b, s)
            }
        }
        Expr::Cast(ty, a) => {
            let v = eval(p, params, a, s);
            match ty {
                Scalar::F32 => V::F(v.as_f() as f32 as f64),
                Scalar::F64 => V::F(v.as_f()),
                Scalar::I32 => V::I(v.as_i() as i32 as i64),
                Scalar::U32 => V::I(v.as_i() as u32 as i64),
                Scalar::Bool => V::B(v.as_b()),
            }
        }
    }
}

/// Shared by the tree-walker and the bytecode VM (`crate::bytecode`):
/// both tiers funnel every binary operation through this one function,
/// so their f32-narrowed arithmetic is bit-identical by construction.
pub(crate) fn bin(op: BinOp, a: V, b: V) -> V {
    use BinOp::*;
    let float = a.is_float() || b.is_float();
    match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            if float {
                // f32 arithmetic, matching the devices.
                let x = a.as_f() as f32;
                let y = b.as_f() as f32;
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Rem => x % y,
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                };
                V::F(r as f64)
            } else {
                let x = a.as_i();
                let y = b.as_i();
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        assert!(y != 0, "integer division by zero");
                        x / y
                    }
                    Rem => {
                        assert!(y != 0, "integer remainder by zero");
                        x % y
                    }
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                };
                V::I(r)
            }
        }
        And => V::B(a.as_b() && b.as_b()),
        Or => V::B(a.as_b() || b.as_b()),
        Shl => V::I(a.as_i() << b.as_i()),
        Shr => V::I(a.as_i() >> b.as_i()),
    }
}

pub(crate) fn cmp(op: CmpOp, a: V, b: V) -> bool {
    let float = a.is_float() || b.is_float();
    if float {
        let x = a.as_f();
        let y = b.as_f();
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let x = a.as_i();
        let y = b.as_i();
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
}

/// Execute a statement block.
pub fn exec_block(p: &Program, params: &[V], b: &Block, s: &mut Scope<'_>) {
    for stmt in &b.0 {
        exec_stmt(p, params, stmt, s);
    }
}

fn exec_stmt(p: &Program, params: &[V], stmt: &Stmt, s: &mut Scope<'_>) {
    // One watchdog step per interpreted statement: a runaway loop
    // exhausts the armed budget and unwinds as a typed timeout
    // (caught in `runner::run`) instead of hanging the worker.
    paccport_faults::charge(1);
    match stmt {
        Stmt::Let { var, ty, init } => {
            let v = eval(p, params, init, s);
            let v = coerce(v, *ty);
            s.set_var(*var, v);
        }
        Stmt::Assign { var, value } => {
            let v = eval(p, params, value, s);
            s.set_var(*var, v);
        }
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => {
            let i = eval(p, params, index, s).as_i();
            let v = eval(p, params, value, s).as_f();
            if let Some(t) = s.tracker {
                t.log_write(s.mem_loc(*space, array.0, i), false);
            }
            let buf = match space {
                MemSpace::Global => &mut s.bufs[array.0 as usize],
                MemSpace::Local => {
                    &mut s.locals.as_mut().expect("local store outside group")[array.0 as usize]
                }
            };
            assert!(
                (i as usize) < buf.len(),
                "store index {i} out of bounds for array of length {}",
                buf.len()
            );
            buf.set(i as usize, v);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            if eval(p, params, cond, s).as_b() {
                exec_block(p, params, then_blk, s);
            } else {
                exec_block(p, params, else_blk, s);
            }
        }
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => {
            let lo = eval(p, params, lo, s).as_i();
            let hi = eval(p, params, hi, s).as_i();
            let mut i = lo;
            while i < hi {
                s.set_var(*var, V::I(i));
                exec_block(p, params, body, s);
                i += step;
            }
        }
        Stmt::Barrier => {
            // Barriers are implicit between grouped phases; a Barrier
            // statement inside a phase is a no-op under sequential
            // per-thread execution in phase order.
        }
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => {
            // Sequential interpretation makes the read-modify-write
            // trivially atomic.
            let i = eval(p, params, index, s).as_i() as usize;
            let v = eval(p, params, value, s).as_f();
            if let Some(t) = s.tracker {
                t.log_write(s.mem_loc(MemSpace::Global, array.0, i as i64), true);
            }
            let buf = &mut s.bufs[array.0 as usize];
            let old = buf.get(i);
            buf.set(i, op.combine(old, v));
        }
    }
}

pub(crate) fn coerce(v: V, ty: Scalar) -> V {
    match ty {
        Scalar::F32 => V::F(v.as_f() as f32 as f64),
        Scalar::F64 => V::F(v.as_f()),
        Scalar::I32 | Scalar::U32 => V::I(v.as_i()),
        Scalar::Bool => V::B(v.as_b()),
    }
}

/// How faithfully to execute a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelFidelity {
    /// Execute exactly as written.
    Exact,
    /// Reproduce the CAPS-reduction-on-MIC bug: grouped kernels skip
    /// the tree-combine phases, losing every lane's partial except
    /// lane 0's.
    DropTreePhases,
}

/// Execute one kernel over its full iteration space against `bufs`.
///
/// `vars` is the reusable scalar environment (length =
/// `program.var_names.len()`); host-loop variables already bound in it
/// are visible to the kernel (triangular bounds).
pub fn exec_kernel(
    p: &Program,
    params: &[V],
    k: &Kernel,
    vars: &mut [Option<V>],
    bufs: &mut [Buffer],
    fidelity: KernelFidelity,
) {
    exec_kernel_traced(p, params, k, vars, bufs, fidelity, None)
}

/// [`exec_kernel`] with an optional shadow access log: every global
/// and local memory access inside the parallel region is recorded
/// against the logical thread performing it (iteration vector or
/// group/lane), so the tracker can flag cross-thread conflicts.
pub fn exec_kernel_traced(
    p: &Program,
    params: &[V],
    k: &Kernel,
    vars: &mut [Option<V>],
    bufs: &mut [Buffer],
    fidelity: KernelFidelity,
    tracker: Option<&RaceTracker>,
) {
    match &k.body {
        KernelBody::Simple(_) => {
            let mut acc = k.region_reduction.as_ref().map(|rr| rr.op.identity());
            let mut iter = Vec::with_capacity(k.loops.len());
            exec_nest(p, params, k, 0, vars, bufs, &mut acc, tracker, &mut iter);
            if let Some(t) = tracker {
                // The combined reduction store is a synchronization
                // point, not a per-iteration access.
                t.set_thread(None);
            }
            if let (Some(rr), Some(total)) = (&k.region_reduction, acc) {
                bufs[rr.dest.0 as usize].set(0, total);
            }
        }
        KernelBody::Grouped(g) => {
            // Grouped kernels have one parallel loop; each group of
            // `group_size` threads cooperates on one iteration of it.
            assert_eq!(k.loops.len(), 1, "grouped kernels are rank-1");
            let lp = &k.loops[0];
            let scope_ro = Scope {
                vars: &mut *vars,
                bufs,
                locals: None,
                group: GroupCtx::default(),
                tracker: None,
            };
            let lo = eval(p, params, &lp.lo, &scope_ro).as_i();
            let hi = eval(p, params, &lp.hi, &scope_ro).as_i();
            let n_groups = (hi - lo).max(0);
            let gsz = g.group_size as i64;
            for grp in 0..n_groups {
                let mut locals: Vec<Buffer> = g
                    .locals
                    .iter()
                    .map(|l| Buffer::zeroed(l.elem, l.len))
                    .collect();
                // Per-thread scalar environments persist across phases.
                let mut thread_vars: Vec<Vec<Option<V>>> =
                    vec![vars.to_vec(); g.group_size as usize];
                for (pi, phase) in g.phases.iter().enumerate() {
                    let skip = fidelity == KernelFidelity::DropTreePhases
                        && pi > 0
                        && pi + 1 < g.phases.len();
                    if skip {
                        continue;
                    }
                    if let Some(tr) = tracker {
                        // Phases are separated by implicit barriers;
                        // the phase index is the tracker's epoch.
                        tr.set_epoch(pi as u32);
                    }
                    for t in 0..gsz {
                        let tv = &mut thread_vars[t as usize];
                        tv[lp.var.0 as usize] = Some(V::I(lo + grp));
                        if let Some(tr) = tracker {
                            tr.set_thread(Some(ThreadId::Lane {
                                group: grp,
                                lane: t,
                            }));
                        }
                        let mut s = Scope {
                            vars: tv,
                            bufs,
                            locals: Some(&mut locals),
                            group: GroupCtx {
                                local_id: t,
                                group_id: grp,
                                local_size: gsz,
                                num_groups: n_groups,
                            },
                            tracker,
                        };
                        exec_block(p, params, phase, &mut s);
                    }
                }
            }
            if let Some(tr) = tracker {
                tr.set_thread(None);
            }
        }
    }
}

/// Recursively iterate the parallel loop nest of a simple kernel.
#[allow(clippy::too_many_arguments)]
fn exec_nest(
    p: &Program,
    params: &[V],
    k: &Kernel,
    depth: usize,
    vars: &mut [Option<V>],
    bufs: &mut [Buffer],
    acc: &mut Option<f64>,
    tracker: Option<&RaceTracker>,
    iter: &mut Vec<i64>,
) {
    if depth == k.loops.len() {
        if let Some(t) = tracker {
            t.set_thread(Some(ThreadId::Iter(iter.clone())));
        }
        let body = k.simple_body().expect("simple kernel");
        let mut s = Scope {
            vars: &mut *vars,
            bufs,
            locals: None,
            group: GroupCtx::default(),
            tracker,
        };
        exec_block(p, params, body, &mut s);
        if let (Some(rr), Some(total)) = (&k.region_reduction, acc.as_mut()) {
            let v = eval(p, params, &rr.value, &s).as_f();
            *total = rr.op.combine(*total, v);
        }
        return;
    }
    let lp = &k.loops[depth];
    let (lo, hi) = {
        let s = Scope {
            vars: &mut *vars,
            bufs,
            locals: None,
            group: GroupCtx::default(),
            // Loop bounds are evaluated once, before the parallel
            // region: not per-iteration accesses.
            tracker: None,
        };
        (
            eval(p, params, &lp.lo, &s).as_i(),
            eval(p, params, &lp.hi, &s).as_i(),
        )
    };
    for i in lo..hi {
        vars[lp.var.0 as usize] = Some(V::I(i));
        iter.push(i);
        exec_nest(p, params, k, depth + 1, vars, bufs, acc, tracker, iter);
        iter.pop();
    }
}

/// Fresh, empty variable environment for a program.
pub fn fresh_vars(p: &Program) -> Vec<Option<V>> {
    vec![None; p.var_names.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::{
        assign, for_, ld, let_, st, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, E,
    };

    fn run_simple(k: &Kernel, p: &Program, bufs: &mut [Buffer]) {
        let mut vars = fresh_vars(p);
        exec_kernel(p, &[V::I(8)], k, &mut vars, bufs, KernelFidelity::Exact);
    }

    #[test]
    fn saxpy_computes() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut bufs = vec![
            Buffer::F32((0..8).map(|v| v as f32).collect()),
            Buffer::F32(vec![1.0; 8]),
        ];
        run_simple(&k, &p, &mut bufs);
        let y = bufs[1].as_f32();
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn triangular_nest_respects_outer_var() {
        // for i in 0..n, for j in i..n: a[i*n+j] += 1 — only the upper
        // triangle is touched.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, E::from(n) * n, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        let k = Kernel::simple(
            "ut",
            vec![
                ParallelLoop::new(i, Expr::iconst(0), Expr::param(n)),
                ParallelLoop::new(j, Expr::var(i), Expr::param(n)),
            ],
            Block::new(vec![st(
                a,
                E::from(i) * n + j,
                ld(a, E::from(i) * n + j) + 1.0,
            )]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut bufs = vec![Buffer::zeroed(Scalar::F32, 64)];
        run_simple(&k, &p, &mut bufs);
        let a = bufs[0].as_f32();
        for r in 0..8 {
            for c in 0..8 {
                let expect = if c >= r { 1.0 } else { 0.0 };
                assert_eq!(a[r * 8 + c], expect, "({r},{c})");
            }
        }
    }

    #[test]
    fn sequential_inner_loop_and_locals() {
        // sum of x[0..n] via an inner loop per element.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let i = b.var("i");
        let kv = b.var("k");
        let s = b.var("s");
        let k = Kernel::simple(
            "sum",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![
                let_(s, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(s, E::from(s) + ld(x, kv))],
                ),
                st(out, i, E::from(s)),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut bufs = vec![
            Buffer::F32((0..8).map(|v| v as f32).collect()),
            Buffer::zeroed(Scalar::F32, 8),
        ];
        run_simple(&k, &p, &mut bufs);
        assert_eq!(bufs[1].as_f32()[3], 28.0); // 0+1+…+7
    }

    #[test]
    fn region_reduction_max() {
        use paccport_ir::{ReduceOp, RegionReduction};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, 1i64, Intent::Out);
        let i = b.var("i");
        let mut k = Kernel::simple(
            "maxred",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::default(),
        );
        k.region_reduction = Some(RegionReduction {
            op: ReduceOp::Max,
            value: ld(x, i).expr(),
            dest: out,
        });
        let p = b.finish(vec![HostStmt::Launch(k.clone())]);
        let mut bufs = vec![
            Buffer::F32(vec![3.0, 9.0, 1.0, 7.0, 2.0, 8.0, 0.0, 5.0]),
            Buffer::zeroed(Scalar::F32, 1),
        ];
        run_simple(&k, &p, &mut bufs);
        assert_eq!(bufs[1].as_f32()[0], 9.0);
    }

    #[test]
    fn grouped_tree_reduction_is_exact_and_buggy_mode_is_not() {
        use paccport_compilers::transforms::{reduction_to_grouped, VarAlloc};
        // out[j] = sum_k x[k]
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let j = b.var("j");
        let kv = b.var("k");
        let s = b.var("s");
        let mut k = Kernel::simple(
            "fwd",
            vec![ParallelLoop::new(j, Expr::iconst(0), Expr::iconst(2))],
            Block::new(vec![
                let_(s, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(s, E::from(s) + ld(x, kv))],
                ),
                st(out, j, E::from(s)),
            ]),
        );
        let mut p = b.finish(vec![]);
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(reduction_to_grouped(&mut k, 8, &mut va));

        let params = vec![V::I(32)];
        let data: Vec<f32> = (0..32).map(|v| v as f32).collect();
        let expect: f32 = data.iter().sum();

        let mut bufs = vec![Buffer::F32(data.clone()), Buffer::zeroed(Scalar::F32, 32)];
        let mut vars = fresh_vars(&p);
        exec_kernel(&p, &params, &k, &mut vars, &mut bufs, KernelFidelity::Exact);
        assert_eq!(bufs[1].as_f32()[0], expect);
        assert_eq!(bufs[1].as_f32()[1], expect);

        // Buggy mode loses partials: result differs.
        let mut bufs2 = vec![Buffer::F32(data), Buffer::zeroed(Scalar::F32, 32)];
        let mut vars2 = fresh_vars(&p);
        exec_kernel(
            &p,
            &params,
            &k,
            &mut vars2,
            &mut bufs2,
            KernelFidelity::DropTreePhases,
        );
        assert_ne!(bufs2.last().unwrap().as_f32()[0], expect);
    }

    #[test]
    fn grouped_tree_reduction_is_race_free_under_tracker() {
        use paccport_compilers::transforms::{reduction_to_grouped, VarAlloc};
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let j = b.var("j");
        let kv = b.var("k");
        let s = b.var("s");
        let mut k = Kernel::simple(
            "fwd",
            vec![ParallelLoop::new(j, Expr::iconst(0), Expr::iconst(2))],
            Block::new(vec![
                let_(s, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(s, E::from(s) + ld(x, kv))],
                ),
                st(out, j, E::from(s)),
            ]),
        );
        let mut p = b.finish(vec![]);
        let mut va = VarAlloc::new(&mut p.var_names);
        assert!(reduction_to_grouped(&mut k, 8, &mut va));

        // Under exact execution the staged tree is barrier-ordered:
        // the cross-lane reads of `sdata` all land one phase after
        // the writes they consume, so the detector must stay silent.
        let tracker = crate::race::RaceTracker::new(
            "fwd",
            vec!["x".into(), "out".into()],
            vec!["sdata".into()],
            false,
        );
        let mut bufs = vec![
            Buffer::F32((0..32).map(|v| v as f32).collect()),
            Buffer::zeroed(Scalar::F32, 32),
        ];
        let mut vars = fresh_vars(&p);
        exec_kernel_traced(
            &p,
            &[V::I(32)],
            &k,
            &mut vars,
            &mut bufs,
            KernelFidelity::Exact,
            Some(&tracker),
        );
        assert!(tracker.races().is_empty(), "{:?}", tracker.races());
        assert!(tracker.accesses() > 0);
    }

    #[test]
    fn f32_rounding_matches_device_semantics() {
        // 16777216 + 1 == 16777216 in f32.
        let v = bin(BinOp::Add, V::F(16777216.0), V::F(1.0));
        assert_eq!(v.as_f(), 16777216.0);
    }

    use paccport_ir::Block;
}
