//! Execution-tier selection: tree-walker vs bytecode VM.
//!
//! The tree-walking interpreter in [`crate::interp`] is the semantic
//! reference; the bytecode VM in [`crate::bytecode`] is the fast tier,
//! required to be **bitwise equal** to the reference on every program
//! (enforced by the conformance driver's tier leg and the
//! `tier_equivalence` suite). The tier is a [`RunConfig`] field
//! (`RunConfig::with_tier`), defaulting to a process-wide knob the CLI
//! sets once from `--tier` so the engine, the conformance legs, and
//! every internal `RunConfig::functional` construction site inherit it
//! without plumbing.
//!
//! [`RunConfig`]: crate::runner::RunConfig

use std::sync::atomic::{AtomicU8, Ordering};

/// Which interpreter executes kernels during functional runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecTier {
    /// The tree-walking reference interpreter ([`crate::interp`]).
    Tree,
    /// The compile-once bytecode VM ([`crate::bytecode`]).
    Bytecode,
}

impl ExecTier {
    /// Stable label, used in CLI flags and reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Tree => "tree",
            ExecTier::Bytecode => "bytecode",
        }
    }

    /// Parse a `--tier` value (`both` is handled by callers — it is a
    /// run-mode, not a tier).
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "tree" => Some(ExecTier::Tree),
            "bytecode" => Some(ExecTier::Bytecode),
            _ => None,
        }
    }
}

/// 0 = Tree, 1 = Bytecode. Relaxed is enough: the CLI writes this once
/// before any run starts; workers only read.
static DEFAULT_TIER: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default tier new `RunConfig`s pick up.
pub fn set_default_tier(t: ExecTier) {
    DEFAULT_TIER.store(
        match t {
            ExecTier::Tree => 0,
            ExecTier::Bytecode => 1,
        },
        Ordering::Relaxed,
    );
}

/// The process-wide default tier (Tree unless overridden).
pub fn default_tier() -> ExecTier {
    match DEFAULT_TIER.load(Ordering::Relaxed) {
        1 => ExecTier::Bytecode,
        _ => ExecTier::Tree,
    }
}
