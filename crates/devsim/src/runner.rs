//! End-to-end execution of a compiled program on a simulated device:
//! host control flow, transfer accounting (the evidence behind
//! Table VII), modeled kernel times, and — in functional mode — real
//! execution of every kernel so results can be validated.

use crate::device::{host_cpu, spec_for, DeviceSpec};
use crate::dyncost::{kernel_dyn_cost, CostHints, DynCost};
use crate::interp::{exec_kernel_traced, fresh_vars, KernelFidelity, V};
use crate::memory::{Buffer, TransferLedger};
use crate::race::{Race, RaceTracker};
use crate::tier::ExecTier;
use crate::timing::{kernel_launch_time, transfer_time};
use paccport_compilers::common::dist_rank_of;
use paccport_compilers::lower::used_arrays;
use paccport_compilers::{CompiledProgram, Correctness, DistSpec, ExecStrategy, TransferPolicy};
use paccport_ir::stmt::Stmt;
use paccport_ir::types::MemSpace;
use paccport_ir::{ArrayId, Dir, HostStmt, Intent, Kernel, KernelBody, Scalar, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// How faithfully to run the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Allocate buffers, execute every kernel, produce checkable
    /// results. Use for validation-scale inputs.
    Functional,
    /// Model time only: no buffers, no execution. Flag-controlled
    /// loops run `while_iters` iterations. Use for paper-scale inputs.
    TimingOnly { while_iters: u32 },
}

/// Run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Parameter values by name (converted per the declared type).
    pub params: Vec<(String, f64)>,
    /// Initial host contents by array name (missing arrays start
    /// zeroed).
    pub inputs: Vec<(String, Buffer)>,
    pub fidelity: Fidelity,
    pub hints: CostHints,
    /// Run the dynamic race detector during functional execution,
    /// collecting [`RunResult::races`]. Ignored in timing-only mode
    /// (nothing executes there).
    pub race_check: bool,
    /// Label for fault-injection site keys (the engine sets it to the
    /// cell label). `None` falls back to the program name, so direct
    /// `run` callers still get per-program fault determinism.
    pub fault_scope: Option<String>,
    /// Which interpreter executes kernels during functional runs.
    /// Constructors pick up [`crate::tier::default_tier`], so a CLI
    /// `--tier` flag reaches every internal construction site; use
    /// [`RunConfig::with_tier`] to pin a tier explicitly.
    pub tier: ExecTier,
}

impl RunConfig {
    pub fn functional(params: Vec<(String, f64)>) -> Self {
        RunConfig {
            params,
            inputs: Vec::new(),
            fidelity: Fidelity::Functional,
            hints: CostHints::default(),
            race_check: false,
            fault_scope: None,
            tier: crate::tier::default_tier(),
        }
    }

    pub fn timing(params: Vec<(String, f64)>, while_iters: u32) -> Self {
        RunConfig {
            params,
            inputs: Vec::new(),
            fidelity: Fidelity::TimingOnly { while_iters },
            hints: CostHints::default(),
            race_check: false,
            fault_scope: None,
            tier: crate::tier::default_tier(),
        }
    }

    pub fn with_input(mut self, name: &str, buf: Buffer) -> Self {
        self.inputs.push((name.into(), buf));
        self
    }

    pub fn with_hints(mut self, hints: CostHints) -> Self {
        self.hints = hints;
        self
    }

    pub fn with_race_check(mut self, on: bool) -> Self {
        self.race_check = on;
        self
    }

    pub fn with_fault_scope(mut self, scope: impl Into<String>) -> Self {
        self.fault_scope = Some(scope.into());
        self
    }

    pub fn with_tier(mut self, tier: ExecTier) -> Self {
        self.tier = tier;
        self
    }
}

/// Per-kernel execution statistics (what `nvprof` / `PGI_ACC_TIME`
/// showed the authors).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStat {
    pub name: String,
    pub launches: u64,
    pub device_time: f64,
    /// `false` reproduces the paper's BFS discovery: the kernel never
    /// ran on the accelerator.
    pub ran_on_device: bool,
    pub config_label: String,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Total modeled wall time (kernels + transfers + host work).
    pub elapsed: f64,
    pub kernel_time: f64,
    pub transfer_time_s: f64,
    pub host_time: f64,
    pub kernel_stats: Vec<KernelStat>,
    pub transfers: TransferLedger,
    /// Iterations the flag-controlled loop executed (0 if none).
    pub while_iterations: u64,
    /// Average transfers per while-loop iteration (Table VII).
    pub transfers_per_while_iter: f64,
    /// Transfers outside the while loop (Table VII's "in total" row).
    pub transfers_outside_while: u64,
    /// Final host buffers (functional mode; empty in timing mode).
    pub host: Vec<Buffer>,
    /// A kernel with a known-wrong plan executed (validation is
    /// expected to fail).
    pub any_known_wrong: bool,
    /// Cross-thread conflicts found by the dynamic race detector
    /// (empty unless [`RunConfig::race_check`] was set), deduplicated
    /// per (kernel, array, kind, level) across launches.
    pub races: Vec<Race>,
    /// Accesses the race detector shadow-logged (0 when off).
    pub race_accesses: u64,
}

impl RunResult {
    /// Host buffer by array name.
    pub fn buffer<'a>(&'a self, c: &CompiledProgram, name: &str) -> Option<&'a Buffer> {
        let id = c.program.array_id(name)?;
        self.host.get(id.0 as usize)
    }
}

/// Execute a compiled program.
///
/// When fault injection is active the run is bounded by a step-budget
/// watchdog (armed here unless the engine already armed one around
/// the whole job): a hung interpreter loop or an injected kernel hang
/// unwinds with a typed [`paccport_faults::WatchdogTimeout`] payload
/// that is caught and converted into a `Timeout` error instead of
/// wedging the study.
pub fn run(c: &CompiledProgram, cfg: &RunConfig) -> Result<RunResult, String> {
    let _span = paccport_trace::span_attrs(
        "devsim.run",
        vec![("program".into(), c.program.name.clone())],
    );
    let armed_here = paccport_faults::active() && !paccport_faults::watchdog_armed();
    if armed_here {
        paccport_faults::arm_watchdog(paccport_faults::DEFAULT_STEP_BUDGET);
    }
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_inner(c, cfg)));
    if armed_here {
        paccport_faults::disarm_watchdog();
    }
    match out {
        Ok(r) => r,
        Err(payload) => match paccport_faults::timeout_of(payload.as_ref()) {
            Some(_) => Err(paccport_faults::describe_panic(payload.as_ref())),
            None => std::panic::resume_unwind(payload),
        },
    }
}

fn run_inner(c: &CompiledProgram, cfg: &RunConfig) -> Result<RunResult, String> {
    let spec = spec_for(c.options.target, c.options.host_compiler);
    let host_spec = host_cpu(c.options.host_compiler);
    let mut r = Runner::new(c, cfg, spec, host_spec)?;
    let body = c.program.body.clone();
    for s in &body {
        r.host_stmt(s)?;
    }
    r.finish()
}

struct Runner<'a> {
    c: &'a CompiledProgram,
    cfg: &'a RunConfig,
    spec: DeviceSpec,
    host_spec: DeviceSpec,
    functional: bool,
    params: Vec<V>,
    lens: Vec<usize>,
    host: Vec<Buffer>,
    dev: Vec<Buffer>,
    vars: Vec<Option<V>>,
    host_vars_f: BTreeMap<VarId, f64>,
    resident: Vec<bool>,
    host_valid: Vec<bool>,
    ledger: TransferLedger,
    kernel_time: f64,
    transfer_time_s: f64,
    host_time: f64,
    stats: BTreeMap<String, KernelStat>,
    launch_order: Vec<String>,
    any_known_wrong: bool,
    while_iterations: u64,
    transfers_in_while: u64,
    in_while: bool,
    written_in_iter: BTreeSet<ArrayId>,
    races: Vec<Race>,
    /// Dedup key for `races` across launches of the same kernel.
    race_seen: BTreeSet<(String, String, crate::race::RaceKind, Option<usize>)>,
    race_accesses: u64,
    /// Arrays touched by at least one device-executed kernel (PGI's
    /// runtime elides `update`s for arrays with no device activity).
    device_active: Vec<bool>,
    /// Data-region nesting count per array. Kernels touching arrays
    /// *outside* any data region pay per-launch synchronization — the
    /// OpenACC semantics a 2014 compiler implements when the
    /// programmer omits `#pragma acc data` (the motivation for the
    /// paper's future-work Step 5).
    region_cover: Vec<u32>,
    /// Compile-once bytecode cache by kernel name (bytecode tier
    /// only): a kernel relaunched every while-loop iteration is
    /// lowered exactly once per run.
    bc: BTreeMap<String, crate::bytecode::KernelCode>,
}

impl<'a> Runner<'a> {
    fn new(
        c: &'a CompiledProgram,
        cfg: &'a RunConfig,
        spec: DeviceSpec,
        host_spec: DeviceSpec,
    ) -> Result<Self, String> {
        let p = &c.program;
        // Bind parameters in declaration order.
        let mut params = Vec::with_capacity(p.params.len());
        for d in &p.params {
            let v = cfg
                .params
                .iter()
                .find(|(n, _)| *n == d.name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing parameter `{}`", d.name))?;
            params.push(match d.ty {
                Scalar::F32 | Scalar::F64 => V::F(v),
                _ => V::I(v as i64),
            });
        }
        // Array lengths.
        let empty_vars = fresh_vars(p);
        let mut lens = Vec::with_capacity(p.arrays.len());
        {
            let mut no_bufs: [Buffer; 0] = [];
            let mut scratch = empty_vars.clone();
            for a in &p.arrays {
                let scope = crate::interp::Scope {
                    vars: &mut scratch,
                    bufs: &mut no_bufs,
                    locals: None,
                    group: Default::default(),
                    tracker: None,
                };
                let l = crate::interp::eval(p, &params, &a.len, &scope).as_i();
                if l < 0 {
                    return Err(format!("array `{}` has negative length {l}", a.name));
                }
                lens.push(l as usize);
            }
        }
        let functional = matches!(cfg.fidelity, Fidelity::Functional);
        let (host, dev) = if functional {
            let mut host: Vec<Buffer> = p
                .arrays
                .iter()
                .zip(&lens)
                .map(|(a, l)| Buffer::zeroed(a.elem, *l))
                .collect();
            for (name, buf) in &cfg.inputs {
                let id = p
                    .array_id(name)
                    .ok_or_else(|| format!("unknown input array `{name}`"))?;
                if buf.len() != lens[id.0 as usize] {
                    return Err(format!(
                        "input `{name}` has length {} but the program expects {}",
                        buf.len(),
                        lens[id.0 as usize]
                    ));
                }
                host[id.0 as usize] = buf.clone();
            }
            let dev = host
                .iter()
                .map(|b| Buffer::zeroed(b.elem(), b.len()))
                .collect();
            (host, dev)
        } else {
            (Vec::new(), Vec::new())
        };
        // Which arrays any device-executed kernel touches.
        let mut device_active = vec![false; p.arrays.len()];
        for k in p.kernels() {
            if let Some(plan) = c.plan(&k.name) {
                if plan.exec != ExecStrategy::HostSequential {
                    for a in used_arrays(k) {
                        device_active[a.0 as usize] = true;
                    }
                }
            }
        }
        Ok(Runner {
            c,
            cfg,
            spec,
            host_spec,
            functional,
            params,
            lens,
            host,
            dev,
            vars: empty_vars,
            host_vars_f: BTreeMap::new(),
            resident: vec![false; p.arrays.len()],
            host_valid: vec![true; p.arrays.len()],
            ledger: TransferLedger::default(),
            kernel_time: 0.0,
            transfer_time_s: 0.0,
            host_time: 0.0,
            stats: BTreeMap::new(),
            launch_order: Vec::new(),
            any_known_wrong: false,
            while_iterations: 0,
            transfers_in_while: 0,
            in_while: false,
            written_in_iter: BTreeSet::new(),
            races: Vec::new(),
            race_seen: BTreeSet::new(),
            race_accesses: 0,
            device_active,
            region_cover: vec![0; p.arrays.len()],
            bc: BTreeMap::new(),
        })
    }

    fn bytes_of(&self, a: ArrayId) -> u64 {
        (self.lens[a.0 as usize] * self.c.program.array(a).elem.size_bytes()) as u64
    }

    fn note_transfer(&mut self) {
        if self.in_while {
            self.transfers_in_while += 1;
        }
    }

    fn h2d(&mut self, a: ArrayId) {
        let bytes = self.bytes_of(a);
        self.ledger.record_h2d(bytes);
        self.transfer_time_s += transfer_time(&self.spec, bytes);
        self.note_transfer();
        if self.functional {
            self.dev[a.0 as usize] = self.host[a.0 as usize].clone();
        }
        self.resident[a.0 as usize] = true;
    }

    fn d2h(&mut self, a: ArrayId) {
        let bytes = self.bytes_of(a);
        self.ledger.record_d2h(bytes);
        self.transfer_time_s += transfer_time(&self.spec, bytes);
        self.note_transfer();
        if self.functional {
            self.host[a.0 as usize] = self.dev[a.0 as usize].clone();
        }
        self.host_valid[a.0 as usize] = true;
    }

    /// Region-exit copy-out: always counted, but the data copy is
    /// skipped when the host copy is already the authoritative one.
    fn d2h_region_exit(&mut self, a: ArrayId) {
        if self.host_valid[a.0 as usize] {
            let bytes = self.bytes_of(a);
            self.ledger.record_d2h(bytes);
            self.transfer_time_s += transfer_time(&self.spec, bytes);
            self.note_transfer();
        } else {
            self.d2h(a);
        }
    }

    fn ensure_on_device(&mut self, a: ArrayId) {
        if !self.resident[a.0 as usize] {
            self.h2d(a);
        }
    }

    fn ensure_on_host(&mut self, a: ArrayId) {
        if !self.host_valid[a.0 as usize] {
            self.d2h(a);
        }
    }

    fn host_stmt(&mut self, s: &HostStmt) -> Result<(), String> {
        match s {
            HostStmt::DataRegion { arrays, body } => {
                for a in arrays {
                    self.region_cover[a.0 as usize] += 1;
                    let intent = self.c.program.array(*a).intent;
                    if intent.copies_in() {
                        self.h2d(*a);
                    } else {
                        // `create` / copyout-only: allocate, no copy.
                        self.resident[a.0 as usize] = true;
                        if self.functional {
                            let d = self.c.program.array(*a);
                            self.dev[a.0 as usize] =
                                Buffer::zeroed(d.elem, self.lens[a.0 as usize]);
                        }
                    }
                }
                for s in body {
                    self.host_stmt(s)?;
                }
                for a in arrays {
                    self.region_cover[a.0 as usize] -= 1;
                    let intent = self.c.program.array(*a).intent;
                    if intent.copies_out() {
                        // The runtime performs the copy-out regardless
                        // (it is counted and timed), but coherent host
                        // data is never clobbered by a stale device
                        // copy (host-fallback kernels wrote the host
                        // arrays directly).
                        self.d2h_region_exit(*a);
                    }
                    self.resident[a.0 as usize] = false;
                }
                Ok(())
            }
            HostStmt::Launch(k) => self.launch(k),
            HostStmt::HostLoop { var, lo, hi, body } => {
                let lo = self.eval_host(lo).as_i();
                let hi = self.eval_host(hi).as_i();
                for i in lo..hi {
                    self.vars[var.0 as usize] = Some(V::I(i));
                    self.host_vars_f.insert(*var, i as f64);
                    for s in body {
                        self.host_stmt(s)?;
                    }
                }
                self.host_vars_f.remove(var);
                Ok(())
            }
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => {
                let was_in_while = self.in_while;
                self.in_while = true;
                let mut iters: u64 = 0;
                loop {
                    self.written_in_iter.clear();
                    for s in body {
                        self.host_stmt(s)?;
                    }
                    // CAPS's conservative refresh of copyin arrays
                    // modified on the device (Table VII's third
                    // per-iteration transfer).
                    if self.c.transfers == TransferPolicy::PerIteration {
                        let refresh: Vec<ArrayId> = self
                            .written_in_iter
                            .iter()
                            .copied()
                            .filter(|a| {
                                self.c.program.array(*a).intent == Intent::In
                                    && self.resident[a.0 as usize]
                            })
                            .collect();
                        for a in refresh {
                            self.d2h(a);
                        }
                    }
                    iters += 1;
                    let continue_ = match self.cfg.fidelity {
                        Fidelity::Functional => {
                            let b = &self.host[flag.0 as usize];
                            b.get(0) != 0.0
                        }
                        Fidelity::TimingOnly { while_iters } => iters < while_iters as u64,
                    };
                    if !continue_ || iters >= *max_iters as u64 {
                        break;
                    }
                }
                self.while_iterations += iters;
                self.in_while = was_in_while;
                Ok(())
            }
            HostStmt::HostAssign { var, value, .. } => {
                if self.functional {
                    let v = self.eval_host(value);
                    self.vars[var.0 as usize] = Some(v);
                    self.host_vars_f.insert(*var, v.as_f());
                }
                Ok(())
            }
            HostStmt::HostStore {
                array,
                index,
                value,
            } => {
                if self.functional {
                    let i = self.eval_host(index).as_i() as usize;
                    let v = self.eval_host(value).as_f();
                    self.host[array.0 as usize].set(i, v);
                }
                self.host_valid[array.0 as usize] = true;
                self.resident[array.0 as usize] = false;
                Ok(())
            }
            HostStmt::Update { array, dir } => {
                // PGI elides updates of arrays no device kernel
                // touches (its BFS ran entirely on the host).
                if !self.device_active[array.0 as usize] {
                    return Ok(());
                }
                match dir {
                    Dir::ToDevice => self.h2d(*array),
                    Dir::ToHost => self.d2h(*array),
                }
                Ok(())
            }
            HostStmt::HostCompute { instr, .. } => {
                let n = self.try_eval_host_f(instr).unwrap_or(0.0);
                self.host_time += n / self.host_spec.single_thread_ips;
                Ok(())
            }
            HostStmt::EnterData { arrays } => {
                for a in arrays {
                    self.region_cover[a.0 as usize] += 1;
                    let intent = self.c.program.array(*a).intent;
                    if intent.copies_in() {
                        self.h2d(*a);
                    } else {
                        self.resident[a.0 as usize] = true;
                        if self.functional {
                            let d = self.c.program.array(*a);
                            self.dev[a.0 as usize] =
                                Buffer::zeroed(d.elem, self.lens[a.0 as usize]);
                        }
                    }
                }
                Ok(())
            }
            HostStmt::ExitData { arrays } => {
                for a in arrays {
                    if self.region_cover[a.0 as usize] == 0 {
                        return Err(format!(
                            "exit data for `{}` without a matching enter data",
                            self.c.program.array(*a).name
                        ));
                    }
                    self.region_cover[a.0 as usize] -= 1;
                    let intent = self.c.program.array(*a).intent;
                    if intent.copies_out() {
                        self.d2h_region_exit(*a);
                    }
                    self.resident[a.0 as usize] = false;
                }
                Ok(())
            }
        }
    }

    fn eval_host(&mut self, e: &paccport_ir::Expr) -> V {
        let scope = crate::interp::Scope {
            vars: &mut self.vars,
            bufs: &mut self.host,
            locals: None,
            group: Default::default(),
            tracker: None,
        };
        crate::interp::eval(&self.c.program, &self.params, e, &scope)
    }

    /// Host evaluation that tolerates timing-only mode (no buffers) and
    /// expressions that are not host-evaluable at all. Kernel loop
    /// bounds may reference *outer kernel loop variables* (triangular
    /// nests); those variables only exist per-lane inside the launch,
    /// so launch-time extent estimation must return `None` for them
    /// instead of tripping the interpreter's undefined-variable panic.
    fn try_eval_host_f(&mut self, e: &paccport_ir::Expr) -> Option<f64> {
        if self.functional {
            if !vars_defined(e, &self.vars) {
                return None;
            }
            Some(self.eval_host(e).as_f())
        } else {
            crate::dyncost::try_eval_pub(e, &self.params, &self.host_vars_f)
        }
    }

    fn launch(&mut self, k: &Kernel) -> Result<(), String> {
        if paccport_faults::active() {
            let scope = self
                .cfg
                .fault_scope
                .as_deref()
                .unwrap_or(&self.c.program.name);
            let site = format!("{scope}#{}", k.name);
            if paccport_faults::inject(paccport_faults::FaultKind::DeviceFault, &site) {
                return Err(format!(
                    "{} transient device fault launching `{}`",
                    paccport_faults::INJECTED,
                    k.name
                ));
            }
            if paccport_faults::should_inject(paccport_faults::FaultKind::KernelHang, &site) {
                paccport_faults::record(paccport_faults::FaultKind::KernelHang, &site);
                paccport_faults::hang();
            }
        }
        let plan = self
            .c
            .plan(&k.name)
            .ok_or_else(|| format!("no plan for kernel `{}`", k.name))?
            .clone();
        // Evaluate loop extents with host variables.
        let mut extents: Vec<u64> = Vec::with_capacity(k.loops.len());
        for lp in &k.loops {
            let lo = self.try_eval_host_scalar(&lp.lo).unwrap_or(0.0);
            let hi = self.try_eval_host_scalar(&lp.hi).unwrap_or(lo);
            extents.push((hi - lo).max(0.0) as u64);
        }
        let dist_rank = dist_rank_of(&plan.dist, k.rank());
        let dims = plan.dist.launch_dims(&extents);
        // Serialized executions carry a cost tree that already covers
        // the whole nest (rank-0 lowering), so the multiplier is 1.
        let serialized = matches!(
            plan.exec,
            ExecStrategy::DeviceSequential | ExecStrategy::HostSequential
        );
        let n_par: u64 = if serialized {
            1
        } else {
            match plan.dist {
                DistSpec::GroupedPerIter { group_size } => {
                    extents.first().copied().unwrap_or(0) * group_size as u64
                }
                DistSpec::Grouped { .. } => dims.total_threads(),
                _ => {
                    if dist_rank == 0 {
                        1
                    } else {
                        extents.iter().take(dist_rank).product()
                    }
                }
            }
        };
        let per_iter: DynCost = kernel_dyn_cost(
            &self.c.program,
            k,
            &plan,
            dist_rank,
            &self.params,
            &self.host_vars_f,
            &self.cfg.hints,
        );
        let t = kernel_launch_time(&self.spec, &self.host_spec, &plan, &dims, n_par, &per_iter);
        let on_device = plan.exec != ExecStrategy::HostSequential;
        if on_device {
            self.kernel_time += t;
        } else {
            self.host_time += t;
        }

        // Data movement.
        let (reads, writes) = kernel_reads_writes(k);
        if on_device {
            for a in reads.union(&writes) {
                // Uncovered arrays are re-synchronized around every
                // launch (no enclosing data region to keep them
                // resident); covered arrays move at most once.
                if self.region_cover[a.0 as usize] == 0 && reads.contains(a) {
                    self.h2d(*a);
                } else {
                    self.ensure_on_device(*a);
                }
            }
            for a in &writes {
                self.host_valid[a.0 as usize] = false;
                self.written_in_iter.insert(*a);
            }
        } else {
            for a in reads.iter().chain(writes.iter()) {
                self.ensure_on_host(*a);
            }
            for a in &writes {
                self.resident[a.0 as usize] = false;
            }
        }

        // Functional execution.
        if self.functional {
            let fidelity = match plan.correctness {
                Correctness::Correct => KernelFidelity::Exact,
                Correctness::Wrong { .. } => KernelFidelity::DropTreePhases,
            };
            let p = &self.c.program;
            let tracker = self.cfg.race_check.then(|| {
                let global_names = p.arrays.iter().map(|a| a.name.clone()).collect();
                let local_names = match &k.body {
                    KernelBody::Grouped(g) => g.locals.iter().map(|l| l.name.clone()).collect(),
                    KernelBody::Simple(_) => Vec::new(),
                };
                RaceTracker::new(
                    &k.name,
                    global_names,
                    local_names,
                    fidelity == KernelFidelity::DropTreePhases,
                )
            });
            let bufs: &mut [Buffer] = if on_device {
                &mut self.dev
            } else {
                &mut self.host
            };
            match self.cfg.tier {
                ExecTier::Tree => exec_kernel_traced(
                    p,
                    &self.params,
                    k,
                    &mut self.vars,
                    bufs,
                    fidelity,
                    tracker.as_ref(),
                ),
                ExecTier::Bytecode => {
                    if !self.bc.contains_key(&k.name) {
                        self.bc
                            .insert(k.name.clone(), crate::bytecode::compile_kernel(p, k));
                    }
                    crate::bytecode::exec_kernel_bc(
                        &self.bc[&k.name],
                        &self.params,
                        k,
                        &mut self.vars,
                        bufs,
                        fidelity,
                        tracker.as_ref(),
                    );
                }
            }
            if let Some(t) = tracker {
                self.race_accesses += t.accesses();
                paccport_trace::add("race.accesses", t.accesses());
                paccport_trace::add("race.conflicts", t.conflicts());
                for race in t.races() {
                    let key = (
                        race.kernel.clone(),
                        race.array.clone(),
                        race.kind,
                        race.level,
                    );
                    if self.race_seen.insert(key) {
                        self.races.push(race);
                    }
                }
            }
        }
        if matches!(plan.correctness, Correctness::Wrong { .. }) {
            self.any_known_wrong = true;
        }
        // Uncovered written arrays are copied back after every launch
        // (per-launch synchronization without a data region).
        if on_device {
            let uncovered: Vec<ArrayId> = writes
                .iter()
                .copied()
                .filter(|a| self.region_cover[a.0 as usize] == 0)
                .collect();
            for a in uncovered {
                self.d2h(a);
            }
        }

        // Stats.
        if !self.stats.contains_key(&k.name) {
            self.launch_order.push(k.name.clone());
            self.stats.insert(
                k.name.clone(),
                KernelStat {
                    name: k.name.clone(),
                    launches: 0,
                    device_time: 0.0,
                    ran_on_device: on_device,
                    config_label: plan.config_label.clone(),
                },
            );
        }
        let stat = self.stats.get_mut(&k.name).expect("just inserted");
        stat.launches += 1;
        stat.device_time += t;
        Ok(())
    }

    fn try_eval_host_scalar(&mut self, e: &paccport_ir::Expr) -> Option<f64> {
        self.try_eval_host_f(e)
    }

    fn finish(mut self) -> Result<RunResult, String> {
        // Final copy-out of dirty output arrays not already synced.
        for i in 0..self.c.program.arrays.len() {
            let a = ArrayId(i as u32);
            let intent = self.c.program.array(a).intent;
            if intent.copies_out() && !self.host_valid[i] && self.resident[i] {
                self.d2h(a);
            }
        }
        let transfers_per_while_iter = if self.while_iterations > 0 {
            self.transfers_in_while as f64 / self.while_iterations as f64
        } else {
            0.0
        };
        let elapsed = self.kernel_time + self.transfer_time_s + self.host_time;
        let stats: Vec<KernelStat> = self
            .launch_order
            .iter()
            .map(|n| self.stats[n].clone())
            .collect();
        // Simulated hardware counters → the metrics registry: what
        // `PGI_ACC_TIME=1` + nvprof gave the paper's authors, as
        // Prometheus series. One observation per kernel per run, and
        // host compute outside any kernel gets its own series, so
        // summing `devsim_kernel_seconds`, `devsim_transfer_seconds`
        // and `devsim_host_seconds` reproduces `devsim_run_seconds`
        // exactly (the cross-check test holds the registry to that).
        if paccport_trace::metrics::metrics_enabled() {
            use paccport_trace::metrics::{counter_add, observe};
            for s in &stats {
                let exec = if s.ran_on_device { "device" } else { "host" };
                counter_add(
                    "devsim_kernel_launches_total",
                    &[("kernel", &s.name), ("exec", exec)],
                    s.launches,
                );
                observe(
                    "devsim_kernel_seconds",
                    &[("kernel", &s.name), ("exec", exec)],
                    s.device_time,
                );
            }
            counter_add(
                "devsim_transfer_bytes_total",
                &[("dir", "h2d")],
                self.ledger.h2d_bytes,
            );
            counter_add(
                "devsim_transfer_bytes_total",
                &[("dir", "d2h")],
                self.ledger.d2h_bytes,
            );
            counter_add(
                "devsim_transfer_count_total",
                &[("dir", "h2d")],
                self.ledger.h2d_count,
            );
            counter_add(
                "devsim_transfer_count_total",
                &[("dir", "d2h")],
                self.ledger.d2h_count,
            );
            counter_add("devsim_while_iterations_total", &[], self.while_iterations);
            observe("devsim_transfer_seconds", &[], self.transfer_time_s);
            // `host_time` includes host-fallback kernel launches, but
            // those are already charged to their kernel's series; only
            // the non-kernel remainder (host statements between
            // launches) is new information.
            let host_kernel: f64 = stats
                .iter()
                .filter(|s| !s.ran_on_device)
                .map(|s| s.device_time)
                .sum();
            observe("devsim_host_seconds", &[], self.host_time - host_kernel);
            observe("devsim_run_seconds", &[], elapsed);
        }
        Ok(RunResult {
            elapsed,
            kernel_time: self.kernel_time,
            transfer_time_s: self.transfer_time_s,
            host_time: self.host_time,
            kernel_stats: stats,
            transfers: self.ledger,
            while_iterations: self.while_iterations,
            transfers_per_while_iter,
            transfers_outside_while: self.ledger.total_count() - self.transfers_in_while,
            host: self.host,
            any_known_wrong: self.any_known_wrong,
            races: self.races,
            race_accesses: self.race_accesses,
        })
    }
}

/// True iff every `Var` the expression reads is defined in `vars`.
fn vars_defined(e: &paccport_ir::Expr, vars: &[Option<crate::interp::V>]) -> bool {
    use paccport_ir::Expr;
    match e {
        Expr::FConst(_) | Expr::IConst(_) | Expr::BConst(_) | Expr::Param(_) | Expr::Special(_) => {
            true
        }
        Expr::Var(id) => vars.get(id.0 as usize).is_some_and(|slot| slot.is_some()),
        Expr::Load { index, .. } => vars_defined(index, vars),
        Expr::Un(_, a) | Expr::Cast(_, a) => vars_defined(a, vars),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => vars_defined(a, vars) && vars_defined(b, vars),
        Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
            vars_defined(a, vars) && vars_defined(b, vars) && vars_defined(c, vars)
        }
    }
}

/// Arrays a kernel reads and writes (global space only).
pub fn kernel_reads_writes(k: &Kernel) -> (BTreeSet<ArrayId>, BTreeSet<ArrayId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut scan = |b: &paccport_ir::Block| {
        b.walk(&mut |s| {
            match s {
                Stmt::Store {
                    space: MemSpace::Global,
                    array,
                    ..
                }
                | Stmt::Atomic { array, .. } => {
                    writes.insert(*array);
                }
                _ => {}
            }
            s.for_each_expr(&mut |e| {
                e.walk(&mut |e| {
                    if let paccport_ir::Expr::Load {
                        space: MemSpace::Global,
                        array,
                        ..
                    } = e
                    {
                        reads.insert(*array);
                    }
                })
            });
        });
    };
    match &k.body {
        KernelBody::Simple(b) => scan(b),
        KernelBody::Grouped(g) => {
            for p in &g.phases {
                scan(p);
            }
        }
    }
    for lp in &k.loops {
        for e in [&lp.lo, &lp.hi] {
            e.walk(&mut |e| {
                if let paccport_ir::Expr::Load {
                    space: MemSpace::Global,
                    array,
                    ..
                } = e
                {
                    reads.insert(*array);
                }
            });
        }
    }
    if let Some(rr) = &k.region_reduction {
        writes.insert(rr.dest);
        rr.value.walk(&mut |e| {
            if let paccport_ir::Expr::Load {
                space: MemSpace::Global,
                array,
                ..
            } = e
            {
                reads.insert(*array);
            }
        });
    }
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_compilers::{compile, CompileOptions, CompilerId};
    use paccport_ir::{ld, st, Expr, Intent, Kernel, ParallelLoop, ProgramBuilder, E};

    fn saxpy_program(independent: bool) -> paccport_ir::Program {
        let mut b = ProgramBuilder::new("saxpy");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = independent;
        let k = Kernel::simple(
            "saxpy",
            vec![lp],
            paccport_ir::Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        b.finish(vec![HostStmt::Launch(k)])
    }

    #[test]
    fn functional_run_produces_correct_results() {
        let p = saxpy_program(true);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::functional(vec![("n".into(), 64.0)])
            .with_input("x", Buffer::F32((0..64).map(|v| v as f32).collect()))
            .with_input("y", Buffer::F32(vec![1.0; 64]));
        let r = run(&c, &cfg).unwrap();
        let y = r.buffer(&c, "y").unwrap().as_f32();
        for (i, v) in y.iter().enumerate() {
            assert_eq!(*v, 2.0 * i as f32 + 1.0);
        }
        // x copied in, y copied in and out.
        assert_eq!(r.transfers.h2d_count, 2);
        assert_eq!(r.transfers.d2h_count, 1);
        assert!(r.elapsed > 0.0);
        assert!(r.kernel_stats[0].ran_on_device);
    }

    #[test]
    fn sequential_baseline_is_much_slower_than_gridify() {
        let base = saxpy_program(false); // CAPS gang(1) bug
        let opt = saxpy_program(true); // gridify
        let cb = compile(CompilerId::Caps, &base, &CompileOptions::gpu()).unwrap();
        let co = compile(CompilerId::Caps, &opt, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::timing(vec![("n".into(), 4_000_000.0)], 1);
        let tb = run(&cb, &cfg).unwrap().kernel_time;
        let to = run(&co, &cfg).unwrap().kernel_time;
        assert!(
            tb / to > 100.0,
            "sequential {tb} vs parallel {to}: ratio {}",
            tb / to
        );
    }

    #[test]
    fn timing_only_mode_needs_no_buffers() {
        let p = saxpy_program(true);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        // A size that would be ~64 GB if allocated.
        let cfg = RunConfig::timing(vec![("n".into(), 8e9)], 1);
        let r = run(&c, &cfg).unwrap();
        assert!(r.host.is_empty());
        assert!(r.elapsed > 0.0);
        assert!(r.transfers.total_bytes() > 8_000_000_000);
    }

    #[test]
    fn host_fallback_runs_but_not_on_device() {
        // Indirect store → PGI keeps it on the host.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let idx = b.array("idx", Scalar::I32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "scatter",
            vec![lp],
            paccport_ir::Block::new(vec![st(out, ld(idx, i), 1.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
        let perm: Vec<i32> = (0..16).rev().collect();
        let cfg =
            RunConfig::functional(vec![("n".into(), 16.0)]).with_input("idx", Buffer::I32(perm));
        let r = run(&c, &cfg).unwrap();
        assert!(!r.kernel_stats[0].ran_on_device);
        // Results still correct — computed on the host.
        assert!(r
            .buffer(&c, "out")
            .unwrap()
            .as_f32()
            .iter()
            .all(|v| *v == 1.0));
        // No kernel-driven transfers.
        assert_eq!(r.transfers.total_count(), 0);
    }

    #[test]
    fn race_check_is_clean_on_saxpy() {
        let p = saxpy_program(true);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::functional(vec![("n".into(), 16.0)])
            .with_input("x", Buffer::F32(vec![1.0; 16]))
            .with_input("y", Buffer::F32(vec![1.0; 16]))
            .with_race_check(true);
        let r = run(&c, &cfg).unwrap();
        assert!(r.races.is_empty(), "{:?}", r.races);
        // 2 loads + 1 store per iteration.
        assert_eq!(r.race_accesses, 48);
    }

    #[test]
    fn race_check_flags_shared_accumulator() {
        // out[0] = out[0] + x[i] for every parallel iteration — the
        // effective schedule of a lost-update miscompilation.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("acc", Scalar::F32, 1i64, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "accumulate",
            vec![lp],
            paccport_ir::Block::new(vec![st(out, 0i64, ld(out, 0i64) + ld(x, i))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::functional(vec![("n".into(), 8.0)])
            .with_input("x", Buffer::F32(vec![1.0; 8]))
            .with_race_check(true);
        let r = run(&c, &cfg).unwrap();
        let ww = r
            .races
            .iter()
            .find(|x| x.kind == crate::race::RaceKind::WriteWrite)
            .expect("lost update must be a write-write race");
        assert_eq!(ww.array, "acc");
        assert_eq!(ww.level, Some(0));
        let d = ww.describe();
        assert!(d.contains("`acc`[0]"), "{d}");
        assert!(d.contains("(0)") && d.contains("(1)"), "{d}");
        // Off by default: same run without the flag records nothing.
        let cfg_off = RunConfig::functional(vec![("n".into(), 8.0)])
            .with_input("x", Buffer::F32(vec![1.0; 8]));
        let r_off = run(&c, &cfg_off).unwrap();
        assert!(r_off.races.is_empty());
        assert_eq!(r_off.race_accesses, 0);
    }

    #[test]
    fn missing_param_is_an_error() {
        let p = saxpy_program(true);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::functional(vec![]);
        assert!(run(&c, &cfg).is_err());
    }

    #[test]
    fn wrong_input_length_is_an_error() {
        let p = saxpy_program(true);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let cfg = RunConfig::functional(vec![("n".into(), 64.0)])
            .with_input("x", Buffer::F32(vec![0.0; 3]));
        assert!(run(&c, &cfg).is_err());
    }
}
