//! Dynamic race detection for the simulated device.
//!
//! The interpreter executes parallel loops sequentially, so a data
//! race never corrupts results here the way it would on hardware —
//! but it *would* on the machines the paper used, which is exactly
//! what the static dependence analysis (`paccport_ir::deps`) is meant
//! to predict. This module records a shadow log of every global- and
//! local-memory access during functional execution, tagged with the
//! logical thread that performed it (the parallel-loop iteration
//! vector, or the group/lane pair for work-group kernels), and flags
//! cross-thread read-write and write-write conflicts.
//!
//! Synchronization model, mirroring the simulator and the analysis:
//!
//! - Distinct iterations of a parallel loop nest run unordered: any
//!   conflicting pair is a race.
//! - Lanes of one work group are ordered *across phases* (an implicit
//!   barrier separates phases, like CUDA `__syncthreads()`), so only
//!   same-phase conflicts race — unless the schedule dropped the
//!   barriers ([`RaceTracker::new`]'s `barriers_dropped`).
//! - Lanes of *different* groups are never ordered, in any phase.
//! - `Stmt::Atomic` updates synchronize (the same modeling choice
//!   `deps.rs` makes): atomic-atomic pairs never race, and the atomic
//!   side of an atomic/read pair is treated as ordered. A *plain*
//!   write against any other thread's access still races.
//!
//! Detection is online: each access is checked against the shadow
//! cell's recorded first writer and (up to two distinct) readers, so
//! memory stays proportional to the touched footprint, not the access
//! count. Diagnostics name the kernel, the array, the element index,
//! and both conflicting iteration ids.

use crate::memory::MemLoc;
use paccport_ir::MemSpace;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Logical identity of one simulated device thread.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThreadId {
    /// Iteration vector of a simple kernel's parallel loop nest.
    Iter(Vec<i64>),
    /// One lane of a work group (grouped kernels).
    Lane { group: i64, lane: i64 },
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadId::Iter(v) => {
                write!(f, "iteration (")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            ThreadId::Lane { group, lane } => write!(f, "group {group} lane {lane}"),
        }
    }
}

/// Kind of conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RaceKind {
    WriteWrite,
    ReadWrite,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceKind::WriteWrite => write!(f, "write-write"),
            RaceKind::ReadWrite => write!(f, "read-write"),
        }
    }
}

/// One detected cross-thread conflict.
#[derive(Debug, Clone, PartialEq)]
pub struct Race {
    pub kernel: String,
    pub array: String,
    pub space: MemSpace,
    pub index: i64,
    pub kind: RaceKind,
    /// The earlier access (simulation order).
    pub first: ThreadId,
    /// The later, conflicting access.
    pub second: ThreadId,
    /// Parallel-loop nest level the conflict is attributed to: the
    /// first level where the two iteration vectors differ. Grouped
    /// kernels' cross-group conflicts map to level 0 (their single
    /// parallel loop); same-group lane conflicts have no level (they
    /// sit *below* the parallel loop the static analysis judges).
    pub level: Option<usize>,
}

impl Race {
    /// Human-readable diagnostic naming the array, the element, and
    /// the two conflicting iterations.
    pub fn describe(&self) -> String {
        format!(
            "{} race on `{}`[{}] between {} and {} of kernel `{}`",
            self.kind, self.array, self.index, self.first, self.second, self.kernel
        )
    }
}

fn level_of(a: &ThreadId, b: &ThreadId) -> Option<usize> {
    match (a, b) {
        (ThreadId::Iter(x), ThreadId::Iter(y)) => x.iter().zip(y.iter()).position(|(p, q)| p != q),
        (ThreadId::Lane { group: g1, .. }, ThreadId::Lane { group: g2, .. }) => {
            if g1 != g2 {
                Some(0)
            } else {
                None
            }
        }
        // Mixed kinds never occur within one kernel launch.
        _ => Some(0),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Access {
    /// Index into `Inner::threads`.
    thread: usize,
    /// Phase index for grouped kernels; 0 for simple kernels.
    epoch: u32,
    atomic: bool,
}

#[derive(Debug, Default, Clone)]
struct ShadowCell {
    /// First plain (non-atomic) writer.
    writer: Option<Access>,
    /// First atomic writer.
    atomic_writer: Option<Access>,
    /// Up to two readers from distinct threads (latest epoch each).
    readers: [Option<Access>; 2],
}

struct Inner {
    kernel: String,
    /// Global array names (by `ArrayId`) for diagnostics.
    global_names: Vec<String>,
    /// Local array names (by local slot) for diagnostics.
    local_names: Vec<String>,
    /// Interned thread ids; `Access::thread` indexes this.
    threads: Vec<ThreadId>,
    thread_index: BTreeMap<ThreadId, usize>,
    current: Option<usize>,
    epoch: u32,
    barriers_dropped: bool,
    shadow: BTreeMap<MemLoc, ShadowCell>,
    races: Vec<Race>,
    /// One recorded race per (space, array, kind, level) keeps the
    /// report readable on large footprints; `conflicts` still counts
    /// every detected pair.
    seen: BTreeSet<(MemSpace, u32, RaceKind, Option<usize>)>,
    accesses: u64,
    conflicts: u64,
}

/// Shadow-log collector for one kernel launch.
///
/// Interior-mutable so the interpreter can log loads from within
/// expression evaluation, which only holds `&Scope`. Single-threaded
/// by construction (one launch is interpreted on one thread).
pub struct RaceTracker {
    inner: RefCell<Inner>,
}

impl RaceTracker {
    pub fn new(
        kernel: &str,
        global_names: Vec<String>,
        local_names: Vec<String>,
        barriers_dropped: bool,
    ) -> RaceTracker {
        RaceTracker {
            inner: RefCell::new(Inner {
                kernel: kernel.to_string(),
                global_names,
                local_names,
                threads: Vec::new(),
                thread_index: BTreeMap::new(),
                current: None,
                epoch: 0,
                barriers_dropped,
                shadow: BTreeMap::new(),
                races: Vec::new(),
                seen: BTreeSet::new(),
                accesses: 0,
                conflicts: 0,
            }),
        }
    }

    /// Set the logical thread subsequent accesses belong to. `None`
    /// suspends logging (loop-bound evaluation, region-reduction
    /// combines — synchronization points, not racy accesses).
    pub fn set_thread(&self, t: Option<ThreadId>) {
        let mut inner = self.inner.borrow_mut();
        let cur = t.map(|t| match inner.thread_index.get(&t) {
            Some(&i) => i,
            None => {
                let i = inner.threads.len();
                inner.threads.push(t.clone());
                inner.thread_index.insert(t, i);
                i
            }
        });
        inner.current = cur;
    }

    /// Set the barrier epoch (grouped kernels: the phase index).
    pub fn set_epoch(&self, e: u32) {
        self.inner.borrow_mut().epoch = e;
    }

    pub fn log_read(&self, loc: MemLoc) {
        self.log(loc, false, false);
    }

    pub fn log_write(&self, loc: MemLoc, atomic: bool) {
        self.log(loc, true, atomic);
    }

    fn log(&self, loc: MemLoc, is_write: bool, atomic: bool) {
        let mut inner = self.inner.borrow_mut();
        let Some(thread) = inner.current else {
            return;
        };
        inner.accesses += 1;
        let acc = Access {
            thread,
            epoch: inner.epoch,
            atomic,
        };
        let cell = inner.shadow.entry(loc).or_default().clone();
        let mut found: Vec<(Access, RaceKind)> = Vec::new();
        if is_write {
            // A plain write races with any other thread's prior
            // access; an atomic write only with prior plain writes.
            if let Some(w) = cell.writer {
                if conflicts(&inner, w, acc) {
                    found.push((w, RaceKind::WriteWrite));
                }
            }
            if !atomic {
                if let Some(w) = cell.atomic_writer {
                    if conflicts(&inner, w, acc) {
                        found.push((w, RaceKind::WriteWrite));
                    }
                }
                for r in cell.readers.iter().flatten() {
                    if conflicts(&inner, *r, acc) {
                        found.push((*r, RaceKind::ReadWrite));
                    }
                }
            }
        } else if let Some(w) = cell.writer {
            if conflicts(&inner, w, acc) {
                found.push((w, RaceKind::ReadWrite));
            }
        }
        for (prior, kind) in found {
            record(&mut inner, loc, prior, acc, kind);
        }
        // Update the shadow cell.
        let cell = inner.shadow.get_mut(&loc).expect("entry just created");
        if is_write {
            let slot = if atomic {
                &mut cell.atomic_writer
            } else {
                &mut cell.writer
            };
            if slot.is_none() {
                *slot = Some(acc);
            }
        } else {
            // Keep the latest epoch per thread: phases are processed
            // in order, so only the most recent read can still be
            // unordered with a later same-group write.
            if let Some(r) = cell
                .readers
                .iter_mut()
                .flatten()
                .find(|r| r.thread == thread)
            {
                r.epoch = acc.epoch;
            } else if let Some(slot) = cell.readers.iter_mut().find(|r| r.is_none()) {
                *slot = Some(acc);
            }
        }
    }

    /// All recorded (deduplicated) races, earliest first.
    pub fn races(&self) -> Vec<Race> {
        self.inner.borrow().races.clone()
    }

    /// Total accesses logged.
    pub fn accesses(&self) -> u64 {
        self.inner.borrow().accesses
    }

    /// Total conflicting pairs detected (before deduplication).
    pub fn conflicts(&self) -> u64 {
        self.inner.borrow().conflicts
    }
}

/// Are two accesses by different threads unordered (hence racy if
/// conflicting)?
fn conflicts(inner: &Inner, a: Access, b: Access) -> bool {
    if a.thread == b.thread {
        return false;
    }
    match (&inner.threads[a.thread], &inner.threads[b.thread]) {
        (ThreadId::Lane { group: g1, .. }, ThreadId::Lane { group: g2, .. }) if g1 == g2 => {
            // Same group: phases are barrier-separated unless the
            // (miscompiled) schedule dropped them.
            inner.barriers_dropped || a.epoch == b.epoch
        }
        _ => true,
    }
}

fn record(inner: &mut Inner, loc: MemLoc, prior: Access, now: Access, kind: RaceKind) {
    inner.conflicts += 1;
    let first = inner.threads[prior.thread].clone();
    let second = inner.threads[now.thread].clone();
    let level = level_of(&first, &second);
    if !inner.seen.insert((loc.space, loc.array, kind, level)) {
        return;
    }
    let array = match loc.space {
        MemSpace::Global => inner.global_names.get(loc.array as usize),
        MemSpace::Local => inner.local_names.get(loc.array as usize),
    }
    .cloned()
    .unwrap_or_else(|| format!("#{}", loc.array));
    inner.races.push(Race {
        kernel: inner.kernel.clone(),
        array,
        space: loc.space,
        index: loc.index,
        kind,
        first,
        second,
        level,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> RaceTracker {
        RaceTracker::new(
            "k",
            vec!["a".into(), "b".into()],
            vec!["sdata".into()],
            false,
        )
    }

    #[test]
    fn disjoint_iterations_do_not_race() {
        let t = tracker();
        for i in 0..4 {
            t.set_thread(Some(ThreadId::Iter(vec![i])));
            t.log_read(MemLoc::global(0, i));
            t.log_write(MemLoc::global(1, i), false);
        }
        assert!(t.races().is_empty());
        assert_eq!(t.accesses(), 8);
    }

    #[test]
    fn cross_iteration_read_write_is_flagged() {
        // iteration i reads a[i+1], writes a[i]: classic RW carried.
        let t = tracker();
        for i in 0..3 {
            t.set_thread(Some(ThreadId::Iter(vec![i])));
            t.log_read(MemLoc::global(0, i + 1));
            t.log_write(MemLoc::global(0, i), false);
        }
        let races = t.races();
        assert!(!races.is_empty());
        let r = &races[0];
        assert_eq!(r.kind, RaceKind::ReadWrite);
        assert_eq!(r.array, "a");
        assert_eq!(r.level, Some(0));
        assert_ne!(r.first, r.second);
    }

    #[test]
    fn shared_accumulator_is_a_write_write_race() {
        let t = tracker();
        for i in 0..3 {
            t.set_thread(Some(ThreadId::Iter(vec![i])));
            t.log_read(MemLoc::global(0, 0));
            t.log_write(MemLoc::global(0, 0), false);
        }
        let kinds: BTreeSet<RaceKind> = t.races().iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RaceKind::WriteWrite));
        assert!(kinds.contains(&RaceKind::ReadWrite));
        let ww = t
            .races()
            .into_iter()
            .find(|r| r.kind == RaceKind::WriteWrite)
            .unwrap();
        assert_eq!(ww.first, ThreadId::Iter(vec![0]));
        assert_eq!(ww.second, ThreadId::Iter(vec![1]));
        assert!(ww.describe().contains("`a`[0]"));
    }

    #[test]
    fn atomic_updates_synchronize() {
        let t = tracker();
        for i in 0..4 {
            t.set_thread(Some(ThreadId::Iter(vec![i])));
            t.log_write(MemLoc::global(0, 0), true);
        }
        assert!(t.races().is_empty());
        // …but a plain write against them still races.
        t.set_thread(Some(ThreadId::Iter(vec![9])));
        t.log_write(MemLoc::global(0, 0), false);
        assert_eq!(t.races()[0].kind, RaceKind::WriteWrite);
    }

    #[test]
    fn barrier_separated_phases_do_not_race() {
        // Lane 0 writes sdata[1] in phase 0; lane 1 reads it in
        // phase 1 — the classic staged-reduction handoff.
        let t = tracker();
        t.set_epoch(0);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 0 }));
        t.log_write(MemLoc::local(0, 0, 1), false);
        t.set_epoch(1);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 1 }));
        t.log_read(MemLoc::local(0, 0, 1));
        assert!(t.races().is_empty());
    }

    #[test]
    fn same_phase_lane_conflict_is_flagged() {
        let t = tracker();
        t.set_epoch(0);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 0 }));
        t.log_write(MemLoc::local(0, 0, 1), false);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 1 }));
        t.log_read(MemLoc::local(0, 0, 1));
        let races = t.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].array, "sdata");
        // Same group: below the parallel loop, no nest level.
        assert_eq!(races[0].level, None);
    }

    #[test]
    fn dropped_barriers_expose_phase_conflicts() {
        let t = RaceTracker::new("k", vec!["a".into()], vec!["sdata".into()], true);
        t.set_epoch(0);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 0 }));
        t.log_write(MemLoc::local(0, 0, 1), false);
        t.set_epoch(1);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 1 }));
        t.log_read(MemLoc::local(0, 0, 1));
        assert_eq!(t.races().len(), 1);
    }

    #[test]
    fn cross_group_conflicts_ignore_phases() {
        let t = tracker();
        t.set_epoch(0);
        t.set_thread(Some(ThreadId::Lane { group: 0, lane: 0 }));
        t.log_write(MemLoc::global(0, 7), false);
        t.set_epoch(1);
        t.set_thread(Some(ThreadId::Lane { group: 1, lane: 0 }));
        t.log_write(MemLoc::global(0, 7), false);
        let races = t.races();
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].level, Some(0));
    }

    #[test]
    fn nest_level_attribution_uses_first_differing_component() {
        let t = tracker();
        t.set_thread(Some(ThreadId::Iter(vec![2, 0])));
        t.log_write(MemLoc::global(0, 5), false);
        t.set_thread(Some(ThreadId::Iter(vec![2, 1])));
        t.log_write(MemLoc::global(0, 5), false);
        assert_eq!(t.races()[0].level, Some(1));
    }

    #[test]
    fn accesses_outside_a_thread_are_not_logged() {
        let t = tracker();
        t.log_write(MemLoc::global(0, 0), false);
        t.set_thread(Some(ThreadId::Iter(vec![0])));
        t.log_write(MemLoc::global(0, 0), false);
        t.set_thread(None);
        t.log_write(MemLoc::global(0, 0), false);
        assert!(t.races().is_empty());
        assert_eq!(t.accesses(), 1);
    }

    #[test]
    fn dedup_keeps_one_race_per_array_and_kind_but_counts_all() {
        let t = tracker();
        for i in 0..8 {
            t.set_thread(Some(ThreadId::Iter(vec![i])));
            t.log_write(MemLoc::global(0, 0), false);
        }
        assert_eq!(t.races().len(), 1);
        assert_eq!(t.conflicts(), 7);
    }
}
