//! Dynamic cost estimation: evaluating a compiled kernel's
//! [`CostTree`] against concrete loop bounds.
//!
//! The tree was built by the same emission pass that produced the
//! static PTX, so "dynamic instructions per parallel iteration" is the
//! static per-category mix weighted by trip counts — the quantity the
//! paper's static analysis cannot measure ("the analysis only
//! considers a static count … and cannot actually count the number of
//! actually executed instructions") but that the timing model needs.
//!
//! Loop bounds may reference program parameters, host loop variables
//! and outer *parallel* variables (triangular nests); parallel
//! variables are sampled at `{lo, mid, hi-1}` and averaged. Bounds
//! that cannot be evaluated at all (BFS's data-dependent edge ranges)
//! fall back to a per-kernel trip hint.

use paccport_compilers::{CostNode, CostTree, KernelPlan};
use paccport_ir::expr::{BinOp, CmpOp, Expr, UnOp};
use paccport_ir::{Kernel, Program, VarId};
use paccport_ptx::{Category, CATEGORIES};
use std::collections::BTreeMap;

use crate::interp::V;

/// Averaged dynamic instruction mix (per parallel iteration).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DynCost {
    pub cats: [f64; CATEGORIES.len()],
    /// Global-memory transactions (4 bytes each).
    pub ldst: f64,
}

impl DynCost {
    pub fn from_counts(c: &paccport_ptx::CategoryCounts, ldst: u64) -> Self {
        DynCost {
            cats: c.as_f64(),
            ldst: ldst as f64,
        }
    }

    pub fn add_scaled(&mut self, other: &DynCost, w: f64) {
        for (a, b) in self.cats.iter_mut().zip(other.cats.iter()) {
            *a += b * w;
        }
        self.ldst += other.ldst * w;
    }

    /// Total issue slots (all categories; sync barely matters).
    pub fn issue_slots(&self) -> f64 {
        self.cats.iter().sum()
    }

    /// Bytes of global-memory traffic (4-byte transactions).
    pub fn mem_bytes(&self) -> f64 {
        self.ldst * 4.0
    }

    pub fn get(&self, c: Category) -> f64 {
        self.cats[c.index()]
    }
}

/// Workload-supplied estimation hints.
#[derive(Debug, Clone, Default)]
pub struct CostHints {
    /// Probability of taking the `then` arm, per `(kernel, branch
    /// DFS index)`. Default 0.5.
    pub branch_weights: BTreeMap<(String, usize), f64>,
    /// Fallback trip count for loops whose bounds are data-dependent,
    /// per kernel (BFS's average out-degree). Default 8.
    pub trip_fallbacks: BTreeMap<String, f64>,
}

impl CostHints {
    pub fn branch_weight(&self, kernel: &str, idx: usize) -> f64 {
        self.branch_weights
            .get(&(kernel.to_string(), idx))
            .copied()
            .unwrap_or(0.5)
    }

    pub fn trip_fallback(&self, kernel: &str) -> f64 {
        self.trip_fallbacks.get(kernel).copied().unwrap_or(8.0)
    }

    pub fn with_branch(mut self, kernel: &str, idx: usize, w: f64) -> Self {
        self.branch_weights.insert((kernel.into(), idx), w);
        self
    }

    pub fn with_trips(mut self, kernel: &str, t: f64) -> Self {
        self.trip_fallbacks.insert(kernel.into(), t);
        self
    }
}

/// Public wrapper over [`try_eval`] for other modules (the runner's
/// timing-only host evaluation).
pub fn try_eval_pub(e: &Expr, params: &[V], vars: &BTreeMap<VarId, f64>) -> Option<f64> {
    try_eval(e, params, vars)
}

/// Best-effort scalar evaluation of a bound expression: `None` when it
/// touches memory or an unbound variable.
fn try_eval(e: &Expr, params: &[V], vars: &BTreeMap<VarId, f64>) -> Option<f64> {
    try_eval_mode(e, params, vars, false)
}

/// Lenient evaluation: unbound variables and work-group builtins read
/// as 0 (a lower-corner estimate — correct for strided reduction
/// loops whose start is `lo + tid`), but memory loads still fail.
fn try_eval_lenient(e: &Expr, params: &[V], vars: &BTreeMap<VarId, f64>) -> Option<f64> {
    try_eval_mode(e, params, vars, true)
}

fn try_eval_mode(
    e: &Expr,
    params: &[V],
    vars: &BTreeMap<VarId, f64>,
    lenient: bool,
) -> Option<f64> {
    match e {
        Expr::FConst(v) => Some(*v),
        Expr::IConst(v) => Some(*v as f64),
        Expr::BConst(v) => Some(*v as i64 as f64),
        Expr::Param(id) => Some(params[id.0 as usize].as_f()),
        Expr::Var(id) => vars
            .get(id)
            .copied()
            .or(if lenient { Some(0.0) } else { None }),
        Expr::Special(_) => {
            if lenient {
                Some(0.0)
            } else {
                None
            }
        }
        Expr::Load { .. } => None,
        Expr::Un(op, a) => {
            let a = try_eval_mode(a, params, vars, lenient)?;
            Some(match op {
                UnOp::Neg => -a,
                UnOp::Abs => a.abs(),
                UnOp::Rcp => 1.0 / a,
                UnOp::Sqrt => a.sqrt(),
                UnOp::Not => (a == 0.0) as i64 as f64,
                UnOp::Exp => a.exp(),
            })
        }
        Expr::Bin(op, a, b) => {
            let a = try_eval_mode(a, params, vars, lenient)?;
            let b = try_eval_mode(b, params, vars, lenient)?;
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if (a.fract() == 0.0) && (b.fract() == 0.0) && b != 0.0 {
                        ((a as i64) / (b as i64)) as f64
                    } else {
                        a / b
                    }
                }
                BinOp::Rem => {
                    if b == 0.0 {
                        return None;
                    }
                    ((a as i64) % (b as i64)) as f64
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::And => ((a != 0.0) && (b != 0.0)) as i64 as f64,
                BinOp::Or => ((a != 0.0) || (b != 0.0)) as i64 as f64,
                BinOp::Shl => ((a as i64) << (b as i64)) as f64,
                BinOp::Shr => ((a as i64) >> (b as i64)) as f64,
            })
        }
        Expr::Cmp(op, a, b) => {
            let a = try_eval_mode(a, params, vars, lenient)?;
            let b = try_eval_mode(b, params, vars, lenient)?;
            let r = match op {
                CmpOp::Eq => a == b,
                CmpOp::Ne => a != b,
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Gt => a > b,
                CmpOp::Ge => a >= b,
            };
            Some(r as i64 as f64)
        }
        Expr::Fma(a, b, c) => Some(
            try_eval_mode(a, params, vars, lenient)? * try_eval_mode(b, params, vars, lenient)?
                + try_eval_mode(c, params, vars, lenient)?,
        ),
        Expr::Select(c, a, b) => {
            if try_eval_mode(c, params, vars, lenient)? != 0.0 {
                try_eval_mode(a, params, vars, lenient)
            } else {
                try_eval_mode(b, params, vars, lenient)
            }
        }
        Expr::Cast(_, a) => try_eval_mode(a, params, vars, lenient),
    }
}

struct TreeEval<'a> {
    kernel: &'a str,
    params: &'a [V],
    hints: &'a CostHints,
    branch_idx: usize,
}

impl TreeEval<'_> {
    fn eval(&mut self, t: &CostTree, vars: &mut BTreeMap<VarId, f64>) -> DynCost {
        let mut out = DynCost::from_counts(&t.flat, t.flat_ldst);
        for kid in &t.kids {
            match kid {
                CostNode::Loop {
                    var,
                    lo,
                    hi,
                    step,
                    overhead,
                    body,
                } => {
                    let lo_v = try_eval(lo, self.params, vars)
                        .or_else(|| try_eval_lenient(lo, self.params, vars));
                    let hi_v = try_eval(hi, self.params, vars)
                        .or_else(|| try_eval_lenient(hi, self.params, vars));
                    let trips = match (lo_v, hi_v) {
                        (Some(l), Some(h)) => ((h - l) / *step as f64).ceil().max(0.0),
                        _ => self.hints.trip_fallback(self.kernel),
                    };
                    // Bind the loop var to its midpoint for the body.
                    let mid = match (lo_v, hi_v) {
                        (Some(l), Some(h)) => (l + h) / 2.0,
                        _ => self.hints.trip_fallback(self.kernel) / 2.0,
                    };
                    let saved = vars.insert(*var, mid);
                    let body_cost = self.eval(body, vars);
                    match saved {
                        Some(v) => {
                            vars.insert(*var, v);
                        }
                        None => {
                            vars.remove(var);
                        }
                    }
                    let mut per_iter = body_cost;
                    per_iter.add_scaled(&DynCost::from_counts(overhead, 0), 1.0);
                    out.add_scaled(&per_iter, trips);
                }
                CostNode::Branch { then, els } => {
                    let w = self.hints.branch_weight(self.kernel, self.branch_idx);
                    self.branch_idx += 1;
                    let t_cost = self.eval(then, vars);
                    let e_cost = self.eval(els, vars);
                    out.add_scaled(&t_cost, w);
                    out.add_scaled(&e_cost, 1.0 - w);
                }
            }
        }
        out
    }
}

/// Average per-parallel-iteration dynamic cost of a kernel launch.
///
/// `host_vars` binds host loop variables currently in scope;
/// `dist_rank` says how many parallel loops are distributed (their
/// variables are sampled when the cost depends on them).
pub fn kernel_dyn_cost(
    _program: &Program,
    kernel: &Kernel,
    plan: &KernelPlan,
    dist_rank: usize,
    params: &[V],
    host_vars: &BTreeMap<VarId, f64>,
    hints: &CostHints,
) -> DynCost {
    // Sample points for distributed parallel variables whose value the
    // cost may depend on (triangular serialized loops).
    let mut samples: Vec<BTreeMap<VarId, f64>> = vec![host_vars.clone()];
    for lp in kernel.loops.iter().take(dist_rank) {
        let mut next = Vec::new();
        for s in &samples {
            let lo = try_eval(&lp.lo, params, s).unwrap_or(0.0);
            let hi = try_eval(&lp.hi, params, s).unwrap_or(lo + 1.0);
            let mut points = vec![lo, (lo + hi) / 2.0, (hi - 1.0).max(lo)];
            points.dedup_by(|a, b| a == b);
            for pt in points {
                let mut m = s.clone();
                m.insert(lp.var, pt);
                next.push(m);
            }
        }
        // Cap combinatorial growth.
        next.truncate(9);
        samples = next;
    }
    let mut acc = DynCost::default();
    let n = samples.len().max(1) as f64;
    for mut s in samples {
        let mut ev = TreeEval {
            kernel: &plan.kernel,
            params,
            hints,
            branch_idx: 0,
        };
        let c = ev.eval(&plan.cost, &mut s);
        acc.add_scaled(&c, 1.0 / n);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_compilers::{compile, CompileOptions, CompilerId};
    use paccport_ir::{
        assign, for_, ld, let_, st, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar,
        E,
    };

    /// Build `out[i] = sum_{k<n} x[k]` and check the dynamic cost
    /// scales linearly with n.
    #[test]
    fn dynamic_cost_scales_with_trip_count() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let i = b.var("i");
        let kv = b.var("k");
        let s = b.var("s");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "sum",
            vec![lp],
            paccport_ir::Block::new(vec![
                let_(s, Scalar::F32, 0.0),
                for_(
                    kv,
                    0i64,
                    E::from(n),
                    vec![assign(s, E::from(s) + ld(x, kv))],
                ),
                st(out, i, E::from(s)),
            ]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("sum").unwrap();
        let kernel = c.program.kernel("sum").unwrap();

        let cost_at = |nv: i64| {
            kernel_dyn_cost(
                &c.program,
                kernel,
                plan,
                1,
                &[V::I(nv)],
                &BTreeMap::new(),
                &CostHints::default(),
            )
        };
        let c64 = cost_at(64);
        let c128 = cost_at(128);
        let ratio = c128.issue_slots() / c64.issue_slots();
        assert!(
            (ratio - 2.0).abs() < 0.2,
            "expected ~2x scaling, got {ratio}"
        );
        // One global load per inner iteration + one store.
        assert!((c64.ldst - 65.0).abs() < 2.0, "ldst {}", c64.ldst);
    }

    #[test]
    fn branch_weight_hint_changes_cost() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "guarded",
            vec![lp],
            paccport_ir::Block::new(vec![paccport_ir::if_(
                ld(x, i).gt(0.0),
                vec![st(x, i, ld(x, i) * 2.0), st(x, i, ld(x, i) * 3.0)],
            )]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("guarded").unwrap();
        let kernel = c.program.kernel("guarded").unwrap();
        let cost_with = |h: CostHints| {
            kernel_dyn_cost(
                &c.program,
                kernel,
                plan,
                1,
                &[V::I(64)],
                &BTreeMap::new(),
                &h,
            )
        };
        let dflt = cost_with(CostHints::default());
        let rare = cost_with(CostHints::default().with_branch("guarded", 0, 0.01));
        assert!(dflt.issue_slots() > rare.issue_slots());
    }

    #[test]
    fn data_dependent_bounds_use_trip_fallback() {
        // for e in nodes[i]..nodes[i]+deg — unanalyzable bounds.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let nodes = b.array("nodes", Scalar::I32, n, Intent::In);
        let out = b.array("out", Scalar::F32, n, Intent::Out);
        let i = b.var("i");
        let e = b.var("e");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "edges",
            vec![lp],
            paccport_ir::Block::new(vec![for_(
                e,
                ld(nodes, i),
                ld(nodes, i) + 4i64,
                vec![st(out, i, 1.0)],
            )]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let plan = c.plan("edges").unwrap();
        let kernel = c.program.kernel("edges").unwrap();
        let cost_with = |t: f64| {
            kernel_dyn_cost(
                &c.program,
                kernel,
                plan,
                1,
                &[V::I(64)],
                &BTreeMap::new(),
                &CostHints::default().with_trips("edges", t),
            )
            .issue_slots()
        };
        assert!(cost_with(100.0) > cost_with(2.0) * 3.0);
    }
}
