//! The roofline timing model: launch time = max(compute, memory) +
//! overhead, with parallelism ramps, warp-utilization and gentle
//! bandwidth contention.

use crate::device::{DeviceSpec, ParallelUnit};
use crate::dyncost::DynCost;
use paccport_compilers::{ExecStrategy, KernelPlan, LaunchDims};

/// Warp/SIMD utilization of a block shape: threads per block divided
/// by the warp-rounded thread count. Work-group-scheduled devices
/// (MIC) execute groups scalar-per-core, so the notion does not apply.
pub fn warp_efficiency(spec: &DeviceSpec, dims: &LaunchDims) -> f64 {
    if spec.parallel_unit == ParallelUnit::WorkGroups {
        return 1.0;
    }
    let tpb = dims.threads_per_block().max(1) as f64;
    let w = spec.warp_width.max(1) as f64;
    tpb / ((tpb / w).ceil() * w)
}

/// How many independent schedulable units a launch supplies.
pub fn parallel_units(spec: &DeviceSpec, dims: &LaunchDims) -> f64 {
    match spec.parallel_unit {
        ParallelUnit::Threads => dims.total_threads() as f64 * warp_efficiency(spec, dims),
        // One work-group per core thread; the items inside run
        // sequentially on it (KNC OpenCL).
        ParallelUnit::WorkGroups => dims
            .grid
            .iter()
            .map(|g| *g as f64)
            .product::<f64>()
            .max(1.0),
    }
}

/// Achievable instruction throughput (instr/s) for a launch.
pub fn compute_rate(spec: &DeviceSpec, dims: &LaunchDims) -> f64 {
    let eff = warp_efficiency(spec, dims);
    let units = parallel_units(spec, dims);
    let resident = units.min(spec.max_concurrent_threads as f64);
    (resident * spec.single_thread_ips).min(spec.peak_ips * eff)
}

/// Fraction of peak memory bandwidth achieved by a launch: ramps up
/// with concurrency, saturates at `mem_sat_threads`, then degrades as
/// `(sat/units)^contention_exp` under oversubscription.
pub fn bw_fraction(spec: &DeviceSpec, dims: &LaunchDims) -> f64 {
    // Memory concurrency counts *real* threads (every thread's
    // requests occupy the memory system, warp fill notwithstanding);
    // on work-group-scheduled devices it is the group count.
    let raw = match spec.parallel_unit {
        ParallelUnit::Threads => dims.total_threads() as f64,
        ParallelUnit::WorkGroups => dims.grid.iter().map(|g| *g as f64).product::<f64>(),
    };
    let units = raw.min(spec.max_concurrent_threads as f64).max(1.0);
    let sat = spec.mem_sat_threads;
    let ramp = if units <= sat {
        units / sat
    } else {
        (sat / units).powf(spec.contention_exp)
    };
    // Block-shape term (thread-scheduled GPUs only): at equal total
    // thread counts, many small blocks spread across more SMs and
    // suffer less intra-SM cache thrash than few large ones — the
    // effect behind the paper's "(gang ≥ 256, worker 16)" optimum for
    // the memory-bound LUD (Section V-A2, Fig. 4).
    let shape = if spec.parallel_unit == ParallelUnit::Threads && spec.warp_width > 1 {
        let tpb = dims.threads_per_block().max(1) as f64;
        (spec.warp_width as f64 / tpb).powf(0.05).clamp(0.9, 1.1)
    } else {
        1.0
    };
    ramp * shape
}

/// Modeled time of one kernel launch.
///
/// * `n_par` — number of parallel iterations the cost tree is "per"
///   (the distributed-iteration count; 1 for fully serialized runs).
/// * `per_iter` — averaged dynamic cost per parallel iteration.
/// * `host` — the host CPU spec, used for host-fallback execution.
pub fn kernel_launch_time(
    spec: &DeviceSpec,
    host: &DeviceSpec,
    plan: &KernelPlan,
    dims: &LaunchDims,
    n_par: u64,
    per_iter: &DynCost,
) -> f64 {
    paccport_trace::add("timing.kernel_launches", 1);
    // Per-launch simulated hardware counters: SIMD lane fill and
    // resident-thread occupancy — the divergence/occupancy numbers a
    // real profiler would report for this launch shape.
    if paccport_trace::metrics::metrics_enabled() && plan.exec == ExecStrategy::DeviceParallel {
        let eff = warp_efficiency(spec, dims);
        let units = parallel_units(spec, dims);
        let occupancy = (units.min(spec.max_concurrent_threads as f64)
            / spec.max_concurrent_threads as f64)
            .clamp(0.0, 1.0);
        paccport_trace::metrics::observe("devsim_warp_efficiency", &[("device", &spec.name)], eff);
        paccport_trace::metrics::observe("devsim_occupancy", &[("device", &spec.name)], occupancy);
        if eff < 1.0 {
            paccport_trace::metrics::counter_add(
                "devsim_divergent_launches_total",
                &[("device", &spec.name)],
                1,
            );
        }
    }
    let total_issue =
        n_par as f64 * per_iter.issue_slots() + dims.total_threads() as f64 * prologue_slots(plan);
    let total_bytes = n_par as f64 * per_iter.mem_bytes();
    let t = match plan.exec {
        ExecStrategy::HostSequential => total_issue / host.single_thread_ips,
        ExecStrategy::DeviceSequential => {
            total_issue / spec.single_thread_ips + spec.launch_overhead_s
        }
        ExecStrategy::DeviceParallel => {
            let compute = total_issue / compute_rate(spec, dims);
            let mem = total_bytes / (spec.mem_bw * bw_fraction(spec, dims));
            compute.max(mem) + spec.launch_overhead_s
        }
    };
    t * plan.perf_penalty
}

fn prologue_slots(plan: &KernelPlan) -> f64 {
    plan.prologue.total() as f64
}

/// Modeled time of one host↔device transfer of `bytes`.
pub fn transfer_time(spec: &DeviceSpec, bytes: u64) -> f64 {
    paccport_trace::add("timing.transfers", 1);
    paccport_trace::add("timing.transfer_bytes", bytes);
    spec.link_latency_s + bytes as f64 / spec.link_bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{host_cpu, k40, phi5110p};
    use paccport_compilers::{Correctness, CostTree, DistSpec, HostCompiler, KernelPlan};
    use paccport_ptx::{Category, CategoryCounts};

    fn plan(exec: ExecStrategy) -> KernelPlan {
        KernelPlan {
            kernel: "k".into(),
            exec,
            dist: DistSpec::PgiAuto { vector: 128 },
            prologue: CategoryCounts::default(),
            cost: CostTree::default(),
            correctness: Correctness::Correct,
            config_label: "128x1".into(),
            perf_penalty: 1.0,
        }
    }

    fn cost(instr: f64, ldst: f64) -> DynCost {
        let mut c = CategoryCounts::default();
        c.add_n(Category::Arithmetic, instr as u64);
        DynCost::from_counts(&c, ldst as u64)
    }

    #[test]
    fn parallel_beats_sequential_by_orders_of_magnitude() {
        let gpu = k40();
        let host = host_cpu(HostCompiler::Gcc);
        let n: u64 = 1 << 22;
        let per = cost(20.0, 2.0);
        let par = plan(ExecStrategy::DeviceParallel);
        let seq = plan(ExecStrategy::DeviceSequential);
        let dims_par = DistSpec::PgiAuto { vector: 128 }.launch_dims(&[n]);
        let dims_seq = DistSpec::Sequential.launch_dims(&[n]);
        let t_par = kernel_launch_time(&gpu, &host, &par, &dims_par, n, &per);
        let t_seq = kernel_launch_time(&gpu, &host, &seq, &dims_seq, n, &per);
        let speedup = t_seq / t_par;
        assert!(
            speedup > 300.0 && speedup < 30000.0,
            "speedup {speedup} out of the paper's band"
        );
    }

    #[test]
    fn mic_single_thread_beats_gpu_single_thread() {
        let gpu = k40();
        let mic = phi5110p();
        let host = host_cpu(HostCompiler::Gcc);
        let per = cost(50.0, 4.0);
        let seq = plan(ExecStrategy::DeviceSequential);
        let dims = DistSpec::Sequential.launch_dims(&[1 << 20]);
        let t_gpu = kernel_launch_time(&gpu, &host, &seq, &dims, 1 << 20, &per);
        let t_mic = kernel_launch_time(&mic, &host, &seq, &dims, 1 << 20, &per);
        assert!(
            t_mic < t_gpu,
            "sequential code must run faster on MIC ({t_mic} vs {t_gpu})"
        );
    }

    #[test]
    fn memory_bound_kernels_prefer_moderate_worker_counts() {
        // The Fig. 4 shape: for a memory-bound kernel, gang 256 ×
        // worker 16 beats both worker 8 (bandwidth not saturated) and
        // worker 64 (contention).
        let gpu = k40();
        let host = host_cpu(HostCompiler::Gcc);
        let par = plan(ExecStrategy::DeviceParallel);
        let n: u64 = 4096 * 4096;
        let per = cost(6.0, 3.0); // memory-bound mix
        let t = |worker: u32| {
            let d = DistSpec::GangWorker { gang: 256, worker };
            let dims = d.launch_dims(&[n]);
            kernel_launch_time(&gpu, &host, &par, &dims, n, &per)
        };
        let t8 = t(8);
        let t16 = t(16);
        let t64 = t(64);
        assert!(t16 < t8, "worker16 {t16} should beat worker8 {t8}");
        assert!(t16 < t64, "worker16 {t16} should beat worker64 {t64}");
    }

    #[test]
    fn warp_efficiency_penalizes_ragged_blocks() {
        let gpu = k40();
        let full = DistSpec::PgiAuto { vector: 128 }.launch_dims(&[1 << 20]);
        let ragged = DistSpec::GangWorker {
            gang: 256,
            worker: 48,
        }
        .launch_dims(&[1 << 20]);
        assert_eq!(warp_efficiency(&gpu, &full), 1.0);
        assert!(warp_efficiency(&gpu, &ragged) < 0.8);
    }

    #[test]
    fn icc_host_is_faster_than_gcc_host() {
        let gpu = k40();
        let hostg = host_cpu(HostCompiler::Gcc);
        let hosti = host_cpu(HostCompiler::Intel);
        let p = plan(ExecStrategy::HostSequential);
        let dims = DistSpec::Sequential.launch_dims(&[1]);
        let per = cost(100.0, 0.0);
        let tg = kernel_launch_time(&gpu, &hostg, &p, &dims, 1 << 20, &per);
        let ti = kernel_launch_time(&gpu, &hosti, &p, &dims, 1 << 20, &per);
        assert!(ti < tg);
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let gpu = k40();
        let tiny = transfer_time(&gpu, 4);
        let big = transfer_time(&gpu, 1 << 30);
        assert!(tiny >= gpu.link_latency_s);
        assert!(big > 0.15, "1 GiB over ~6 GB/s takes > 150 ms, got {big}");
    }

    #[test]
    fn perf_penalty_multiplies() {
        let gpu = k40();
        let host = host_cpu(HostCompiler::Gcc);
        let mut p = plan(ExecStrategy::DeviceParallel);
        let dims = DistSpec::PgiAuto { vector: 128 }.launch_dims(&[1 << 16]);
        let per = cost(20.0, 2.0);
        let t1 = kernel_launch_time(&gpu, &host, &p, &dims, 1 << 16, &per);
        p.perf_penalty = 128.0;
        let t2 = kernel_launch_time(&gpu, &host, &p, &dims, 1 << 16, &per);
        assert!((t2 / t1 - 128.0).abs() < 1e-6);
    }
}
