//! `nvprof`-style run profiles — the instrumentation view the paper's
//! authors used to discover that PGI's BFS kernels never reached the
//! GPU (`PGI_ACC_TIME=1` + nvprof, Section V-C1).

use crate::runner::RunResult;
use std::fmt::Write;

/// Render a per-kernel profile table for a finished run.
pub fn render_profile(r: &RunResult) -> String {
    let mut out = String::new();
    let total: f64 = r
        .kernel_stats
        .iter()
        .map(|s| s.device_time)
        .sum::<f64>()
        .max(1e-30);
    let _ = writeln!(
        out,
        "{:<22}{:>9}{:>13}{:>8}{:>10}  executed on",
        "kernel", "launches", "time", "%", "threads"
    );
    for _ in 0..76 {
        out.push('-');
    }
    out.push('\n');
    for s in &r.kernel_stats {
        let _ = writeln!(
            out,
            "{:<22}{:>9}{:>13}{:>7.1}%{:>10}  {}",
            s.name,
            s.launches,
            format_time(s.device_time),
            100.0 * s.device_time / total,
            s.config_label,
            if s.ran_on_device {
                "device"
            } else {
                "HOST (never launched)"
            }
        );
    }
    let _ = writeln!(
        out,
        "\nmemcpy: {} HtoD ({:.1} MB), {} DtoH ({:.1} MB), {} of wall time",
        r.transfers.h2d_count,
        r.transfers.h2d_bytes as f64 / 1e6,
        r.transfers.d2h_count,
        r.transfers.d2h_bytes as f64 / 1e6,
        format_time(r.transfer_time_s),
    );
    let _ = writeln!(
        out,
        "wall: {} (kernels {}, transfers {}, host {})",
        format_time(r.elapsed),
        format_time(r.kernel_time),
        format_time(r.transfer_time_s),
        format_time(r.host_time),
    );
    out
}

fn format_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_compilers::{compile, CompileOptions, CompilerId};
    use paccport_ir::{
        ld, st, Expr, HostStmt, Intent, Kernel, ParallelLoop, ProgramBuilder, Scalar, E,
    };

    #[test]
    fn profile_shows_host_fallback_prominently() {
        // A PGI-refused kernel must be flagged, as nvprof's silence
        // flagged it for the paper's authors.
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let idx = b.array("idx", Scalar::I32, n, Intent::In);
        let out_arr = b.array("out", Scalar::F32, n, Intent::Out);
        let i = b.var("i");
        let mut lp = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        lp.clauses.independent = true;
        let k = Kernel::simple(
            "scatter",
            vec![lp],
            paccport_ir::Block::new(vec![st(out_arr, ld(idx, i), 1.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let c = compile(CompilerId::Pgi, &p, &CompileOptions::gpu()).unwrap();
        let r = crate::runner::run(
            &c,
            &crate::runner::RunConfig::timing(vec![("n".into(), 1000.0)], 1),
        )
        .unwrap();
        let text = render_profile(&r);
        assert!(text.contains("HOST (never launched)"), "{text}");
        assert!(text.contains("scatter"));
        assert!(text.contains("memcpy"));
    }

    #[test]
    fn profile_percentages_sum_to_one_hundred_ish() {
        let mut b = ProgramBuilder::new("p");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let j = b.var("j");
        let mut l1 = ParallelLoop::new(i, Expr::iconst(0), Expr::param(n));
        l1.clauses.independent = true;
        let mut l2 = ParallelLoop::new(j, Expr::iconst(0), Expr::param(n));
        l2.clauses.independent = true;
        let k1 = Kernel::simple("k1", vec![l1], paccport_ir::Block::new(vec![st(a, i, 1.0)]));
        let k2 = Kernel::simple(
            "k2",
            vec![l2],
            paccport_ir::Block::new(vec![st(a, j, ld(a, E::from(j)) + 1.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k1), HostStmt::Launch(k2)]);
        let c = compile(CompilerId::Caps, &p, &CompileOptions::gpu()).unwrap();
        let r = crate::runner::run(
            &c,
            &crate::runner::RunConfig::timing(vec![("n".into(), 1e6)], 1),
        )
        .unwrap();
        let text = render_profile(&r);
        let total: f64 = text
            .lines()
            .filter(|l| l.contains('%'))
            .filter_map(|l| {
                l.split_whitespace()
                    .find(|t| t.ends_with('%'))
                    .and_then(|t| t.trim_end_matches('%').parse::<f64>().ok())
            })
            .sum();
        assert!((total - 100.0).abs() < 1.0, "{total} — {text}");
    }
}
