//! Named, hand-written conformance cases.
//!
//! Every bug the project has found by hand gets pinned here as a
//! first-class [`Case`], so the differential harness re-checks it on
//! every run alongside the random stream:
//!
//! * `lone_store` — the kernel shape whose single store used to be
//!   paired with itself by the static dependence analysis;
//! * `if_scope` — branch-local `Let` bindings around the validator's
//!   save/restore of the defined-variable set;
//! * `caps_mic_reduction` / `grouped_tree_sum` — the CAPS
//!   `reduction`-on-MIC miscompilation, which must classify as
//!   *expected* divergence (if the quirk model stopped firing, the
//!   corpus test fails — silent passes are regressions too);
//! * `saxpy_update_sandwich` — `update host`/`update device` inside a
//!   data region, the Table VII transfer pattern;
//! * `whileflag_countdown` — the BFS-style dynamic convergence loop;
//! * `neg_zero_identity` — `-0.0` through the float-zero identities
//!   that `simplify` used to fold inexactly;
//! * `grouped_i32_reduction` — an `I32` accumulator through
//!   `reduction_to_grouped`, whose shared buffer used to be hardcoded
//!   to `F32`.

use crate::generate::Case;
use paccport_devsim::Buffer;
use paccport_ir::builder::ProgramBuilder;
use paccport_ir::kernel::{Kernel, ParallelLoop, ReduceOp, Reduction};
use paccport_ir::stmt::Block;
use paccport_ir::types::{Intent, Scalar};
use paccport_ir::{for_, if_else, ld, let_, st, Dir, Expr, HostStmt, E};

/// All named corpus cases.
pub fn corpus() -> Vec<(&'static str, Case)> {
    vec![
        ("lone_store", lone_store()),
        ("if_scope", if_scope()),
        ("caps_mic_reduction", caps_mic_reduction()),
        ("grouped_tree_sum", grouped_tree_sum()),
        ("saxpy_update_sandwich", saxpy_update_sandwich()),
        ("whileflag_countdown", whileflag_countdown()),
        ("neg_zero_identity", neg_zero_identity()),
        ("grouped_i32_reduction", grouped_i32_reduction()),
    ]
}

fn base_inputs(n: usize) -> Vec<(String, Buffer)> {
    vec![
        (
            "x".to_string(),
            Buffer::F32((0..n).map(|i| (i % 7 + 1) as f32).collect()),
        ),
        (
            "y".to_string(),
            Buffer::F32((0..n).map(|i| (i % 3 + 1) as f32).collect()),
        ),
    ]
}

/// A kernel whose whole body is one store: the shape whose write used
/// to be reported as depending on itself by the dependence analysis.
fn lone_store() -> Case {
    let mut b = ProgramBuilder::new("lone_store");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let k = Kernel::simple(
        "scale",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(y, i, ld(x, i) * E::from(3.0))]),
    );
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 0,
        program,
        params: vec![("n".to_string(), 6.0)],
        inputs: base_inputs(6),
    }
}

/// Branch-local `Let` bindings: each `If` arm defines its own scratch
/// variable, exercising the validator's save/restore of the defined
/// set around the two arms.
fn if_scope() -> Case {
    let mut b = ProgramBuilder::new("if_scope");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let t = b.var("t");
    let u = b.var("u");
    let w = b.var("w");
    let k = Kernel::simple(
        "branchy",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(t, Scalar::F32, ld(x, i)),
            if_else(
                E::from(t).gt(E::from(2.0)),
                vec![let_(u, Scalar::F32, E::from(t) * E::from(2.0)), st(y, i, u)],
                vec![let_(w, Scalar::F32, E::from(t) - E::from(0.5)), st(y, i, w)],
            ),
        ]),
    );
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 1,
        program,
        params: vec![("n".to_string(), 6.0)],
        inputs: base_inputs(6),
    }
}

/// The CAPS `reduction` recognition prefix. On the MIC target the
/// quirk model drops the shared-memory tree phases, so this case must
/// classify as expected divergence on `caps/5110P` — see the test
/// below, which pins exactly that.
fn caps_mic_reduction() -> Case {
    let mut b = ProgramBuilder::new("caps_mic_reduction");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let acc = b.var("acc");
    let kv = b.var("kv");
    let mut k = Kernel::simple(
        "dot",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(acc, Scalar::F32, 0.0f64),
            for_(
                kv,
                0i64,
                E::from(n),
                vec![paccport_ir::assign(acc, E::from(acc) + ld(x, kv))],
            ),
            st(y, i, acc),
        ]),
    );
    k.reduction = Some(Reduction {
        op: ReduceOp::Add,
        acc,
    });
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 2,
        program,
        params: vec![("n".to_string(), 6.0)],
        inputs: base_inputs(6),
    }
}

/// A hand-written 4-lane grouped tree sum (the OpenCL comparison
/// path). The interior phases are exactly what the CAPS MIC quirk
/// drops, so divergence there is expected — and the hand-OpenCL legs
/// must stay bitwise correct.
fn grouped_tree_sum() -> Case {
    use paccport_ir::expr::SpecialVar;
    use paccport_ir::kernel::{GroupedBody, KernelBody};
    use paccport_ir::types::{ArrayId, LocalArrayDecl};
    use paccport_ir::{if_, ld_local, st_local};

    let mut b = ProgramBuilder::new("grouped_tree_sum");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, E::from(n) * E::from(n), Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let g = b.var("g");
    let sdata = ArrayId(0); // index into the kernel-local table
    let lid = || E(Expr::Special(SpecialVar::LocalId(0)));
    let k = Kernel {
        name: "tree_sum".to_string(),
        loops: vec![ParallelLoop::new(g, Expr::iconst(0), Expr::param(n))],
        body: KernelBody::Grouped(GroupedBody {
            group_size: 4,
            locals: vec![LocalArrayDecl {
                name: "sdata".to_string(),
                elem: Scalar::F32,
                len: 4,
            }],
            phases: vec![
                Block::new(vec![st_local(
                    sdata,
                    lid(),
                    ld(x, E::from(g) * 4i64 + lid()),
                )]),
                Block::new(vec![if_(
                    lid().lt(2i64),
                    vec![st_local(
                        sdata,
                        lid(),
                        ld_local(sdata, lid()) + ld_local(sdata, lid() + 2i64),
                    )],
                )]),
                Block::new(vec![if_(
                    lid().lt(1i64),
                    vec![st_local(
                        sdata,
                        lid(),
                        ld_local(sdata, lid()) + ld_local(sdata, lid() + 1i64),
                    )],
                )]),
                Block::new(vec![if_(
                    lid().eq_(0i64),
                    vec![st(y, g, ld_local(sdata, 0i64))],
                )]),
            ],
        }),
        locals: Vec::new(),
        region_reduction: None,
        reduction: None,
        launch_hint: None,
    };
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 3,
        program,
        params: vec![("n".to_string(), 4.0)],
        inputs: vec![
            (
                "x".to_string(),
                Buffer::F32((0..16).map(|i| (i % 5 + 1) as f32).collect()),
            ),
            ("y".to_string(), Buffer::F32(vec![1.0; 4])),
        ],
    }
}

/// `update host(y)` / `update device(y)` around an affine kernel
/// inside a data region — the Table VII transfer pattern, asserted to
/// be value-neutral on every leg.
fn saxpy_update_sandwich() -> Case {
    let mut b = ProgramBuilder::new("saxpy_update_sandwich");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i1 = b.var("i1");
    let i2 = b.var("i2");
    let k1 = Kernel::simple(
        "ax1",
        vec![ParallelLoop::new(i1, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(y, i1, E::from(2.0) * ld(x, i1) + ld(y, i1))]),
    );
    let k2 = Kernel::simple(
        "ax2",
        vec![ParallelLoop::new(i2, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(y, i2, ld(y, i2) + E::from(0.5))]),
    );
    let program = b.finish(vec![HostStmt::DataRegion {
        arrays: vec![x, y],
        body: vec![
            HostStmt::Launch(k1),
            HostStmt::Update {
                array: y,
                dir: Dir::ToHost,
            },
            HostStmt::Update {
                array: y,
                dir: Dir::ToDevice,
            },
            HostStmt::Launch(k2),
        ],
    }]);
    Case {
        seed: 0,
        index: 4,
        program,
        params: vec![("n".to_string(), 5.0)],
        inputs: base_inputs(5),
    }
}

/// BFS-style convergence: launch work, then a countdown kernel that
/// decrements the host-checked flag. Terminates after `flag` initial
/// iterations on every leg — including the CAPS per-iteration
/// retransfer schedule.
fn whileflag_countdown() -> Case {
    let mut b = ProgramBuilder::new("whileflag_countdown");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let flag = b.array("flag", Scalar::I32, 1i64, Intent::InOut);
    let i = b.var("i");
    let c = b.var("c");
    let work = Kernel::simple(
        "work",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![st(y, i, ld(y, i) + ld(x, i))]),
    );
    let countdown = Kernel::simple(
        "countdown",
        vec![ParallelLoop::new(c, Expr::iconst(0), Expr::iconst(1))],
        Block::new(vec![st(flag, 0i64, (ld(flag, 0i64) - 1i64).max(0i64))]),
    );
    let program = b.finish(vec![HostStmt::WhileFlag {
        flag,
        max_iters: 5,
        body: vec![HostStmt::Launch(work), HostStmt::Launch(countdown)],
    }]);
    let mut inputs = base_inputs(5);
    inputs.push(("flag".to_string(), Buffer::I32(vec![2])));
    Case {
        seed: 0,
        index: 5,
        program,
        params: vec![("n".to_string(), 5.0)],
        inputs,
    }
}

/// `-0.0` flowing through the float-zero identities. `simplify` used
/// to fold `x + 0.0 → x`, which keeps `-0.0` where IEEE-754 produces
/// `+0.0` — a bit-level divergence on the `transform/simplify` leg.
/// Only `x - (+0.0)` may fold.
fn neg_zero_identity() -> Case {
    let mut b = ProgramBuilder::new("neg_zero_identity");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::F32, n, Intent::In);
    let y = b.array("y", Scalar::F32, n, Intent::InOut);
    let i = b.var("i");
    let t = b.var("t");
    let k = Kernel::simple(
        "wash",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            // `+ 0.0` must survive simplification: it maps -0.0 → +0.0.
            let_(t, Scalar::F32, ld(x, i) + E::from(0.0)),
            // `- 0.0` is the exact identity and is free to fold.
            st(y, i, E::from(t) - E::from(0.0)),
        ]),
    );
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 6,
        program,
        params: vec![("n".to_string(), 6.0)],
        inputs: vec![
            (
                "x".to_string(),
                Buffer::F32(vec![-0.0, 0.0, 1.5, -2.0, -0.0, 3.25]),
            ),
            ("y".to_string(), Buffer::F32(vec![1.0; 6])),
        ],
    }
}

/// An `I32`-accumulator reduction through the grouped rewrite. The
/// shared `sdata` buffer used to be hardcoded to `F32`, so partial
/// sums above 2^24 lost their low bits on the round trip through
/// local memory; values of 2^24 + 1 pin the divergence.
fn grouped_i32_reduction() -> Case {
    let mut b = ProgramBuilder::new("grouped_i32_reduction");
    let n = b.iparam("n");
    let x = b.array("x", Scalar::I32, n, Intent::In);
    let y = b.array("y", Scalar::I32, n, Intent::InOut);
    let i = b.var("i");
    let acc = b.var("acc");
    let kv = b.var("kv");
    let mut k = Kernel::simple(
        "isum",
        vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
        Block::new(vec![
            let_(acc, Scalar::I32, 0i64),
            for_(
                kv,
                0i64,
                E::from(n),
                vec![paccport_ir::assign(acc, E::from(acc) + ld(x, kv))],
            ),
            st(y, i, acc),
        ]),
    );
    k.reduction = Some(Reduction {
        op: ReduceOp::Add,
        acc,
    });
    let program = b.finish(vec![HostStmt::Launch(k)]);
    Case {
        seed: 0,
        index: 7,
        program,
        params: vec![("n".to_string(), 6.0)],
        inputs: vec![
            ("x".to_string(), Buffer::I32(vec![(1 << 24) + 1; 6])),
            ("y".to_string(), Buffer::I32(vec![0; 6])),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{assert_conforms, check_case, Outcome};

    #[test]
    fn every_corpus_case_validates_and_conforms() {
        for (name, case) in corpus() {
            paccport_ir::validate(&case.program)
                .unwrap_or_else(|e| panic!("corpus case {name} invalid: {e:?}"));
            assert_conforms(&case);
        }
    }

    /// The CAPS MIC reduction bug must be *expected* divergence — a
    /// silent pass there means the quirk model regressed.
    #[test]
    fn caps_mic_reduction_diverges_as_documented() {
        let legs = check_case(&caps_mic_reduction());
        let mic = legs
            .iter()
            .find(|l| l.label == "caps/5110P")
            .expect("caps/5110P leg must run");
        assert_eq!(
            mic.outcome,
            Outcome::ExpectedDivergence,
            "got {:?}",
            mic.outcome
        );
        let gpu = legs.iter().find(|l| l.label == "caps/K40").unwrap();
        assert_eq!(gpu.outcome, Outcome::Match, "got {:?}", gpu.outcome);
    }

    /// The `-0.0` case must stay an exact match on the `simplify`
    /// transform leg — the pre-fix fold turned it into a bit-level
    /// mismatch there.
    #[test]
    fn neg_zero_identity_survives_simplify_leg() {
        let legs = check_case(&neg_zero_identity());
        let leg = legs
            .iter()
            .find(|l| l.label == "transform/simplify")
            .expect("transform/simplify leg must run");
        assert_eq!(leg.outcome, Outcome::Match, "got {:?}", leg.outcome);
    }

    /// The I32 reduction must match bit-exactly on the GPU leg, where
    /// the grouped rewrite applies — the pre-fix F32 `sdata` lost the
    /// low bits of every 2^24 + 1 partial.
    #[test]
    fn grouped_i32_reduction_is_exact_on_gpu_legs() {
        let legs = check_case(&grouped_i32_reduction());
        let gpu = legs
            .iter()
            .find(|l| l.label == "caps/K40")
            .expect("caps/K40 leg must run");
        assert_eq!(gpu.outcome, Outcome::Match, "got {:?}", gpu.outcome);
    }

    #[test]
    fn grouped_tree_sum_diverges_only_on_caps_mic() {
        let legs = check_case(&grouped_tree_sum());
        for leg in &legs {
            match leg.label.as_str() {
                "caps/5110P" => assert_eq!(
                    leg.outcome,
                    Outcome::ExpectedDivergence,
                    "leg {}: {:?}",
                    leg.label,
                    leg.outcome
                ),
                "opencl/5110P" | "opencl/K40" | "opencl/FirePro" => assert_eq!(
                    leg.outcome,
                    Outcome::Match,
                    "leg {}: {:?}",
                    leg.label,
                    leg.outcome
                ),
                _ => {}
            }
        }
    }
}
