//! Differential conformance harness for the paccport IR.
//!
//! The simulator, the compiler personalities and the loop transforms
//! all claim to implement *the same language*. This crate checks that
//! claim mechanically, the way csmith checks C compilers:
//!
//! 1. [`oracle`] — a big-step reference interpreter over the IR with
//!    flat memory and no lowering. It is deliberately clause-blind:
//!    `gang`/`vector`/`tile` hints, data regions and `update`
//!    directives must not change observable values, so the oracle
//!    ignores them and anything that *does* change is a bug (or a
//!    modeled one).
//! 2. [`generate`] — a seeded generator of well-typed programs drawn
//!    from the paper's benchmark shapes, constrained so every compiler
//!    leg is *bitwise* comparable to the oracle.
//! 3. [`driver`] — runs each program through the oracle, the
//!    functional simulator, every compiler personality × device and
//!    every semantics-preserving transform, and classifies the
//!    outcome. Known-miscompilation quirks (the CAPS MIC reduction
//!    bug) must show up as *expected* divergence — silently passing
//!    would itself be a failure of the quirk model.
//! 4. [`shrink`] — greedy structural minimizer; failures are reported
//!    as the smallest program that still fails, printed by
//!    [`printer`] as a paste-ready regression test.
//!
//! [`corpus`] pins previously hand-found bugs as generated-program
//! regressions.

pub mod corpus;
pub mod driver;
pub mod generate;
pub mod oracle;
pub mod printer;
pub mod rng;
pub mod shrink;

pub use driver::{
    assert_conforms, check_case, failure_of, run_conformance, shrink_failure, Counterexample,
    FailKind, Failure, Leg, Outcome, Report,
};
pub use generate::{generate, Case};
pub use oracle::{run_oracle, OracleOutput};
pub use printer::case_to_test;
pub use shrink::shrink;
