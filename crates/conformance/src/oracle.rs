//! The reference oracle: a big-step interpreter over the directive IR
//! that is deliberately *clause-blind*.
//!
//! Where the device simulator routes every array access through a
//! host/device buffer pair, honours data-region transfer intents, and
//! executes whatever plan a simulated compiler produced (grouped
//! lowerings, host fallbacks, dropped phases), the oracle executes the
//! program *as written*: one flat memory, sequential loops in source
//! order, data directives as no-ops. It shares no code with
//! `paccport_devsim::interp` — that independence is the point of a
//! differential harness; a bug in common evaluation code would
//! otherwise cancel out of the comparison.
//!
//! Numeric semantics intentionally match the simulated devices
//! (f32 arithmetic when either operand is a float, f32 `fma`,
//! `Let`-coercion only), so a divergence against the simulator is a
//! *semantic* bug in a lowering or transform, never a rounding
//! mismatch. Unlike the simulator the oracle never panics: malformed
//! programs (out-of-bounds access, division by zero, undefined
//! variable reads, runaway loops) surface as `Err`, which the driver
//! and shrinker treat as "candidate rejected", not as a divergence.

use paccport_devsim::Buffer;
use paccport_ir::expr::{BinOp, CmpOp, Expr, SpecialVar, UnOp};
use paccport_ir::kernel::{Kernel, KernelBody, ReduceOp};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{MemSpace, Scalar};
use paccport_ir::{HostStmt, Program};

/// Hard cap on interpreted statements per program: generated programs
/// finish in a few thousand steps, so hitting this means a runaway
/// loop (reported as `Err`, never a hang).
const STEP_BUDGET: u64 = 50_000_000;

/// A runtime scalar value (the oracle's own — not `devsim::V`).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Val {
    I(i64),
    F(f64),
    B(bool),
}

impl Val {
    fn as_f(self) -> f64 {
        match self {
            Val::I(v) => v as f64,
            Val::F(v) => v,
            Val::B(v) => v as i64 as f64,
        }
    }
    fn as_i(self) -> i64 {
        match self {
            Val::I(v) => v,
            Val::F(v) => v as i64,
            Val::B(v) => v as i64,
        }
    }
    fn as_b(self) -> bool {
        match self {
            Val::I(v) => v != 0,
            Val::F(v) => v != 0.0,
            Val::B(v) => v,
        }
    }
    fn is_float(self) -> bool {
        matches!(self, Val::F(_))
    }
}

/// What the oracle says the program computes.
#[derive(Debug, Clone)]
pub struct OracleOutput {
    /// Final contents of every program array, by declaration order.
    pub arrays: Vec<Buffer>,
    /// Interpreted statement count (for budget diagnostics).
    pub steps: u64,
    /// Iterations taken by `WhileFlag` loops, summed.
    pub while_iterations: u64,
}

impl OracleOutput {
    /// The *observable* slice of the final state: arrays whose intent
    /// copies out (`Out`/`InOut`), as `(name, bit pattern)` pairs.
    /// This is exactly what the device simulator is obliged to agree
    /// on; `In`/`Scratch` arrays are free to differ (the simulator
    /// never copies them back).
    pub fn observable(&self, p: &Program) -> Vec<(String, Vec<u64>)> {
        p.arrays
            .iter()
            .zip(&self.arrays)
            .filter(|(d, _)| d.intent.copies_out())
            .map(|(d, b)| (d.name.clone(), b.bits()))
            .collect()
    }
}

struct Interp {
    params: Vec<Val>,
    vars: Vec<Option<Val>>,
    arrays: Vec<Buffer>,
    steps: u64,
    while_iterations: u64,
}

/// Per-thread work-group context for grouped bodies.
#[derive(Clone, Copy)]
struct Grp {
    local_id: i64,
    group_id: i64,
    local_size: i64,
    num_groups: i64,
}

/// Evaluation context: which variable environment and (optionally)
/// which group's local arrays an expression sees.
struct Ctx<'b> {
    vars: &'b [Option<Val>],
    locals: Option<&'b [Buffer]>,
    group: Option<Grp>,
}

/// Run the reference oracle over a program.
///
/// `params` binds scalar parameters by name; `inputs` seeds initial
/// array contents by name (arrays not listed start zeroed, matching
/// the simulator's functional-mode allocation).
pub fn run_oracle(
    p: &Program,
    params: &[(String, f64)],
    inputs: &[(String, Buffer)],
) -> Result<OracleOutput, String> {
    // Bind parameters exactly as the simulator's runner does: by the
    // declared type, floats kept as-is, everything else truncated.
    let mut bound = Vec::with_capacity(p.params.len());
    for d in &p.params {
        let v = params
            .iter()
            .find(|(n, _)| *n == d.name)
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("missing parameter {:?}", d.name))?;
        bound.push(match d.ty {
            Scalar::F32 | Scalar::F64 => Val::F(v),
            _ => Val::I(v as i64),
        });
    }

    // Array lengths are parameter-only expressions.
    let mut arrays = Vec::with_capacity(p.arrays.len());
    {
        let it = Interp {
            params: bound.clone(),
            vars: vec![None; p.var_names.len()],
            arrays: Vec::new(),
            steps: 0,
            while_iterations: 0,
        };
        for d in &p.arrays {
            let ctx = Ctx {
                vars: &it.vars,
                locals: None,
                group: None,
            };
            let len = it.eval(&d.len, &ctx)?.as_i();
            if len < 0 {
                return Err(format!("array {:?} has negative length {len}", d.name));
            }
            arrays.push(Buffer::zeroed(d.elem, len as usize));
        }
    }
    for (name, buf) in inputs {
        let id = p
            .array_id(name)
            .ok_or_else(|| format!("input for unknown array {name:?}"))?;
        let slot = &mut arrays[id.0 as usize];
        if slot.len() != buf.len() || slot.elem() != buf.elem() {
            return Err(format!(
                "input {name:?}: expected {:?}×{}, got {:?}×{}",
                slot.elem(),
                slot.len(),
                buf.elem(),
                buf.len()
            ));
        }
        *slot = buf.clone();
    }

    let mut it = Interp {
        params: bound,
        vars: vec![None; p.var_names.len()],
        arrays,
        steps: 0,
        while_iterations: 0,
    };
    it.exec_host_body(&p.body)?;
    Ok(OracleOutput {
        arrays: it.arrays,
        steps: it.steps,
        while_iterations: it.while_iterations,
    })
}

impl Interp {
    fn charge(&mut self) -> Result<(), String> {
        self.steps += 1;
        if self.steps > STEP_BUDGET {
            return Err(format!("oracle step budget exhausted ({STEP_BUDGET})"));
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    fn eval(&self, e: &Expr, ctx: &Ctx<'_>) -> Result<Val, String> {
        Ok(match e {
            Expr::FConst(v) => Val::F(*v),
            Expr::IConst(v) => Val::I(*v),
            Expr::BConst(v) => Val::B(*v),
            Expr::Param(id) => self.params[id.0 as usize],
            Expr::Var(id) => ctx.vars[id.0 as usize]
                .ok_or_else(|| format!("read of undefined variable v{}", id.0))?,
            Expr::Special(sv) => {
                let g = ctx
                    .group
                    .ok_or("work-group builtin outside a grouped body")?;
                Val::I(match sv {
                    SpecialVar::LocalId(_) => g.local_id,
                    SpecialVar::GroupId(_) => g.group_id,
                    SpecialVar::LocalSize(_) => g.local_size,
                    SpecialVar::NumGroups(_) => g.num_groups,
                })
            }
            Expr::Load {
                space,
                array,
                index,
            } => {
                let i = self.eval(index, ctx)?.as_i();
                let buf = match space {
                    MemSpace::Global => &self.arrays[array.0 as usize],
                    MemSpace::Local => {
                        &ctx.locals.ok_or("local load outside a grouped body")?[array.0 as usize]
                    }
                };
                if i < 0 || i as usize >= buf.len() {
                    return Err(format!(
                        "load index {i} out of bounds for array of length {}",
                        buf.len()
                    ));
                }
                match buf.elem() {
                    Scalar::F32 | Scalar::F64 => Val::F(buf.get(i as usize)),
                    Scalar::Bool => Val::B(buf.get(i as usize) != 0.0),
                    _ => Val::I(buf.get(i as usize) as i64),
                }
            }
            Expr::Un(op, a) => {
                let va = self.eval(a, ctx)?;
                match op {
                    UnOp::Neg => match va {
                        Val::I(v) => Val::I(v.wrapping_neg()),
                        other => Val::F(-other.as_f()),
                    },
                    UnOp::Abs => match va {
                        Val::I(v) => Val::I(v.wrapping_abs()),
                        other => Val::F(other.as_f().abs()),
                    },
                    UnOp::Rcp => Val::F(1.0 / va.as_f()),
                    UnOp::Sqrt => Val::F(va.as_f().sqrt()),
                    UnOp::Not => Val::B(!va.as_b()),
                    UnOp::Exp => Val::F(va.as_f().exp()),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, ctx)?;
                let vb = self.eval(b, ctx)?;
                bin(*op, va, vb)?
            }
            Expr::Cmp(op, a, b) => {
                let va = self.eval(a, ctx)?;
                let vb = self.eval(b, ctx)?;
                Val::B(cmp(*op, va, vb))
            }
            Expr::Fma(a, b, c) => {
                let va = self.eval(a, ctx)?.as_f();
                let vb = self.eval(b, ctx)?.as_f();
                let vc = self.eval(c, ctx)?.as_f();
                // f32 fused multiply-add, like the devices.
                Val::F(((va as f32).mul_add(vb as f32, vc as f32)) as f64)
            }
            Expr::Select(c, a, b) => {
                if self.eval(c, ctx)?.as_b() {
                    self.eval(a, ctx)?
                } else {
                    self.eval(b, ctx)?
                }
            }
            Expr::Cast(ty, a) => {
                let v = self.eval(a, ctx)?;
                match ty {
                    Scalar::F32 => Val::F(v.as_f() as f32 as f64),
                    Scalar::F64 => Val::F(v.as_f()),
                    Scalar::I32 => Val::I(v.as_i() as i32 as i64),
                    Scalar::U32 => Val::I(v.as_i() as u32 as i64),
                    Scalar::Bool => Val::B(v.as_b()),
                }
            }
        })
    }

    // ---------------------------------------------------------------
    // Kernel-body statements
    // ---------------------------------------------------------------

    /// Execute a block against one variable environment. `locals` and
    /// `group` are `Some` only inside grouped bodies.
    fn exec_block(
        &mut self,
        b: &Block,
        vars: &mut Vec<Option<Val>>,
        locals: &mut Option<Vec<Buffer>>,
        group: Option<Grp>,
    ) -> Result<(), String> {
        for s in &b.0 {
            self.exec_stmt(s, vars, locals, group)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        s: &Stmt,
        vars: &mut Vec<Option<Val>>,
        locals: &mut Option<Vec<Buffer>>,
        group: Option<Grp>,
    ) -> Result<(), String> {
        self.charge()?;
        match s {
            Stmt::Let { var, ty, init } => {
                let v = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    self.eval(init, &ctx)?
                };
                vars[var.0 as usize] = Some(coerce(v, *ty));
            }
            Stmt::Assign { var, value } => {
                let v = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    self.eval(value, &ctx)?
                };
                // Like the device simulator, `Assign` does not coerce.
                vars[var.0 as usize] = Some(v);
            }
            Stmt::Store {
                space,
                array,
                index,
                value,
            } => {
                let (i, v) = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    (
                        self.eval(index, &ctx)?.as_i(),
                        self.eval(value, &ctx)?.as_f(),
                    )
                };
                let buf = match space {
                    MemSpace::Global => &mut self.arrays[array.0 as usize],
                    MemSpace::Local => &mut locals
                        .as_mut()
                        .ok_or("local store outside a grouped body")?[array.0 as usize],
                };
                if i < 0 || i as usize >= buf.len() {
                    return Err(format!(
                        "store index {i} out of bounds for array of length {}",
                        buf.len()
                    ));
                }
                buf.set(i as usize, v);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    self.eval(cond, &ctx)?.as_b()
                };
                if c {
                    self.exec_block(then_blk, vars, locals, group)?;
                } else {
                    self.exec_block(else_blk, vars, locals, group)?;
                }
            }
            Stmt::For {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let (lo, hi) = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    (self.eval(lo, &ctx)?.as_i(), self.eval(hi, &ctx)?.as_i())
                };
                if *step <= 0 {
                    return Err(format!("non-positive sequential loop step {step}"));
                }
                let mut i = lo;
                while i < hi {
                    vars[var.0 as usize] = Some(Val::I(i));
                    self.exec_block(body, vars, locals, group)?;
                    i += *step;
                }
            }
            Stmt::Barrier => {
                // Implicit between grouped phases; a no-op under the
                // oracle's sequential in-phase-order execution.
            }
            Stmt::Atomic {
                op,
                array,
                index,
                value,
            } => {
                let (i, v) = {
                    let ctx = Ctx {
                        vars,
                        locals: locals.as_deref(),
                        group,
                    };
                    (
                        self.eval(index, &ctx)?.as_i(),
                        self.eval(value, &ctx)?.as_f(),
                    )
                };
                let buf = &mut self.arrays[array.0 as usize];
                if i < 0 || i as usize >= buf.len() {
                    return Err(format!(
                        "atomic index {i} out of bounds for array of length {}",
                        buf.len()
                    ));
                }
                let old = buf.get(i as usize);
                buf.set(i as usize, op.combine(old, v));
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Kernels
    // ---------------------------------------------------------------

    fn exec_kernel(&mut self, k: &Kernel) -> Result<(), String> {
        match &k.body {
            KernelBody::Simple(_) => {
                let mut acc = k.region_reduction.as_ref().map(|rr| (rr, rr.op.identity()));
                self.exec_nest(k, 0, &mut acc)?;
                if let Some((rr, total)) = acc {
                    let buf = &mut self.arrays[rr.dest.0 as usize];
                    if buf.is_empty() {
                        return Err("region reduction into empty array".into());
                    }
                    buf.set(0, total);
                }
            }
            KernelBody::Grouped(g) => {
                if k.loops.len() != 1 {
                    return Err("grouped kernels must be rank-1".into());
                }
                let lp = &k.loops[0];
                let (lo, hi) = {
                    let ctx = Ctx {
                        vars: &self.vars,
                        locals: None,
                        group: None,
                    };
                    (
                        self.eval(&lp.lo, &ctx)?.as_i(),
                        self.eval(&lp.hi, &ctx)?.as_i(),
                    )
                };
                let n_groups = (hi - lo).max(0);
                let gsz = g.group_size as usize;
                if gsz == 0 {
                    return Err("grouped kernel with zero group size".into());
                }
                for grp in 0..n_groups {
                    let mut locals: Option<Vec<Buffer>> = Some(
                        g.locals
                            .iter()
                            .map(|l| Buffer::zeroed(l.elem, l.len))
                            .collect(),
                    );
                    // Per-lane variable environments persist across
                    // phases (like registers across barriers), but
                    // lane-local writes never escape to the host.
                    let mut thread_vars = vec![self.vars.clone(); gsz];
                    for phase in &g.phases {
                        for (t, tv) in thread_vars.iter_mut().enumerate() {
                            tv[lp.var.0 as usize] = Some(Val::I(lo + grp));
                            let grp_ctx = Grp {
                                local_id: t as i64,
                                group_id: grp,
                                local_size: gsz as i64,
                                num_groups: n_groups,
                            };
                            self.exec_block(phase, tv, &mut locals, Some(grp_ctx))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Recurse through a simple kernel's loop nest, outermost first.
    /// Bounds are re-evaluated at each level with the outer loop
    /// variables bound (triangular nests).
    fn exec_nest(
        &mut self,
        k: &Kernel,
        depth: usize,
        acc: &mut Option<(&paccport_ir::kernel::RegionReduction, f64)>,
    ) -> Result<(), String> {
        if depth == k.loops.len() {
            let body = match &k.body {
                KernelBody::Simple(b) => b.clone(),
                KernelBody::Grouped(_) => unreachable!(),
            };
            let mut vars = std::mem::take(&mut self.vars);
            let mut no_locals = None;
            let r = self.exec_block(&body, &mut vars, &mut no_locals, None);
            self.vars = vars;
            r?;
            if let Some((rr, total)) = acc {
                let v = {
                    let ctx = Ctx {
                        vars: &self.vars,
                        locals: None,
                        group: None,
                    };
                    self.eval(&rr.value, &ctx)?.as_f()
                };
                *total = rr.op.combine(*total, v);
            }
            return Ok(());
        }
        let lp = &k.loops[depth];
        let (lo, hi) = {
            let ctx = Ctx {
                vars: &self.vars,
                locals: None,
                group: None,
            };
            (
                self.eval(&lp.lo, &ctx)?.as_i(),
                self.eval(&lp.hi, &ctx)?.as_i(),
            )
        };
        for i in lo..hi.max(lo) {
            self.vars[lp.var.0 as usize] = Some(Val::I(i));
            self.exec_nest(k, depth + 1, acc)?;
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Host statements — all data directives are value-level no-ops.
    // ---------------------------------------------------------------

    fn exec_host_body(&mut self, body: &[HostStmt]) -> Result<(), String> {
        for s in body {
            self.exec_host_stmt(s)?;
        }
        Ok(())
    }

    fn exec_host_stmt(&mut self, s: &HostStmt) -> Result<(), String> {
        self.charge()?;
        match s {
            // The oracle has a single flat memory, so data movement
            // directives carry no meaning: only their bodies execute.
            HostStmt::DataRegion { body, .. } => self.exec_host_body(body)?,
            HostStmt::EnterData { .. }
            | HostStmt::ExitData { .. }
            | HostStmt::Update { .. }
            | HostStmt::HostCompute { .. } => {}
            HostStmt::Launch(k) => self.exec_kernel(k)?,
            HostStmt::HostLoop { var, lo, hi, body } => {
                let (lo, hi) = {
                    let ctx = Ctx {
                        vars: &self.vars,
                        locals: None,
                        group: None,
                    };
                    (self.eval(lo, &ctx)?.as_i(), self.eval(hi, &ctx)?.as_i())
                };
                for i in lo..hi.max(lo) {
                    self.vars[var.0 as usize] = Some(Val::I(i));
                    self.exec_host_body(body)?;
                }
            }
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => {
                let mut iters = 0u32;
                loop {
                    self.exec_host_body(body)?;
                    iters += 1;
                    self.while_iterations += 1;
                    let buf = &self.arrays[flag.0 as usize];
                    if buf.is_empty() {
                        return Err("while flag array is empty".into());
                    }
                    let go = buf.get(0) != 0.0;
                    if !go || iters >= *max_iters {
                        break;
                    }
                }
            }
            HostStmt::HostAssign { var, value, .. } => {
                let v = {
                    let ctx = Ctx {
                        vars: &self.vars,
                        locals: None,
                        group: None,
                    };
                    self.eval(value, &ctx)?
                };
                // The runner does not coerce host assignments either.
                self.vars[var.0 as usize] = Some(v);
            }
            HostStmt::HostStore {
                array,
                index,
                value,
            } => {
                let (i, v) = {
                    let ctx = Ctx {
                        vars: &self.vars,
                        locals: None,
                        group: None,
                    };
                    (
                        self.eval(index, &ctx)?.as_i(),
                        self.eval(value, &ctx)?.as_f(),
                    )
                };
                let buf = &mut self.arrays[array.0 as usize];
                if i < 0 || i as usize >= buf.len() {
                    return Err(format!(
                        "host store index {i} out of bounds for array of length {}",
                        buf.len()
                    ));
                }
                buf.set(i as usize, v);
            }
        }
        Ok(())
    }
}

fn bin(op: BinOp, a: Val, b: Val) -> Result<Val, String> {
    use BinOp::*;
    let float = a.is_float() || b.is_float();
    Ok(match op {
        Add | Sub | Mul | Div | Rem | Min | Max => {
            if float {
                // f32 arithmetic, matching the simulated devices.
                let x = a.as_f() as f32;
                let y = b.as_f() as f32;
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Rem => x % y,
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                };
                Val::F(r as f64)
            } else {
                let x = a.as_i();
                let y = b.as_i();
                let r = match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    Mul => x.wrapping_mul(y),
                    Div => {
                        if y == 0 {
                            return Err("integer division by zero".into());
                        }
                        x.wrapping_div(y)
                    }
                    Rem => {
                        if y == 0 {
                            return Err("integer remainder by zero".into());
                        }
                        x.wrapping_rem(y)
                    }
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                };
                Val::I(r)
            }
        }
        And => Val::B(a.as_b() && b.as_b()),
        Or => Val::B(a.as_b() || b.as_b()),
        Shl | Shr => {
            let x = a.as_i();
            let s = b.as_i();
            if !(0..64).contains(&s) {
                return Err(format!("shift amount {s} out of range"));
            }
            Val::I(match op {
                Shl => x << s,
                Shr => x >> s,
                _ => unreachable!(),
            })
        }
    })
}

fn cmp(op: CmpOp, a: Val, b: Val) -> bool {
    if a.is_float() || b.is_float() {
        let (x, y) = (a.as_f(), b.as_f());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.as_i(), b.as_i());
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
}

fn coerce(v: Val, ty: Scalar) -> Val {
    match ty {
        Scalar::F32 => Val::F(v.as_f() as f32 as f64),
        Scalar::F64 => Val::F(v.as_f()),
        Scalar::I32 | Scalar::U32 => Val::I(v.as_i()),
        Scalar::Bool => Val::B(v.as_b()),
    }
}

/// Convenience: the same grouped tree reduction a compiler would
/// produce must agree with `ReduceOp::combine` folding — exposed for
/// tests.
pub fn fold(op: ReduceOp, xs: &[f64]) -> f64 {
    xs.iter().fold(op.identity(), |a, &b| op.combine(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paccport_ir::builder::ProgramBuilder;
    use paccport_ir::{ld, st, Intent, ParallelLoop, E};

    #[test]
    fn saxpy_matches_hand_computation() {
        let mut b = ProgramBuilder::new("saxpy");
        let n = b.iparam("n");
        let x = b.array("x", Scalar::F32, n, Intent::In);
        let y = b.array("y", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "saxpy",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(y, i, E::from(2.0) * ld(x, i) + ld(y, i))]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let out = run_oracle(
            &p,
            &[("n".into(), 4.0)],
            &[
                ("x".into(), Buffer::F32(vec![1.0, 2.0, 3.0, 4.0])),
                ("y".into(), Buffer::F32(vec![5.0, 5.0, 5.0, 5.0])),
            ],
        )
        .unwrap();
        assert_eq!(
            out.arrays[1],
            Buffer::F32(vec![7.0, 9.0, 11.0, 13.0]),
            "y = 2x + y"
        );
    }

    #[test]
    fn oob_is_an_error_not_a_panic() {
        let mut b = ProgramBuilder::new("oob");
        let n = b.iparam("n");
        let a = b.array("a", Scalar::F32, n, Intent::InOut);
        let i = b.var("i");
        let k = Kernel::simple(
            "oob",
            vec![ParallelLoop::new(i, Expr::iconst(0), Expr::param(n))],
            Block::new(vec![st(a, E::from(i) + 100i64, 1.0)]),
        );
        let p = b.finish(vec![HostStmt::Launch(k)]);
        let r = run_oracle(&p, &[("n".into(), 4.0)], &[]);
        assert!(r.is_err());
        assert!(r.unwrap_err().contains("out of bounds"));
    }

    #[test]
    fn fold_matches_identities() {
        assert_eq!(fold(ReduceOp::Add, &[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(fold(ReduceOp::Max, &[]), f64::NEG_INFINITY);
        assert_eq!(fold(ReduceOp::Min, &[2.0, -1.0]), -1.0);
    }
}
