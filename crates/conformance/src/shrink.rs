//! Greedy structural shrinking of failing conformance cases.
//!
//! The shim `proptest` intentionally has no shrinking (its `TestRng`
//! only replays seeds), and integrated shrinking would not help here
//! anyway: a [`Case`] is a whole *program*, and the informative
//! reductions are structural — delete a host statement, unwrap a data
//! region, collapse a loop to one iteration, flatten an expression —
//! not "try a smaller integer". So the harness carries its own
//! minimizer: a classic greedy delta-debugger over the IR.
//!
//! Every candidate is a single structural edit of the current case.
//! A candidate is accepted iff it still passes `validate` *and* the
//! caller's failure predicate still holds (the driver pins the
//! predicate to the original failing (leg, kind) pair so the bug
//! cannot morph while being minimized). Each accepted edit strictly
//! shrinks the program (fewer statements, or strictly fewer
//! expression nodes), so the fixpoint loop terminates; a global
//! evaluation budget bounds the worst case since every probe re-runs
//! the differential legs.

use crate::generate::Case;
use paccport_ir::expr::Expr;
use paccport_ir::kernel::{Kernel, KernelBody, LoopClauses};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::Scalar;
use paccport_ir::HostStmt;

/// Upper bound on failure-predicate evaluations per shrink. Each
/// evaluation replays the whole differential matrix, so this is the
/// real cost knob.
const EVAL_BUDGET: usize = 400;

/// Greedily minimize `case` while `failing` keeps returning true.
/// Returns the smallest accepted case (possibly `case` itself).
pub fn shrink(case: &Case, failing: &dyn Fn(&Case) -> bool) -> Case {
    let mut current = case.clone();
    let mut budget = EVAL_BUDGET;
    loop {
        let mut improved = false;
        for cand in candidates(&current) {
            if budget == 0 {
                return current;
            }
            if paccport_ir::validate(&cand.program).is_err() {
                continue; // free: no legs were run
            }
            budget -= 1;
            if failing(&cand) {
                current = cand;
                improved = true;
                break; // restart enumeration from the smaller case
            }
        }
        if !improved {
            return current;
        }
    }
}

/// All single-edit reductions of a case, most aggressive first.
fn candidates(case: &Case) -> Vec<Case> {
    host_edits(&case.program.body)
        .into_iter()
        .map(|body| {
            let mut program = case.program.clone();
            program.body = body;
            Case {
                program,
                ..case.clone()
            }
        })
        .collect()
}

fn host_edits(stmts: &[HostStmt]) -> Vec<Vec<HostStmt>> {
    let mut out = Vec::new();
    for i in 0..stmts.len() {
        // Delete statement i outright.
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);

        match &stmts[i] {
            HostStmt::DataRegion { arrays, body } => {
                // Unwrap: the directives are supposed to be
                // value-neutral, so the body alone should still fail.
                let mut v = stmts.to_vec();
                v.splice(i..=i, body.clone());
                out.push(v);
                for inner in host_edits(body) {
                    let mut v = stmts.to_vec();
                    v[i] = HostStmt::DataRegion {
                        arrays: arrays.clone(),
                        body: inner,
                    };
                    out.push(v);
                }
            }
            HostStmt::HostLoop { var, lo, body, .. } => {
                // Single trip: pin the loop variable, splice the body.
                let mut repl = vec![HostStmt::HostAssign {
                    var: *var,
                    ty: Scalar::I32,
                    value: lo.clone(),
                }];
                repl.extend(body.clone());
                let mut v = stmts.to_vec();
                v.splice(i..=i, repl);
                out.push(v);
                for inner in host_edits(body) {
                    let mut v = stmts.to_vec();
                    if let HostStmt::HostLoop { body, .. } = &mut v[i] {
                        *body = inner;
                    }
                    out.push(v);
                }
            }
            HostStmt::WhileFlag {
                flag,
                max_iters,
                body,
            } => {
                let mut v = stmts.to_vec();
                v.splice(i..=i, body.clone());
                out.push(v);
                if *max_iters > 1 {
                    let mut v = stmts.to_vec();
                    v[i] = HostStmt::WhileFlag {
                        flag: *flag,
                        max_iters: 1,
                        body: body.clone(),
                    };
                    out.push(v);
                }
                for inner in host_edits(body) {
                    let mut v = stmts.to_vec();
                    if let HostStmt::WhileFlag { body, .. } = &mut v[i] {
                        *body = inner;
                    }
                    out.push(v);
                }
            }
            HostStmt::Launch(k) => {
                for kk in kernel_edits(k) {
                    let mut v = stmts.to_vec();
                    v[i] = HostStmt::Launch(kk);
                    out.push(v);
                }
            }
            _ => {}
        }
    }
    out
}

fn kernel_edits(k: &Kernel) -> Vec<Kernel> {
    let mut out = Vec::new();
    if k.reduction.is_some() {
        let mut kk = k.clone();
        kk.reduction = None;
        out.push(kk);
    }
    if k.region_reduction.is_some() {
        let mut kk = k.clone();
        kk.region_reduction = None;
        out.push(kk);
    }
    if k.launch_hint.is_some() {
        let mut kk = k.clone();
        kk.launch_hint = None;
        out.push(kk);
    }
    for (li, lp) in k.loops.iter().enumerate() {
        if lp.clauses != LoopClauses::default() {
            let mut kk = k.clone();
            kk.loops[li].clauses = LoopClauses::default();
            out.push(kk);
        }
        if !(lp.lo == Expr::iconst(0) && lp.hi == Expr::iconst(1)) {
            let mut kk = k.clone();
            kk.loops[li].lo = Expr::iconst(0);
            kk.loops[li].hi = Expr::iconst(1);
            out.push(kk);
        }
    }
    if k.loops.len() > 1 {
        // Drop the innermost parallel level, pinning its variable.
        let mut kk = k.clone();
        let lp = kk.loops.pop().unwrap();
        if let KernelBody::Simple(b) = &mut kk.body {
            b.0.insert(
                0,
                Stmt::Let {
                    var: lp.var,
                    ty: Scalar::I32,
                    init: lp.lo,
                },
            );
        }
        out.push(kk);
    }
    match &k.body {
        KernelBody::Simple(b) => {
            for nb in block_edits(b) {
                let mut kk = k.clone();
                kk.body = KernelBody::Simple(nb);
                out.push(kk);
            }
        }
        KernelBody::Grouped(g) => {
            if g.phases.len() > 1 {
                for pi in 0..g.phases.len() {
                    let mut kk = k.clone();
                    if let KernelBody::Grouped(gg) = &mut kk.body {
                        gg.phases.remove(pi);
                    }
                    out.push(kk);
                }
            }
            for (pi, ph) in g.phases.iter().enumerate() {
                for nb in block_edits(ph) {
                    let mut kk = k.clone();
                    if let KernelBody::Grouped(gg) = &mut kk.body {
                        gg.phases[pi] = nb;
                    }
                    out.push(kk);
                }
            }
        }
    }
    out
}

fn block_edits(b: &Block) -> Vec<Block> {
    let mut out = Vec::new();
    for i in 0..b.0.len() {
        let mut v = b.0.clone();
        v.remove(i);
        out.push(Block(v));

        match &b.0[i] {
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                let mut v = b.0.clone();
                v.splice(i..=i, then_blk.0.clone());
                out.push(Block(v));
                if !else_blk.is_empty() {
                    let mut v = b.0.clone();
                    v.splice(i..=i, else_blk.0.clone());
                    out.push(Block(v));
                }
                for nb in block_edits(then_blk) {
                    let mut v = b.0.clone();
                    if let Stmt::If { then_blk, .. } = &mut v[i] {
                        *then_blk = nb;
                    }
                    out.push(Block(v));
                }
                for nb in block_edits(else_blk) {
                    let mut v = b.0.clone();
                    if let Stmt::If { else_blk, .. } = &mut v[i] {
                        *else_blk = nb;
                    }
                    out.push(Block(v));
                }
            }
            Stmt::For { var, lo, body, .. } => {
                // Single trip: Let var = lo; body.
                let mut repl = vec![Stmt::Let {
                    var: *var,
                    ty: Scalar::I32,
                    init: lo.clone(),
                }];
                repl.extend(body.0.clone());
                let mut v = b.0.clone();
                v.splice(i..=i, repl);
                out.push(Block(v));
                for nb in block_edits(body) {
                    let mut v = b.0.clone();
                    if let Stmt::For { body, .. } = &mut v[i] {
                        *body = nb;
                    }
                    out.push(Block(v));
                }
            }
            Stmt::Let { var, ty, init } if expr_size(init) > 1 => {
                let mut v = b.0.clone();
                v[i] = Stmt::Let {
                    var: *var,
                    ty: *ty,
                    init: leaf_for(*ty),
                };
                out.push(Block(v));
            }
            Stmt::Assign { var, value } if expr_size(value) > 1 => {
                for leaf in [Expr::iconst(1), Expr::fconst(2.0)] {
                    let mut v = b.0.clone();
                    v[i] = Stmt::Assign {
                        var: *var,
                        value: leaf,
                    };
                    out.push(Block(v));
                }
            }
            Stmt::Store {
                space,
                array,
                index,
                value,
            } => {
                if *index != Expr::iconst(0) {
                    let mut v = b.0.clone();
                    v[i] = Stmt::Store {
                        space: *space,
                        array: *array,
                        index: Expr::iconst(0),
                        value: value.clone(),
                    };
                    out.push(Block(v));
                }
                if expr_size(value) > 1 {
                    let mut v = b.0.clone();
                    v[i] = Stmt::Store {
                        space: *space,
                        array: *array,
                        index: index.clone(),
                        value: Expr::fconst(2.0),
                    };
                    out.push(Block(v));
                }
            }
            _ => {}
        }
    }
    out
}

fn leaf_for(ty: Scalar) -> Expr {
    match ty {
        Scalar::F32 | Scalar::F64 => Expr::fconst(2.0),
        Scalar::Bool => Expr::BConst(true),
        _ => Expr::iconst(1),
    }
}

fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::FConst(_)
        | Expr::IConst(_)
        | Expr::BConst(_)
        | Expr::Param(_)
        | Expr::Var(_)
        | Expr::Special(_) => 1,
        Expr::Load { index, .. } => 1 + expr_size(index),
        Expr::Un(_, a) | Expr::Cast(_, a) => 1 + expr_size(a),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => 1 + expr_size(a) + expr_size(b),
        Expr::Fma(a, b, c) | Expr::Select(a, b, c) => {
            1 + expr_size(a) + expr_size(b) + expr_size(c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    /// Shrinking with a structural predicate must reach a tiny program
    /// — this is the engine the mutation-catching test relies on.
    #[test]
    fn shrinks_to_minimal_program_under_structural_predicate() {
        for idx in 0..4 {
            let case = generate(11, idx);
            let small = shrink(&case, &|c| c.program.kernel_count() >= 1);
            assert!(
                small.program.stmt_count() <= 3,
                "idx {idx}: shrunk program still has {} stmts:\n{}",
                small.program.stmt_count(),
                paccport_ir::program_to_string(&small.program)
            );
            paccport_ir::validate(&small.program).expect("shrunk program must stay valid");
        }
    }

    #[test]
    fn shrink_is_identity_when_nothing_smaller_fails() {
        let case = generate(11, 0);
        // Predicate that only the full original satisfies.
        let full = paccport_ir::program_to_string(&case.program);
        let out = shrink(&case, &|c| {
            paccport_ir::program_to_string(&c.program) == full
        });
        assert_eq!(paccport_ir::program_to_string(&out.program), full);
    }
}
