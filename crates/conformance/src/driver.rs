//! Differential driver: one generated program, many execution legs.
//!
//! Every case is executed by the reference [`oracle`](crate::oracle)
//! first; its `copyout` arrays (compared bit-for-bit via
//! [`Buffer::bits`](paccport_devsim::Buffer::bits)) are the ground
//! truth. The case then runs through:
//!
//! * the full **compiler matrix** — every personality × device the
//!   paper used (CAPS on K40/FirePro/5110P, PGI on K40/FirePro,
//!   hand-OpenCL on all three, OpenARC on K40), each compiled and
//!   executed on the device simulator;
//! * every **semantics-preserving transform variant** (unrolling,
//!   grouped-phase unrolling, strip-mining, serialization, reduction
//!   lowering, `simplify`), checked both oracle-vs-oracle and through
//!   a CAPS/K40 compile-and-run of the transformed program.
//!
//! Outcomes are classified rather than boolean: a modeled
//! miscompilation (the CAPS `reduction`-on-MIC bug) must show up as
//! [`Outcome::ExpectedDivergence`] — if the quirk model flags a kernel
//! wrong and the values nevertheless match bit-for-bit, that is
//! recorded separately as [`Outcome::BenignMatch`]. Only an
//! *unexpected* difference is a [`Outcome::Mismatch`], and those are
//! shrunk to a minimal reproducer before being reported.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::generate::{generate, Case};
use crate::oracle::run_oracle;
use crate::printer::case_to_test;
use crate::shrink::shrink;
use paccport_compilers::passes::Pipeline;
use paccport_compilers::transforms::TransformVariant;
use paccport_compilers::{compile, CompileOptions, CompiledProgram, CompilerId};
use paccport_devsim::{run, ExecTier, RunConfig, RunResult};
use paccport_ir::program_to_string;

/// Broad category of a conformance failure. Shrinking preserves the
/// (leg, kind) pair so a bitwise divergence cannot quietly morph into
/// an unrelated runtime error while being minimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// Observable arrays differ bit-for-bit with no quirk excusing it.
    Diverged,
    /// The simulator refused to run the compiled program.
    RunError,
    /// The simulator panicked.
    Panicked,
    /// The reference oracle itself failed — a harness or generator bug.
    OracleError,
    /// A transform produced a program `validate` rejects.
    TransformInvalid,
}

/// Classified result of one execution leg.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Bitwise equal to the oracle.
    Match,
    /// A kernel was flagged known-wrong, yet the values match — the
    /// quirk model is over-cautious on this shape (e.g. a grouped body
    /// with no interior tree phases to drop).
    BenignMatch,
    /// A kernel was flagged known-wrong and the values differ: the
    /// modeled 2014-era miscompilation, reproduced as documented.
    ExpectedDivergence,
    /// The personality refused the program (e.g. PGI targeting MIC).
    CompileRejected(String),
    /// The transform variant did not apply to this program's kernels.
    SkippedTransform,
    /// Unexcused difference from the oracle — a conformance bug.
    Mismatch { kind: FailKind, detail: String },
}

/// One execution leg of a case: a label like `caps/5110P` or
/// `transform/unroll2` plus its classified outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Leg {
    pub label: String,
    pub outcome: Outcome,
}

/// First unexcused failure of a case, if any.
#[derive(Debug, Clone)]
pub struct Failure {
    pub leg: String,
    pub kind: FailKind,
    pub detail: String,
}

/// The compiler-personality × device matrix from the paper.
fn matrix() -> Vec<(CompilerId, CompileOptions, &'static str)> {
    vec![
        (CompilerId::Caps, CompileOptions::gpu(), "caps/K40"),
        (CompilerId::Caps, CompileOptions::amd(), "caps/FirePro"),
        (CompilerId::Caps, CompileOptions::mic(), "caps/5110P"),
        (CompilerId::Pgi, CompileOptions::gpu(), "pgi/K40"),
        (CompilerId::Pgi, CompileOptions::amd(), "pgi/FirePro"),
        (CompilerId::OpenClHand, CompileOptions::gpu(), "opencl/K40"),
        (
            CompilerId::OpenClHand,
            CompileOptions::amd(),
            "opencl/FirePro",
        ),
        (
            CompilerId::OpenClHand,
            CompileOptions::mic(),
            "opencl/5110P",
        ),
        (CompilerId::OpenArc, CompileOptions::gpu(), "openarc/K40"),
    ]
}

/// Run every leg of a case and classify each outcome.
pub fn check_case(case: &Case) -> Vec<Leg> {
    let mut legs = Vec::new();
    let base = match run_oracle(&case.program, &case.params, &case.inputs) {
        Ok(o) => o,
        Err(e) => {
            legs.push(Leg {
                label: "oracle".into(),
                outcome: Outcome::Mismatch {
                    kind: FailKind::OracleError,
                    detail: e,
                },
            });
            return legs;
        }
    };
    let want = base.observable(&case.program);
    for (id, opts, label) in matrix() {
        let outcome = compile_leg(case, id, &opts, &want);
        legs.push(Leg {
            label: label.to_string(),
            outcome,
        });
    }
    for v in TransformVariant::all() {
        let outcome = transform_leg(case, v, &want);
        legs.push(Leg {
            label: format!("transform/{}", v.label()),
            outcome,
        });
    }
    for (label, pl) in pass_pipelines() {
        let outcome = pass_leg(case, &pl, &want);
        legs.push(Leg { label, outcome });
    }
    legs.push(Leg {
        label: "tier/bytecode".into(),
        outcome: tier_leg(case),
    });
    legs
}

/// The middle-end pass legs: every optimization pass of the default
/// pipeline alone, then each prefix of the pipeline (so an
/// interaction bug between passes is pinned to the first prefix that
/// exposes it).
fn pass_pipelines() -> Vec<(String, Pipeline)> {
    let defaults = paccport_compilers::passes::DEFAULT_PASSES;
    let mut out = Vec::new();
    for name in defaults {
        out.push((format!("pass/{name}"), Pipeline::parse(name).unwrap()));
    }
    for n in 2..=defaults.len() {
        let spec = defaults[..n].join(",");
        out.push((
            format!("pass/default[..{n}]"),
            Pipeline::parse(&spec).unwrap(),
        ));
    }
    out
}

/// The tenth leg: execute the CAPS/K40 compilation of the case under
/// both execution tiers — tree-walker and bytecode VM — with the race
/// detector shadow-logging, and require the *entire* observable run
/// state to agree bitwise: every host buffer (f64 bit patterns), the
/// deduplicated race set, the shadow-log access count, transfer
/// ledger, while-loop iteration count, per-kernel stats and every
/// modeled timing. A panic is only excused if both tiers panic with
/// the same message.
fn tier_leg(case: &Case) -> Outcome {
    let cp = match compile(CompilerId::Caps, &case.program, &CompileOptions::gpu()) {
        Ok(cp) => cp,
        Err(e) => return Outcome::CompileRejected(e.message),
    };
    let run_tier = |tier: ExecTier| {
        let mut cfg = RunConfig::functional(case.params.clone())
            .with_race_check(true)
            .with_tier(tier);
        for (name, buf) in &case.inputs {
            cfg = cfg.with_input(name, buf.clone());
        }
        catch_unwind(AssertUnwindSafe(|| run(&cp, &cfg)))
    };
    let tree = run_tier(ExecTier::Tree);
    let byte = run_tier(ExecTier::Bytecode);
    match (tree, byte) {
        (Err(pt), Err(pb)) => {
            let (mt, mb) = (panic_message(pt), panic_message(pb));
            if mt == mb {
                Outcome::Match
            } else {
                Outcome::Mismatch {
                    kind: FailKind::Panicked,
                    detail: format!("tiers panicked differently: tree `{mt}` vs bytecode `{mb}`"),
                }
            }
        }
        (Err(pt), Ok(_)) => Outcome::Mismatch {
            kind: FailKind::Panicked,
            detail: format!(
                "tree tier panicked (`{}`), bytecode did not",
                panic_message(pt)
            ),
        },
        (Ok(_), Err(pb)) => Outcome::Mismatch {
            kind: FailKind::Panicked,
            detail: format!(
                "bytecode tier panicked (`{}`), tree did not",
                panic_message(pb)
            ),
        },
        (Ok(Err(et)), Ok(Err(eb))) => {
            if et == eb {
                Outcome::Match
            } else {
                Outcome::Mismatch {
                    kind: FailKind::RunError,
                    detail: format!("tiers erred differently: tree `{et}` vs bytecode `{eb}`"),
                }
            }
        }
        (Ok(Err(e)), Ok(Ok(_))) => Outcome::Mismatch {
            kind: FailKind::RunError,
            detail: format!("tree tier erred (`{e}`), bytecode succeeded"),
        },
        (Ok(Ok(_)), Ok(Err(e))) => Outcome::Mismatch {
            kind: FailKind::RunError,
            detail: format!("bytecode tier erred (`{e}`), tree succeeded"),
        },
        (Ok(Ok(rt)), Ok(Ok(rb))) => match diff_run_results(&rt, &rb) {
            None => Outcome::Match,
            Some(d) => Outcome::Mismatch {
                kind: FailKind::Diverged,
                detail: format!("tree vs bytecode: {d}"),
            },
        },
    }
}

/// First difference between two tier runs, comparing every observable
/// field; floats are compared by bit pattern, not numeric equality.
fn diff_run_results(a: &RunResult, b: &RunResult) -> Option<String> {
    if a.host.len() != b.host.len() {
        return Some(format!("buffer count {} vs {}", a.host.len(), b.host.len()));
    }
    for (i, (ba, bb)) in a.host.iter().zip(&b.host).enumerate() {
        let (wa, wb) = (ba.bits(), bb.bits());
        if wa.len() != wb.len() {
            return Some(format!("buffer {i} length {} vs {}", wa.len(), wb.len()));
        }
        if let Some(j) = (0..wa.len()).find(|&j| wa[j] != wb[j]) {
            return Some(format!(
                "buffer {i}[{j}]: bits {:#018x} vs {:#018x}",
                wa[j], wb[j]
            ));
        }
    }
    if a.races != b.races {
        return Some(format!("race sets differ: {:?} vs {:?}", a.races, b.races));
    }
    if a.race_accesses != b.race_accesses {
        return Some(format!(
            "shadow-logged access counts differ: {} vs {}",
            a.race_accesses, b.race_accesses
        ));
    }
    if a.while_iterations != b.while_iterations {
        return Some(format!(
            "while iterations {} vs {}",
            a.while_iterations, b.while_iterations
        ));
    }
    if a.transfers != b.transfers {
        return Some(format!(
            "transfer ledgers differ: {:?} vs {:?}",
            a.transfers, b.transfers
        ));
    }
    if a.transfers_outside_while != b.transfers_outside_while {
        return Some("transfers outside while differ".into());
    }
    if a.any_known_wrong != b.any_known_wrong {
        return Some(format!(
            "known-wrong flags differ: {} vs {}",
            a.any_known_wrong, b.any_known_wrong
        ));
    }
    if a.kernel_stats.len() != b.kernel_stats.len() {
        return Some("kernel stat counts differ".into());
    }
    for (sa, sb) in a.kernel_stats.iter().zip(&b.kernel_stats) {
        if sa.name != sb.name
            || sa.launches != sb.launches
            || sa.ran_on_device != sb.ran_on_device
            || sa.config_label != sb.config_label
            || sa.device_time.to_bits() != sb.device_time.to_bits()
        {
            return Some(format!("kernel stats differ: {sa:?} vs {sb:?}"));
        }
    }
    for (label, fa, fb) in [
        ("elapsed", a.elapsed, b.elapsed),
        ("kernel_time", a.kernel_time, b.kernel_time),
        ("transfer_time_s", a.transfer_time_s, b.transfer_time_s),
        ("host_time", a.host_time, b.host_time),
        (
            "transfers_per_while_iter",
            a.transfers_per_while_iter,
            b.transfers_per_while_iter,
        ),
    ] {
        if fa.to_bits() != fb.to_bits() {
            return Some(format!("{label}: {fa} vs {fb} (bit-level)"));
        }
    }
    None
}

fn compile_leg(
    case: &Case,
    id: CompilerId,
    opts: &CompileOptions,
    want: &[(String, Vec<u64>)],
) -> Outcome {
    match compile(id, &case.program, opts) {
        Ok(cp) => exec_and_compare(&cp, case, want),
        Err(e) => Outcome::CompileRejected(e.message),
    }
}

/// A transform variant must (a) keep the program valid, (b) preserve
/// big-step semantics under the oracle, and (c) still compile and run
/// bitwise-identically through CAPS on the K40.
fn transform_leg(case: &Case, v: TransformVariant, want: &[(String, Vec<u64>)]) -> Outcome {
    let mut p = case.program.clone();
    if !v.apply(&mut p) {
        return Outcome::SkippedTransform;
    }
    if let Err(e) = paccport_ir::validate(&p) {
        return Outcome::Mismatch {
            kind: FailKind::TransformInvalid,
            detail: format!("{} broke validation: {e:?}", v.label()),
        };
    }
    let t = match run_oracle(&p, &case.params, &case.inputs) {
        Ok(o) => o,
        Err(e) => {
            return Outcome::Mismatch {
                kind: FailKind::OracleError,
                detail: format!("oracle failed on transformed program: {e}"),
            }
        }
    };
    if let Some(d) = diff_observables(want, &t.observable(&p)) {
        return Outcome::Mismatch {
            kind: FailKind::Diverged,
            detail: format!("oracle-vs-oracle after {}: {d}", v.label()),
        };
    }
    match compile(CompilerId::Caps, &p, &CompileOptions::gpu()) {
        Ok(cp) => exec_and_compare(&cp, case, want),
        Err(e) => Outcome::CompileRejected(e.message),
    }
}

/// A pass pipeline is held to the same contract as a transform
/// variant: (a) keep the program valid, (b) preserve big-step
/// semantics under the oracle, (c) still compile and run bitwise-
/// identically through CAPS on the K40.
fn pass_leg(case: &Case, pl: &Pipeline, want: &[(String, Vec<u64>)]) -> Outcome {
    let mut p = case.program.clone();
    if !pl.run(&mut p).changed() {
        return Outcome::SkippedTransform;
    }
    if let Err(e) = paccport_ir::validate(&p) {
        return Outcome::Mismatch {
            kind: FailKind::TransformInvalid,
            detail: format!("passes `{}` broke validation: {e:?}", pl.label()),
        };
    }
    let t = match run_oracle(&p, &case.params, &case.inputs) {
        Ok(o) => o,
        Err(e) => {
            return Outcome::Mismatch {
                kind: FailKind::OracleError,
                detail: format!("oracle failed on pass-optimized program: {e}"),
            }
        }
    };
    if let Some(d) = diff_observables(want, &t.observable(&p)) {
        return Outcome::Mismatch {
            kind: FailKind::Diverged,
            detail: format!("oracle-vs-oracle after passes `{}`: {d}", pl.label()),
        };
    }
    match compile(CompilerId::Caps, &p, &CompileOptions::gpu()) {
        Ok(cp) => exec_and_compare(&cp, case, want),
        Err(e) => Outcome::CompileRejected(e.message),
    }
}

fn exec_and_compare(cp: &CompiledProgram, case: &Case, want: &[(String, Vec<u64>)]) -> Outcome {
    let mut cfg = RunConfig::functional(case.params.clone());
    for (name, buf) in &case.inputs {
        cfg = cfg.with_input(name, buf.clone());
    }
    let res = match catch_unwind(AssertUnwindSafe(|| run(cp, &cfg))) {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => {
            return Outcome::Mismatch {
                kind: FailKind::RunError,
                detail: e,
            }
        }
        Err(payload) => {
            return Outcome::Mismatch {
                kind: FailKind::Panicked,
                detail: panic_message(payload),
            }
        }
    };
    let mut got = Vec::with_capacity(want.len());
    for (name, _) in want {
        match res.buffer(cp, name) {
            Some(b) => got.push((name.clone(), b.bits())),
            None => {
                return Outcome::Mismatch {
                    kind: FailKind::RunError,
                    detail: format!("observable array `{name}` missing from run result"),
                }
            }
        }
    }
    match diff_observables(want, &got) {
        None => {
            if res.any_known_wrong {
                Outcome::BenignMatch
            } else {
                Outcome::Match
            }
        }
        Some(d) => {
            if res.any_known_wrong {
                Outcome::ExpectedDivergence
            } else {
                Outcome::Mismatch {
                    kind: FailKind::Diverged,
                    detail: d,
                }
            }
        }
    }
}

/// First bit-level difference between two observable snapshots.
fn diff_observables(want: &[(String, Vec<u64>)], got: &[(String, Vec<u64>)]) -> Option<String> {
    for (name, wbits) in want {
        let Some((_, gbits)) = got.iter().find(|(n, _)| n == name) else {
            return Some(format!("array `{name}` absent"));
        };
        if wbits.len() != gbits.len() {
            return Some(format!(
                "array `{name}` length {} vs {}",
                wbits.len(),
                gbits.len()
            ));
        }
        for (i, (w, g)) in wbits.iter().zip(gbits).enumerate() {
            if w != g {
                return Some(format!(
                    "{name}[{i}]: oracle bits {w:#018x} vs observed {g:#018x}"
                ));
            }
        }
    }
    None
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// First unexcused failure of a case across all legs, if any.
pub fn failure_of(case: &Case) -> Option<Failure> {
    check_case(case)
        .into_iter()
        .find_map(|leg| match leg.outcome {
            Outcome::Mismatch { kind, detail } => Some(Failure {
                leg: leg.label,
                kind,
                detail,
            }),
            _ => None,
        })
}

/// Shrink a failing case while preserving the failing (leg, kind)
/// pair, so the minimized program still exhibits the *same* bug.
pub fn shrink_failure(case: &Case, f: &Failure) -> Case {
    let leg = f.leg.clone();
    let kind = f.kind;
    shrink(
        case,
        &|c: &Case| matches!(failure_of(c), Some(g) if g.leg == leg && g.kind == kind),
    )
}

/// Assert a single case conforms on every leg; on failure, panic with
/// the shrunk reproducer and a paste-ready regression test.
pub fn assert_conforms(case: &Case) {
    if let Some(f) = failure_of(case) {
        let shrunk = shrink_failure(case, &f);
        panic!(
            "conformance failure on leg `{}` ({:?}): {}\n\
             shrunk reproducer ({} statements):\n{}\n\
             paste-ready regression test:\n{}",
            f.leg,
            f.kind,
            f.detail,
            shrunk.program.stmt_count(),
            program_to_string(&shrunk.program),
            case_to_test(&shrunk),
        );
    }
}

/// One minimized, reportable conformance failure.
#[derive(Debug, Clone)]
pub struct Counterexample {
    pub index: u64,
    pub leg: String,
    pub kind: FailKind,
    pub detail: String,
    /// `program_to_string` of the shrunk program.
    pub shrunk_program: String,
    /// Paste-ready `#[test]` source reproducing the failure.
    pub regression: String,
    pub shrunk_stmts: usize,
}

/// Aggregated result of a conformance run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub programs: u64,
    pub seed: u64,
    pub matches: u64,
    pub benign: u64,
    pub expected_divergence: u64,
    pub compile_rejected: u64,
    pub transforms_applied: u64,
    pub transforms_skipped: u64,
    /// Distinct legs on which expected divergence was observed — the
    /// quirk model must actually fire over a healthy corpus.
    pub divergence_legs: Vec<String>,
    pub counterexamples: Vec<Counterexample>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Deterministic text rendering (no timing, no paths): two runs
    /// with the same (programs, seed) must render byte-identically.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "differential conformance: {} programs, seed {}\n",
            self.programs, self.seed
        ));
        s.push_str(&format!(
            "  legs: {} compiler targets + {} transform variants + {} pass pipelines + 1 tier-equivalence leg per program\n",
            matrix().len(),
            TransformVariant::all().len(),
            pass_pipelines().len()
        ));
        s.push_str(&format!("  match              : {}\n", self.matches));
        s.push_str(&format!(
            "  benign match       : {}  (flagged known-wrong, values bitwise equal)\n",
            self.benign
        ));
        s.push_str(&format!(
            "  expected divergence: {}  (modeled miscompilation fired)\n",
            self.expected_divergence
        ));
        for leg in &self.divergence_legs {
            s.push_str(&format!("      on {leg}\n"));
        }
        s.push_str(&format!(
            "  compile rejected   : {}  (e.g. PGI cannot target MIC)\n",
            self.compile_rejected
        ));
        s.push_str(&format!(
            "  transforms applied : {}  (skipped {} not-applicable)\n",
            self.transforms_applied, self.transforms_skipped
        ));
        s.push_str(&format!(
            "  mismatches         : {}\n",
            self.counterexamples.len()
        ));
        for ce in &self.counterexamples {
            s.push_str(&format!(
                "\nMISMATCH program {} leg `{}` ({:?}): {}\n",
                ce.index, ce.leg, ce.kind, ce.detail
            ));
            s.push_str(&format!(
                "shrunk to {} statements:\n{}\n",
                ce.shrunk_stmts, ce.shrunk_program
            ));
            s.push_str(&format!("regression test:\n{}\n", ce.regression));
        }
        s
    }
}

/// Stable metric label for a leg outcome
/// (`conformance_legs_total{outcome=...}`).
fn outcome_label(o: &Outcome) -> &'static str {
    match o {
        Outcome::Match => "match",
        Outcome::BenignMatch => "benign",
        Outcome::ExpectedDivergence => "expected-divergence",
        Outcome::CompileRejected(_) => "compile-rejected",
        Outcome::SkippedTransform => "skipped-transform",
        Outcome::Mismatch { .. } => "mismatch",
    }
}

/// Generate `programs` cases from `seed` and run each through every
/// leg. Mismatches are shrunk and reported; everything else is
/// tallied.
pub fn run_conformance(programs: u64, seed: u64) -> Report {
    let mut r = Report {
        programs,
        seed,
        ..Report::default()
    };
    for index in 0..programs {
        let _case_span =
            paccport_trace::span_attrs("conform.case", vec![("index".into(), index.to_string())]);
        let case = generate(seed, index);
        for leg in check_case(&case) {
            let is_transform =
                leg.label.starts_with("transform/") || leg.label.starts_with("pass/");
            if paccport_trace::metrics::metrics_enabled() {
                paccport_trace::metrics::counter_add(
                    "conformance_legs_total",
                    &[("outcome", outcome_label(&leg.outcome))],
                    1,
                );
            }
            match leg.outcome {
                Outcome::Match | Outcome::BenignMatch if is_transform => {
                    r.transforms_applied += 1;
                    if matches!(leg.outcome, Outcome::BenignMatch) {
                        r.benign += 1;
                    } else {
                        r.matches += 1;
                    }
                }
                Outcome::Match => r.matches += 1,
                Outcome::BenignMatch => r.benign += 1,
                Outcome::ExpectedDivergence => {
                    if is_transform {
                        r.transforms_applied += 1;
                    }
                    r.expected_divergence += 1;
                    if !r.divergence_legs.contains(&leg.label) {
                        r.divergence_legs.push(leg.label.clone());
                    }
                }
                Outcome::CompileRejected(_) => r.compile_rejected += 1,
                Outcome::SkippedTransform => r.transforms_skipped += 1,
                Outcome::Mismatch { kind, detail } => {
                    if is_transform {
                        r.transforms_applied += 1;
                    }
                    let failure = Failure {
                        leg: leg.label.clone(),
                        kind,
                        detail: detail.clone(),
                    };
                    let shrunk = shrink_failure(&case, &failure);
                    r.counterexamples.push(Counterexample {
                        index,
                        leg: leg.label,
                        kind,
                        detail,
                        shrunk_program: program_to_string(&shrunk.program),
                        regression: case_to_test(&shrunk),
                        shrunk_stmts: shrunk.program.stmt_count(),
                    });
                }
            }
        }
    }
    r.divergence_legs.sort();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first few generated programs must conform on every leg —
    /// the cheap smoke tier of `reproduce conform`.
    #[test]
    fn generated_programs_conform_smoke() {
        for index in 0..6 {
            assert_conforms(&generate(42, index));
        }
    }

    #[test]
    fn report_render_is_deterministic() {
        let a = run_conformance(4, 42).render();
        let b = run_conformance(4, 42).render();
        assert_eq!(a, b);
    }

    /// The default pass pipeline is idempotent over generated
    /// programs: once it reaches fixpoint, a second run finds nothing
    /// left to rewrite and leaves the program byte-identical.
    #[test]
    fn default_pipeline_is_idempotent_on_generated_programs() {
        let pl = Pipeline::default_pipeline();
        for index in 0..12 {
            let case = generate(42, index);
            let mut p = case.program.clone();
            pl.run(&mut p);
            let after_first = format!("{p:?}");
            let stats = pl.run(&mut p);
            assert!(
                !stats.changed(),
                "second pipeline run still rewrites program {index}: {:?}",
                stats.applied
            );
            assert_eq!(
                after_first,
                format!("{p:?}"),
                "program {index} not stable after fixpoint"
            );
        }
    }
}
