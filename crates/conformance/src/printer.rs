//! Render a [`Case`] as a paste-ready `#[test]` function.
//!
//! When the driver shrinks a mismatch, the counterexample is only
//! useful if it survives the fuzzing session — so it is printed as
//! Rust source that rebuilds the exact program through
//! `ProgramBuilder` and re-asserts conformance. Promoting a fuzzer
//! find to a permanent regression test is a copy-paste.
//!
//! The printer favours explicit IR constructors (`Expr::Bin(...)`,
//! `Stmt::Store { ... }`) over the operator sugar: less pretty, but
//! total — every shape the generator and shrinker can produce prints
//! to code that compiles.

use crate::generate::Case;
use paccport_devsim::Buffer;
use paccport_ir::expr::Expr;
use paccport_ir::kernel::{Kernel, KernelBody, LoopClauses};
use paccport_ir::stmt::{Block, Stmt};
use paccport_ir::types::{Intent, MemSpace, Scalar};
use paccport_ir::HostStmt;

/// Render `case` as a self-contained `#[test]` fn.
pub fn case_to_test(case: &Case) -> String {
    let p = &case.program;
    let mut s = String::new();
    s.push_str("#[test]\n#[allow(unused_variables)]\n");
    s.push_str(&format!(
        "fn conformance_regression_s{}_i{}() {{\n",
        case.seed, case.index
    ));
    s.push_str("    use paccport_conformance::{assert_conforms, Case};\n");
    s.push_str("    use paccport_devsim::Buffer;\n");
    s.push_str("    use paccport_ir::builder::ProgramBuilder;\n");
    s.push_str("    use paccport_ir::expr::*;\n");
    s.push_str("    use paccport_ir::kernel::*;\n");
    s.push_str("    use paccport_ir::stmt::*;\n");
    s.push_str("    use paccport_ir::types::*;\n");
    s.push_str("    use paccport_ir::{Dir, HostStmt};\n\n");
    s.push_str(&format!(
        "    let mut b = ProgramBuilder::new({:?});\n",
        p.name
    ));
    for (i, pd) in p.params.iter().enumerate() {
        if pd.ty == Scalar::I32 {
            s.push_str(&format!("    let p{i} = b.iparam({:?});\n", pd.name));
        } else {
            s.push_str(&format!(
                "    let p{i} = b.param({:?}, {});\n",
                pd.name,
                scalar_src(pd.ty)
            ));
        }
    }
    for (i, ad) in p.arrays.iter().enumerate() {
        s.push_str(&format!(
            "    let a{i} = b.array({:?}, {}, {}, {});\n",
            ad.name,
            scalar_src(ad.elem),
            expr_src(&ad.len),
            intent_src(ad.intent)
        ));
    }
    for (i, name) in p.var_names.iter().enumerate() {
        s.push_str(&format!("    let v{i} = b.var({name:?});\n"));
    }
    s.push_str("\n    let program = b.finish(vec![\n");
    for h in &p.body {
        s.push_str(&host_src(h, 2));
        s.push_str(",\n");
    }
    s.push_str("    ]);\n");
    s.push_str("    let case = Case {\n");
    s.push_str(&format!("        seed: {},\n", case.seed));
    s.push_str(&format!("        index: {},\n", case.index));
    s.push_str("        program,\n");
    s.push_str("        params: vec![\n");
    for (name, v) in &case.params {
        s.push_str(&format!("            ({name:?}.to_string(), {v:?}),\n"));
    }
    s.push_str("        ],\n");
    s.push_str("        inputs: vec![\n");
    for (name, buf) in &case.inputs {
        s.push_str(&format!(
            "            ({name:?}.to_string(), {}),\n",
            buffer_src(buf)
        ));
    }
    s.push_str("        ],\n");
    s.push_str("    };\n");
    s.push_str("    assert_conforms(&case);\n");
    s.push_str("}\n");
    s
}

fn scalar_src(t: Scalar) -> &'static str {
    match t {
        Scalar::F32 => "Scalar::F32",
        Scalar::F64 => "Scalar::F64",
        Scalar::I32 => "Scalar::I32",
        Scalar::U32 => "Scalar::U32",
        Scalar::Bool => "Scalar::Bool",
    }
}

fn intent_src(i: Intent) -> &'static str {
    match i {
        Intent::In => "Intent::In",
        Intent::Out => "Intent::Out",
        Intent::InOut => "Intent::InOut",
        Intent::Scratch => "Intent::Scratch",
    }
}

fn space_src(sp: MemSpace) -> &'static str {
    match sp {
        MemSpace::Global => "MemSpace::Global",
        MemSpace::Local => "MemSpace::Local",
    }
}

fn expr_src(e: &Expr) -> String {
    match e {
        Expr::FConst(v) => format!("Expr::fconst({v:?})"),
        Expr::IConst(v) => format!("Expr::iconst({v})"),
        Expr::BConst(v) => format!("Expr::BConst({v})"),
        Expr::Param(p) => format!("Expr::param(p{})", p.0),
        Expr::Var(v) => format!("Expr::var(v{})", v.0),
        Expr::Special(sv) => format!("Expr::Special(SpecialVar::{sv:?})"),
        Expr::Load {
            space,
            array,
            index,
        } => format!(
            "Expr::Load {{ space: {}, array: a{}, index: Box::new({}) }}",
            space_src(*space),
            array.0,
            expr_src(index)
        ),
        Expr::Un(op, a) => format!("Expr::un(UnOp::{op:?}, {})", expr_src(a)),
        Expr::Bin(op, a, b) => {
            format!("Expr::bin(BinOp::{op:?}, {}, {})", expr_src(a), expr_src(b))
        }
        Expr::Cmp(op, a, b) => {
            format!("Expr::cmp(CmpOp::{op:?}, {}, {})", expr_src(a), expr_src(b))
        }
        Expr::Fma(a, b, c) => format!(
            "Expr::Fma(Box::new({}), Box::new({}), Box::new({}))",
            expr_src(a),
            expr_src(b),
            expr_src(c)
        ),
        Expr::Select(c, t, f) => format!(
            "Expr::Select(Box::new({}), Box::new({}), Box::new({}))",
            expr_src(c),
            expr_src(t),
            expr_src(f)
        ),
        Expr::Cast(t, a) => format!("Expr::Cast({}, Box::new({}))", scalar_src(*t), expr_src(a)),
    }
}

fn ind(depth: usize) -> String {
    "    ".repeat(depth)
}

fn stmt_src(s: &Stmt, d: usize) -> String {
    let i0 = ind(d);
    match s {
        Stmt::Let { var, ty, init } => format!(
            "{i0}Stmt::Let {{ var: v{}, ty: {}, init: {} }}",
            var.0,
            scalar_src(*ty),
            expr_src(init)
        ),
        Stmt::Assign { var, value } => format!(
            "{i0}Stmt::Assign {{ var: v{}, value: {} }}",
            var.0,
            expr_src(value)
        ),
        Stmt::Store {
            space,
            array,
            index,
            value,
        } => format!(
            "{i0}Stmt::Store {{ space: {}, array: a{}, index: {}, value: {} }}",
            space_src(*space),
            array.0,
            expr_src(index),
            expr_src(value)
        ),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => format!(
            "{i0}Stmt::If {{ cond: {}, then_blk: {}, else_blk: {} }}",
            expr_src(cond),
            block_src(then_blk, d + 1),
            block_src(else_blk, d + 1)
        ),
        Stmt::For {
            var,
            lo,
            hi,
            step,
            body,
        } => format!(
            "{i0}Stmt::For {{ var: v{}, lo: {}, hi: {}, step: {step}, body: {} }}",
            var.0,
            expr_src(lo),
            expr_src(hi),
            block_src(body, d + 1)
        ),
        Stmt::Barrier => format!("{i0}Stmt::Barrier"),
        Stmt::Atomic {
            op,
            array,
            index,
            value,
        } => format!(
            "{i0}Stmt::Atomic {{ op: ReduceOp::{op:?}, array: a{}, index: {}, value: {} }}",
            array.0,
            expr_src(index),
            expr_src(value)
        ),
    }
}

fn block_src(b: &Block, d: usize) -> String {
    if b.0.is_empty() {
        return "Block(vec![])".to_string();
    }
    let mut s = String::from("Block(vec![\n");
    for st in &b.0 {
        s.push_str(&stmt_src(st, d + 1));
        s.push_str(",\n");
    }
    s.push_str(&format!("{}])", ind(d)));
    s
}

fn clauses_src(c: &LoopClauses) -> String {
    if *c == LoopClauses::default() {
        return "LoopClauses::default()".to_string();
    }
    let overrides = c
        .device_overrides
        .iter()
        .map(|o| {
            format!(
                "DeviceTypeClause {{ device: AccDeviceType::{:?}, gang: {:?}, worker: {:?}, vector: {:?} }}",
                o.device, o.gang, o.worker, o.vector
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "LoopClauses {{ independent: {}, gang: {:?}, worker: {:?}, vector: {:?}, tile: {:?}, unroll_jam: {:?}, device_overrides: vec![{overrides}] }}",
        c.independent, c.gang, c.worker, c.vector, c.tile, c.unroll_jam
    )
}

fn kernel_src(k: &Kernel, d: usize) -> String {
    let i0 = ind(d);
    let i1 = ind(d + 1);
    let mut s = format!("Kernel {{\n{i1}name: {:?}.to_string(),\n", k.name);
    s.push_str(&format!("{i1}loops: vec![\n"));
    for lp in &k.loops {
        s.push_str(&format!(
            "{}ParallelLoop {{ var: v{}, lo: {}, hi: {}, clauses: {} }},\n",
            ind(d + 2),
            lp.var.0,
            expr_src(&lp.lo),
            expr_src(&lp.hi),
            clauses_src(&lp.clauses)
        ));
    }
    s.push_str(&format!("{i1}],\n"));
    match &k.body {
        KernelBody::Simple(b) => {
            s.push_str(&format!(
                "{i1}body: KernelBody::Simple({}),\n",
                block_src(b, d + 1)
            ));
        }
        KernelBody::Grouped(g) => {
            s.push_str(&format!("{i1}body: KernelBody::Grouped(GroupedBody {{\n"));
            s.push_str(&format!("{}group_size: {},\n", ind(d + 2), g.group_size));
            s.push_str(&format!("{}locals: vec![\n", ind(d + 2)));
            for l in &g.locals {
                s.push_str(&format!(
                    "{}LocalArrayDecl {{ name: {:?}.to_string(), elem: {}, len: {} }},\n",
                    ind(d + 3),
                    l.name,
                    scalar_src(l.elem),
                    l.len
                ));
            }
            s.push_str(&format!("{}],\n", ind(d + 2)));
            s.push_str(&format!("{}phases: vec![\n", ind(d + 2)));
            for ph in &g.phases {
                s.push_str(&format!("{}{},\n", ind(d + 3), block_src(ph, d + 3)));
            }
            s.push_str(&format!("{}],\n", ind(d + 2)));
            s.push_str(&format!("{i1}}}),\n"));
        }
    }
    s.push_str(&format!(
        "{i1}locals: vec![{}],\n",
        k.locals
            .iter()
            .map(|(v, t)| format!("(v{}, {})", v.0, scalar_src(*t)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    match &k.region_reduction {
        Some(rr) => s.push_str(&format!(
            "{i1}region_reduction: Some(RegionReduction {{ op: ReduceOp::{:?}, value: {}, dest: a{} }}),\n",
            rr.op,
            expr_src(&rr.value),
            rr.dest.0
        )),
        None => s.push_str(&format!("{i1}region_reduction: None,\n")),
    }
    match &k.reduction {
        Some(r) => s.push_str(&format!(
            "{i1}reduction: Some(Reduction {{ op: ReduceOp::{:?}, acc: v{} }}),\n",
            r.op, r.acc.0
        )),
        None => s.push_str(&format!("{i1}reduction: None,\n")),
    }
    s.push_str(&format!("{i1}launch_hint: None,\n"));
    s.push_str(&format!("{i0}}}"));
    s
}

fn host_src(h: &HostStmt, d: usize) -> String {
    let i0 = ind(d);
    match h {
        HostStmt::Launch(k) => format!("{i0}HostStmt::Launch({})", kernel_src(k, d)),
        HostStmt::DataRegion { arrays, body } => {
            let mut s = format!(
                "{i0}HostStmt::DataRegion {{ arrays: vec![{}], body: vec![\n",
                arrays
                    .iter()
                    .map(|a| format!("a{}", a.0))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            for b in body {
                s.push_str(&host_src(b, d + 1));
                s.push_str(",\n");
            }
            s.push_str(&format!("{i0}] }}"));
            s
        }
        HostStmt::HostLoop { var, lo, hi, body } => {
            let mut s = format!(
                "{i0}HostStmt::HostLoop {{ var: v{}, lo: {}, hi: {}, body: vec![\n",
                var.0,
                expr_src(lo),
                expr_src(hi)
            );
            for b in body {
                s.push_str(&host_src(b, d + 1));
                s.push_str(",\n");
            }
            s.push_str(&format!("{i0}] }}"));
            s
        }
        HostStmt::WhileFlag {
            flag,
            max_iters,
            body,
        } => {
            let mut s = format!(
                "{i0}HostStmt::WhileFlag {{ flag: a{}, max_iters: {max_iters}, body: vec![\n",
                flag.0
            );
            for b in body {
                s.push_str(&host_src(b, d + 1));
                s.push_str(",\n");
            }
            s.push_str(&format!("{i0}] }}"));
            s
        }
        HostStmt::HostAssign { var, ty, value } => format!(
            "{i0}HostStmt::HostAssign {{ var: v{}, ty: {}, value: {} }}",
            var.0,
            scalar_src(*ty),
            expr_src(value)
        ),
        HostStmt::HostStore {
            array,
            index,
            value,
        } => format!(
            "{i0}HostStmt::HostStore {{ array: a{}, index: {}, value: {} }}",
            array.0,
            expr_src(index),
            expr_src(value)
        ),
        HostStmt::Update { array, dir } => format!(
            "{i0}HostStmt::Update {{ array: a{}, dir: Dir::{dir:?} }}",
            array.0
        ),
        HostStmt::EnterData { arrays } => format!(
            "{i0}HostStmt::EnterData {{ arrays: vec![{}] }}",
            arrays
                .iter()
                .map(|a| format!("a{}", a.0))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        HostStmt::ExitData { arrays } => format!(
            "{i0}HostStmt::ExitData {{ arrays: vec![{}] }}",
            arrays
                .iter()
                .map(|a| format!("a{}", a.0))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        HostStmt::HostCompute { label, instr } => format!(
            "{i0}HostStmt::HostCompute {{ label: {label:?}.to_string(), instr: {} }}",
            expr_src(instr)
        ),
    }
}

fn buffer_src(b: &Buffer) -> String {
    match b {
        Buffer::F32(v) => format!("Buffer::F32(vec!{v:?})"),
        Buffer::F64(v) => format!("Buffer::F64(vec!{v:?})"),
        Buffer::I32(v) => format!("Buffer::I32(vec!{v:?})"),
        Buffer::U32(v) => format!("Buffer::U32(vec!{v:?})"),
        Buffer::Bool(v) => format!("Buffer::Bool(vec!{v:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn printed_test_mentions_every_array_and_param() {
        let case = generate(42, 0);
        let src = case_to_test(&case);
        assert!(src.contains("assert_conforms(&case)"));
        assert!(src.contains("ProgramBuilder::new"));
        for pd in &case.program.params {
            assert!(
                src.contains(&format!("{:?}", pd.name)),
                "missing {}",
                pd.name
            );
        }
        for ad in &case.program.arrays {
            assert!(
                src.contains(&format!("{:?}", ad.name)),
                "missing {}",
                ad.name
            );
        }
    }

    #[test]
    fn printer_is_deterministic() {
        let case = generate(42, 3);
        assert_eq!(case_to_test(&case), case_to_test(&case));
    }
}
