//! Seeded deterministic RNG (splitmix64).
//!
//! The harness must be bit-reproducible across runs, platforms and
//! `--jobs` settings, so it carries its own tiny generator instead of
//! depending on the `rand` shim: the stream is a pure function of the
//! seed, and every generated program records the (seed, index) pair
//! that recreates it.

/// Splitmix64 stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Derive an independent stream for item `index` of a run: used to
    /// make program `i` a function of `(seed, i)` alone, so shrinking
    /// or re-checking one case never perturbs the others.
    pub fn for_index(seed: u64, index: u64) -> Rng {
        let mut r = Rng::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        r.next_u64(); // decorrelate nearby seeds
        r
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0; modulo bias is irrelevant here).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn index_streams_are_independent() {
        let mut a = Rng::for_index(42, 0);
        let mut b = Rng::for_index(42, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_is_inclusive_and_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..200 {
            let v = r.range(-3, 5);
            assert!((-3..=5).contains(&v));
        }
    }
}
